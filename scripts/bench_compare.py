#!/usr/bin/env python
"""Diff two sweep benchmark snapshots (``--bench-out`` JSON files).

Usage::

    python scripts/bench_compare.py BENCH_sweep.json /tmp/new_bench.json
    python scripts/bench_compare.py old.json new.json --strict   # exit 1 on regression

Compares the ``totals`` block — wall time, simulated events, fitness
evaluations — and the per-experiment wall times, printing a WARNING for
any metric that regressed by more than ``--threshold`` (default 10%).
Counter metrics (``sim_events``, ``evaluations``, ``trials``) warn on
*any* drift in either direction: they are deterministic per code
version, so a change means the workload itself changed, not the
machine.  With ``--strict`` warnings become a non-zero exit for CI.

Wall-clock comparisons are only meaningful between snapshots taken on
comparable hosts; the host blocks of both files are printed so a noisy
diff can be discounted by eye.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: totals keys where bigger is slower and small drift is expected noise
_WALL_KEYS = ("trial_wall_s", "sweep_wall_s")
#: totals keys that are exact per code version: any drift is a real change
_COUNTER_KEYS = ("trials", "sim_events", "evaluations")


def _load(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    if not isinstance(data, dict) or "totals" not in data:
        raise SystemExit(f"error: {path} is not a sweep benchmark snapshot (no 'totals')")
    return data


def _pct(old: float, new: float) -> float:
    if old == 0:
        return 0.0 if new == 0 else float("inf")
    return (new - old) / old * 100.0


def _per_experiment_wall(data: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    for sweep in data.get("sweeps", []):
        name = sweep.get("experiment", "?")
        out[name] = out.get(name, 0.0) + float(sweep.get("wall_s", 0.0))
    return out


def compare(old: dict, new: dict, threshold: float) -> list[str]:
    """Return WARNING lines; print the metric table as a side effect."""
    warnings: list[str] = []
    ot, nt = old["totals"], new["totals"]

    print(f"{'metric':<22}{'old':>16}{'new':>16}{'delta':>10}")
    for key in _COUNTER_KEYS + _WALL_KEYS:
        if key not in ot and key not in nt:
            continue
        o, n = ot.get(key, 0), nt.get(key, 0)
        delta = _pct(o, n)
        print(f"{key:<22}{o:>16,.6g}{n:>16,.6g}{delta:>+9.1f}%")
        if key in _COUNTER_KEYS and o != n:
            warnings.append(
                f"WARNING: {key} changed {o:,} -> {n:,} — deterministic "
                f"workload drifted (new code path or experiment change?)"
            )
        elif key in _WALL_KEYS and delta > threshold:
            warnings.append(
                f"WARNING: {key} regressed {delta:+.1f}% "
                f"({o:.1f}s -> {n:.1f}s, threshold {threshold:.0f}%)"
            )

    old_wall, new_wall = _per_experiment_wall(old), _per_experiment_wall(new)
    for name in sorted(old_wall.keys() & new_wall.keys()):
        delta = _pct(old_wall[name], new_wall[name])
        if delta > threshold:
            warnings.append(
                f"WARNING: {name} wall regressed {delta:+.1f}% "
                f"({old_wall[name]:.2f}s -> {new_wall[name]:.2f}s)"
            )
    for name in sorted(old_wall.keys() ^ new_wall.keys()):
        side = "dropped from" if name in old_wall else "new in"
        print(f"note: experiment {name} {side} the new snapshot")
    return warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", type=Path, help="baseline snapshot (e.g. BENCH_sweep.json)")
    parser.add_argument("new", type=Path, help="candidate snapshot")
    parser.add_argument(
        "--threshold", type=float, default=10.0,
        help="warn when a wall-time metric regresses by more than this %% (default 10)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero if any warning fired (for CI gates)",
    )
    args = parser.parse_args(argv)

    old, new = _load(args.old), _load(args.new)
    for label, data in (("old", old), ("new", new)):
        host = data.get("host", {})
        print(f"{label}: {host.get('platform', '?')} / python {host.get('python', '?')} "
              f"/ {host.get('cpu_count', '?')} cpu")
    print()
    warnings = compare(old, new, args.threshold)
    print()
    if warnings:
        for w in warnings:
            print(w)
        return 1 if args.strict else 0
    print(f"ok: no metric regressed beyond {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
