"""Refresh a single experiment's section inside EXPERIMENTS.md.

Usage:  python scripts/refresh_section.py E1 [--quick]

Used when one experiment's code changed after a long full-mode generation:
re-runs just that experiment and splices its section in place, leaving the
other sections (and the header) untouched.  Note the header's summary
counts are NOT recomputed — rerun generate_experiments_md.py for that.
"""

from __future__ import annotations

import re
import sys
import time

from generate_experiments_md import PAPER_CLAIMS  # same directory on sys.path
from repro.experiments import run_experiment


def build_section(key: str, quick: bool) -> str:
    t0 = time.time()
    report = run_experiment(key, quick=quick)
    dt = time.time() - t0
    lines = [f"## {key} — {report.title}", ""]
    lines.append(f"**Paper says:** {PAPER_CLAIMS[key]}")
    lines.append("")
    status = "REPRODUCED" if report.all_passed else "PARTIAL"
    lines.append(f"**Measured ({dt:.0f}s):** {status}")
    lines.append("")
    for e in report.expectations:
        mark = "✓" if e.passed else "✗"
        lines.append(f"- {mark} `{e.name}` — {e.detail}")
    lines.append("")
    for table in report.tables:
        lines.extend(["```", table.render(), "```", ""])
    for series in report.series:
        lines.extend(["```", series.render(), "```", ""])
    for note in report.notes:
        lines.extend([f"> {note}", ""])
    return "\n".join(lines)


def main() -> int:
    key = sys.argv[1].upper()
    quick = "--quick" in sys.argv
    path = "EXPERIMENTS.md"
    with open(path) as fh:
        content = fh.read()
    pattern = re.compile(
        rf"^## {key} — .*?(?=^## E\d+ — |\Z)", re.DOTALL | re.MULTILINE
    )
    if not pattern.search(content):
        raise SystemExit(f"section {key} not found in {path}")
    section = build_section(key, quick)
    content = pattern.sub(section + "\n", content, count=1)
    with open(path, "w") as fh:
        fh.write(content)
    print(f"refreshed {key} in {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
