#!/usr/bin/env python
"""AST lint: engine modules must stay on the shared deme runtime.

The deme-runtime refactor centralised two things that used to be
copy-pasted per engine, and this check keeps them centralised:

1. **The wire.**  Only the runtime layer (``repro/runtime/``) and the
   wire-protocol modules (``reliable.py``, ``supervisor.py``) may call
   ``.send(...)`` on a cluster/channel.  An engine that sends directly
   bypasses reliable delivery, the message-conservation receipts and the
   supervisor's view of traffic.

2. **The report schema.**  Engine modules must not define bespoke
   ``*Result`` / ``*Report`` dataclasses (they are aliases of
   :class:`repro.parallel.base.RunReport` now) and must not construct
   ``RunReport`` directly — reports go through
   ``ParallelEngine._report``, which stamps the engine name and trace
   digest.

3. **The sweep orchestrator.**  Experiment runner modules
   (``repro/experiments/e*.py`` and ``table1.py``) must declare their
   trial grids through :func:`repro.runtime.sweep.run_sweep` rather than
   hand-rolling nested seed loops: each runner must import and call
   ``run_sweep``, and must not call a ``.run(...)`` method inside a
   ``for``/``while`` loop in its driver ``run()`` (model executions
   belong in module-level trial functions, where the sweep can fan them
   out and cache them).

4. **The metrics registry.**  Counter-like run statistics belong in the
   namespaced ``RunReport.metrics`` snapshot
   (:func:`repro.obs.metrics.metrics_snapshot`), not in new bare
   ``extras`` dict keys.  ``extras`` stays for engine-specific payloads
   (curves, archives, per-worker vectors); any *new* key in an
   ``extras={...}`` literal must either join the allowlist below (with a
   non-scalar payload justification) or become a first-class
   ``RunReport`` counter wired into the snapshot.

5. **The vectorized fast path.**  ``repro/core/vectorized`` exists to
   replace per-individual Python loops with whole-block NumPy kernels,
   so its kernel modules must contain no ``for``/``while`` statements,
   comprehensions or generator expressions.  ``population.py`` is exempt:
   it is the object boundary that converts between ``Individual`` lists
   and arrays, and looping is its job.

6. **The supervised pool.**  Real-process fan-out must go through
   :class:`repro.runtime.resilient.SupervisedPool` — a bare
   ``multiprocessing`` ``Pool(...)`` / ``.imap_unordered(...)`` hangs
   forever on a worker death and deadlocks on ``close(); join()`` with a
   hung worker.  Only ``repro/runtime/resilient.py`` (the layer itself)
   may touch the raw primitives.

7. **Declarative runs.**  Experiment modules must not construct engines
   inline — no calls to engine class constructors
   (``IslandModel(...)``, ``GenerationalEngine(...)``, …) and no
   ``.partitioned(...)`` calls.  Runs are :class:`repro.spec.RunSpec`
   documents dispatched through spec-backed trials (see
   ``docs/run_specs.md``); importing an engine class for typing or
   docs is fine, *calling* one bypasses the registry, the spec digest
   cache key and the ``runspec`` replay path.  The allowlist below
   names the deliberate exceptions (trials whose construction depends
   on results only known at execution time).

8. **Columnar traces.**  ``Trace.events`` is a lazily rebuilt read-only
   view over interned columnar storage — mutating the returned list
   (``trace.events.append(...)``, ``trace.events[...] = ...``,
   ``trace.events = ...``) silently bypasses the incremental digest, the
   per-kind indexes and the listener seam.  Events enter a trace through
   ``Trace.record`` only; no module outside ``repro/cluster/`` may
   mutate an ``.events`` attribute.

Run from the repository root::

    python scripts/check_engine_contract.py

Exit status 1 if any violation is found (CI-ready).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
PARALLEL = REPO / "src" / "repro" / "parallel"
EXPERIMENTS = REPO / "src" / "repro" / "experiments"
VECTORIZED = REPO / "src" / "repro" / "core" / "vectorized"

#: the one module allowed to build on the raw multiprocessing pool
#: primitives (it replaces them with supervised workers)
POOL_OWNER = SRC / "runtime" / "resilient.py"

#: bare-pool constructions/methods rule 6 forbids outside POOL_OWNER
_BARE_POOL_NAMES = {"Pool", "imap_unordered", "imap", "map_async"}

#: vectorized modules allowed to loop: the Individual<->array boundary
VECTORIZED_LOOP_ALLOWED = {"population.py"}

#: AST nodes that mean "a Python-level loop over elements"
_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)

#: modules that implement the wire protocol itself
SEND_ALLOWED = {"reliable.py", "supervisor.py"}

#: result classes that are NOT engine reports: outcomes of sequential
#: sub-engines embedded inside engines (analogous to EvolutionResult)
RESULT_CLASS_ALLOWED = {("cellular.py", "CellularResult")}

#: the one module that owns the report schema
SCHEMA_OWNER = "base.py"

#: every extras key an engine may put in its report.  These are
#: engine-specific *payloads* (curves, archives, per-worker vectors,
#: nested results) — scalar counters do NOT belong here: they become
#: RunReport fields surfaced through the repro.obs metrics snapshot.
EXTRAS_KEY_ALLOWLIST = {
    # master-slave
    "result", "generation_makespans", "workers",
    # async master-slave
    "utilisation", "completions",
    # pool
    "pulls", "pool_size", "agent_evaluations",
    # distributed cellular
    "sweeps", "nodes", "compute_time", "comm_time",
    # hierarchical
    "work_units", "best_curve", "work_curve",
    # specialized / multi-objective
    "scenario", "archive_objectives", "hypervolume", "archive_genomes",
}


def lint_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    rel = path.name
    problems: list[str] = []

    for node in ast.walk(tree):
        # rule 1: no direct .send(...) outside the wire-protocol modules
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "send"
            and rel not in SEND_ALLOWED
        ):
            problems.append(
                f"{path.relative_to(REPO)}:{node.lineno}: direct .send() call — "
                "route traffic through the deme runtime "
                "(repro.runtime.deme) or the reliable channel"
            )

        # rule 2a: no bespoke *Result / *Report class definitions
        if (
            isinstance(node, ast.ClassDef)
            and (node.name.endswith("Result") or node.name.endswith("Report"))
            and rel != SCHEMA_OWNER
            and (rel, node.name) not in RESULT_CLASS_ALLOWED
        ):
            problems.append(
                f"{path.relative_to(REPO)}:{node.lineno}: bespoke result class "
                f"{node.name} — alias repro.parallel.base.RunReport instead"
            )

        # rule 2b: no direct RunReport(...) construction outside base.py
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "RunReport"
            and rel != SCHEMA_OWNER
        ):
            problems.append(
                f"{path.relative_to(REPO)}:{node.lineno}: direct RunReport() "
                "construction — use ParallelEngine._report(), which stamps "
                "the engine name and trace digest"
            )

        # rule 4: extras dict literals may only carry allowlisted payload
        # keys — new counters go through the RunReport metrics snapshot
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg != "extras" or not isinstance(kw.value, ast.Dict):
                    continue
                for key in kw.value.keys:
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and key.value not in EXTRAS_KEY_ALLOWLIST
                    ):
                        problems.append(
                            f"{path.relative_to(REPO)}:{key.lineno}: extras key "
                            f"{key.value!r} is not allowlisted — scalar counters "
                            "belong on RunReport and in the repro.obs metrics "
                            "snapshot, not in bare extras dicts"
                        )

    return problems


def _experiment_modules() -> list[Path]:
    return sorted(
        p
        for p in EXPERIMENTS.glob("*.py")
        if p.name == "table1.py" or p.name.startswith("e")
    )


#: engine class constructors rule 7 forbids experiment modules to call —
#: every name registered in repro.spec.engines (parallel + sequential)
ENGINE_CLASS_NAMES = {
    "IslandModel", "SimulatedIslandModel",
    "SimulatedMasterSlave", "SimulatedAsyncMasterSlave",
    "PooledEvolution", "DistributedCellularGA", "HierarchicalGA",
    "SpecializedIslandModel", "SimulatedSpecializedIslandModel",
    "CellularIslandModel", "MasterSlaveIslandModel",
    "SimulatedMasterSlaveIslandModel",
    "GenerationalEngine", "SteadyStateEngine",
}

#: (file, class) pairs excepted from rule 7: the single-phase control of
#: E11's registration arm sizes its budget from the two-phase run's
#: evaluation count, so the engine can only exist at trial runtime
ENGINE_CALL_ALLOWED = {("e11_applications.py", "GenerationalEngine")}


def lint_experiment_file(path: Path) -> list[str]:
    """Experiment runners must use the sweep API, not bare seed loops."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems: list[str] = []

    imports_run_sweep = any(
        isinstance(node, ast.ImportFrom)
        and node.module is not None
        and node.module.endswith("sweep")
        and any(alias.name == "run_sweep" for alias in node.names)
        for node in ast.walk(tree)
    )
    calls_run_sweep = any(
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "run_sweep"
        for node in ast.walk(tree)
    )
    if not (imports_run_sweep and calls_run_sweep):
        problems.append(
            f"{path.relative_to(REPO)}:1: experiment module does not use "
            "repro.runtime.sweep.run_sweep — declare the trial grid as "
            "Trial specs so it can be fanned out and cached"
        )

    # no model `.run(...)` calls inside a loop statement: that is the
    # hand-rolled serial sweep the orchestrator replaces.  Trial functions
    # at module level may call .run() freely — the rule only bites loops.
    for loop in ast.walk(tree):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        for node in ast.walk(loop):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "run"
            ):
                problems.append(
                    f"{path.relative_to(REPO)}:{node.lineno}: .run(...) inside "
                    "a loop — hoist the execution into a module-level trial "
                    "function and dispatch it through run_sweep"
                )

    # rule 7: no inline engine construction — runs are RunSpec documents
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name) and func.id in ENGINE_CLASS_NAMES:
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "partitioned":
            name = f"{getattr(func.value, 'id', '?')}.partitioned"
        if name is None or (path.name, name) in ENGINE_CALL_ALLOWED:
            continue
        problems.append(
            f"{path.relative_to(REPO)}:{node.lineno}: inline engine "
            f"construction {name}(...) — describe the run as a "
            "repro.spec.RunSpec and dispatch it through a spec-backed "
            "Trial (docs/run_specs.md)"
        )
    return problems


def lint_bare_pool_file(path: Path) -> list[str]:
    """No bare multiprocessing pools outside the resilient layer (rule 6)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name) and func.id in _BARE_POOL_NAMES:
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr in _BARE_POOL_NAMES:
            # skip ThreadPoolExecutor-style names: only the bare names bite
            name = func.attr
        if name is None:
            continue
        problems.append(
            f"{path.relative_to(REPO)}:{node.lineno}: bare pool primitive "
            f"{name}() — real-process fan-out must go through "
            "repro.runtime.resilient.SupervisedPool (worker-death "
            "detection, deadlines, bounded shutdown)"
        )
    return problems


def lint_vectorized_file(path: Path) -> list[str]:
    """Kernel modules must be loop-free: whole-block NumPy only (rule 5)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems: list[str] = []
    for node in ast.walk(tree):
        if isinstance(node, _LOOP_NODES):
            kind = type(node).__name__
            problems.append(
                f"{path.relative_to(REPO)}:{node.lineno}: {kind} in a "
                "vectorized kernel module — express the operation as a "
                "whole-block NumPy kernel (loops live behind the "
                "population.py object boundary)"
            )
    return problems


#: list-mutating methods rule 8 forbids calling on an ``.events`` attribute
_EVENTS_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "clear", "sort", "reverse",
}


def lint_trace_events_file(path: Path) -> list[str]:
    """No direct ``.events`` mutation outside ``repro/cluster/`` (rule 8)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems: list[str] = []

    def _is_events_attr(node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr == "events"

    for node in ast.walk(tree):
        offence = None
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _EVENTS_MUTATORS
            and _is_events_attr(node.func.value)
        ):
            offence = f".events.{node.func.attr}(...)"
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                [node.target] if isinstance(node, ast.AugAssign) else node.targets
            )
            for target in targets:
                if _is_events_attr(target):
                    offence = ".events = ..." if not isinstance(node, ast.Delete) else "del .events"
                elif isinstance(target, ast.Subscript) and _is_events_attr(target.value):
                    offence = ".events[...] = ..."
        if offence is not None:
            problems.append(
                f"{path.relative_to(REPO)}:{node.lineno}: direct trace-event "
                f"mutation {offence} — events enter a Trace through "
                "Trace.record() only (the .events view is rebuilt from "
                "columnar storage and feeds neither the digest nor the "
                "listeners)"
            )
    return problems


def main() -> int:
    problems: list[str] = []
    for path in sorted(PARALLEL.glob("*.py")):
        problems.extend(lint_file(path))
    experiment_files = _experiment_modules()
    for path in experiment_files:
        problems.extend(lint_experiment_file(path))
    vectorized_files = sorted(
        p for p in VECTORIZED.glob("*.py") if p.name not in VECTORIZED_LOOP_ALLOWED
    )
    for path in vectorized_files:
        problems.extend(lint_vectorized_file(path))
    pool_files = sorted(p for p in SRC.rglob("*.py") if p != POOL_OWNER)
    for path in pool_files:
        problems.extend(lint_bare_pool_file(path))
    trace_files = sorted(
        p for p in SRC.rglob("*.py") if (SRC / "cluster") not in p.parents
    )
    for path in trace_files:
        problems.extend(lint_trace_events_file(path))
    for line in problems:
        print(line)
    if problems:
        print(f"\n{len(problems)} engine-contract violation(s)", file=sys.stderr)
        return 1
    n = len(list(PARALLEL.glob("*.py")))
    print(
        f"engine-contract lint: {n} engine modules + "
        f"{len(experiment_files)} experiment modules + "
        f"{len(vectorized_files)} vectorized kernel modules + "
        f"{len(pool_files)} bare-pool-free modules + "
        f"{len(trace_files)} trace-mutation-free modules clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
