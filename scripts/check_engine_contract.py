#!/usr/bin/env python
"""AST lint: engine modules must stay on the shared deme runtime.

The deme-runtime refactor centralised two things that used to be
copy-pasted per engine, and this check keeps them centralised:

1. **The wire.**  Only the runtime layer (``repro/runtime/``) and the
   wire-protocol modules (``reliable.py``, ``supervisor.py``) may call
   ``.send(...)`` on a cluster/channel.  An engine that sends directly
   bypasses reliable delivery, the message-conservation receipts and the
   supervisor's view of traffic.

2. **The report schema.**  Engine modules must not define bespoke
   ``*Result`` / ``*Report`` dataclasses (they are aliases of
   :class:`repro.parallel.base.RunReport` now) and must not construct
   ``RunReport`` directly — reports go through
   ``ParallelEngine._report``, which stamps the engine name and trace
   digest.

Run from the repository root::

    python scripts/check_engine_contract.py

Exit status 1 if any violation is found (CI-ready).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
PARALLEL = REPO / "src" / "repro" / "parallel"

#: modules that implement the wire protocol itself
SEND_ALLOWED = {"reliable.py", "supervisor.py"}

#: result classes that are NOT engine reports: outcomes of sequential
#: sub-engines embedded inside engines (analogous to EvolutionResult)
RESULT_CLASS_ALLOWED = {("cellular.py", "CellularResult")}

#: the one module that owns the report schema
SCHEMA_OWNER = "base.py"


def lint_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    rel = path.name
    problems: list[str] = []

    for node in ast.walk(tree):
        # rule 1: no direct .send(...) outside the wire-protocol modules
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "send"
            and rel not in SEND_ALLOWED
        ):
            problems.append(
                f"{path.relative_to(REPO)}:{node.lineno}: direct .send() call — "
                "route traffic through the deme runtime "
                "(repro.runtime.deme) or the reliable channel"
            )

        # rule 2a: no bespoke *Result / *Report class definitions
        if (
            isinstance(node, ast.ClassDef)
            and (node.name.endswith("Result") or node.name.endswith("Report"))
            and rel != SCHEMA_OWNER
            and (rel, node.name) not in RESULT_CLASS_ALLOWED
        ):
            problems.append(
                f"{path.relative_to(REPO)}:{node.lineno}: bespoke result class "
                f"{node.name} — alias repro.parallel.base.RunReport instead"
            )

        # rule 2b: no direct RunReport(...) construction outside base.py
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "RunReport"
            and rel != SCHEMA_OWNER
        ):
            problems.append(
                f"{path.relative_to(REPO)}:{node.lineno}: direct RunReport() "
                "construction — use ParallelEngine._report(), which stamps "
                "the engine name and trace digest"
            )

    return problems


def main() -> int:
    problems: list[str] = []
    for path in sorted(PARALLEL.glob("*.py")):
        problems.extend(lint_file(path))
    for line in problems:
        print(line)
    if problems:
        print(f"\n{len(problems)} engine-contract violation(s)", file=sys.stderr)
        return 1
    n = len(list(PARALLEL.glob("*.py")))
    print(f"engine-contract lint: {n} modules clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
