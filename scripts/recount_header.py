"""Recompute EXPERIMENTS.md's summary line from its section contents.

Usage:  python scripts/recount_header.py

Needed after refresh_section.py updates individual sections: the header's
aggregate counts would otherwise be stale.
"""

from __future__ import annotations

import re


def main() -> int:
    path = "EXPERIMENTS.md"
    with open(path) as fh:
        content = fh.read()
    reproduced = len(re.findall(r"^\*\*Measured \(\d+s\):\*\* REPRODUCED", content, re.M))
    partial = len(re.findall(r"^\*\*Measured \(\d+s\):\*\* PARTIAL", content, re.M))
    checks_pass = len(re.findall(r"^- ✓ `", content, re.M))
    checks_fail = len(re.findall(r"^- ✗ `", content, re.M))
    total = reproduced + partial
    new_summary = (
        f"Summary: **{reproduced}/{total} experiments reproduce their claimed shape**\n"
        f"({checks_pass}/{checks_pass + checks_fail} individual shape checks pass)."
    )
    content, n = re.subn(
        r"Summary: \*\*\d+/\d+ experiments reproduce their claimed shape\*\*\n\(\d+/\d+ individual shape checks pass\)\.",
        new_summary,
        content,
        count=1,
    )
    if n != 1:
        raise SystemExit("summary line not found")
    with open(path, "w") as fh:
        fh.write(content)
    print(new_summary)
    return 0


if __name__ == "__main__":
    main()
