"""Shared fixture for experiment benchmarks.

Each experiment benchmark runs its experiment ONCE (rounds=1) under
pytest-benchmark — the experiments are themselves repeated-seed studies, so
benchmark-level repetition would only multiply minutes — then asserts the
experiment's shape expectations.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def experiment_runner(benchmark):
    """Run one experiment in quick mode under the benchmark fixture and
    assert its shape expectations."""

    def run(experiment_id: str):
        from repro.experiments import run_experiment

        report = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"quick": True},
            iterations=1,
            rounds=1,
        )
        failed = report.failed()
        assert not failed, (
            f"{experiment_id} expectation failures: "
            + "; ".join(str(e) for e in failed)
        )
        return report

    return run
