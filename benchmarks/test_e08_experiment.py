"""Benchmark E8 — specialized island model: seven scenarios on ZDT1 (Xiao & Amstrong 2003).

Regenerates the experiment's tables/series in quick mode and asserts the
paper-shape expectations recorded in DESIGN.md's per-experiment index.
"""

def test_e08(experiment_runner):
    experiment_runner("E8")
