"""Benchmark E12 — neuro-genetic stock prediction and reactor core design (Kwon & Moon; Pereira & Lapa).

Regenerates the experiment's tables/series in quick mode and asserts the
paper-shape expectations recorded in DESIGN.md's per-experiment index.
"""

def test_e12(experiment_runner):
    experiment_runner("E12")
