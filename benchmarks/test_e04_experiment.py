"""Benchmark E4 — migration frequency / migrant selection / reproduction loop across the problem spectrum (Alba & Troya 2000).

Regenerates the experiment's tables/series in quick mode and asserts the
paper-shape expectations recorded in DESIGN.md's per-experiment index.
"""

def test_e04(experiment_runner):
    experiment_runner("E4")
