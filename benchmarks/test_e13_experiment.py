"""Benchmark E13 — island resilience under loss, partitions and crashes.

Regenerates the experiment's tables in quick mode and asserts the
protection-arm expectations: every trace invariant-clean, unprotected
control degrades in the showcase chaos cell, reliable + supervised
islands still solve, recovery machinery actually exercised.
"""

def test_e13(experiment_runner):
    experiment_runner("E13")
