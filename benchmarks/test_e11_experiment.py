"""Benchmark E11 — applications: 2-phase registration, feature-selection scaling, cluster TSP.

Regenerates the experiment's tables/series in quick mode and asserts the
paper-shape expectations recorded in DESIGN.md's per-experiment index.
"""

def test_e11(experiment_runner):
    experiment_runner("E11")
