"""Benchmark E6 — Cantu-Paz design principles: topology, deme sizing, population sizing.

Regenerates the experiment's tables/series in quick mode and asserts the
paper-shape expectations recorded in DESIGN.md's per-experiment index.
"""

def test_e06(experiment_runner):
    experiment_runner("E6")
