"""Benchmark E9 — fault-tolerant master-slave vs islands on heterogeneous clusters (Gagne 2003).

Regenerates the experiment's tables/series in quick mode and asserts the
paper-shape expectations recorded in DESIGN.md's per-experiment index.
"""

def test_e09(experiment_runner):
    experiment_runner("E9")
