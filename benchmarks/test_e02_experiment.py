"""Benchmark E2 — master-slave speedup growth, saturation, cheap-fitness bottleneck (Bethke 1976).

Regenerates the experiment's tables/series in quick mode and asserts the
paper-shape expectations recorded in DESIGN.md's per-experiment index.
"""

def test_e02(experiment_runner):
    experiment_runner("E2")
