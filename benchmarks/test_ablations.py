"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation times/compares the design choice ON vs OFF on a fixed
workload and asserts the direction the design rationale claims:

- synchronous vs asynchronous (stale) migration;
- elitism on vs off;
- migration-buffer staleness depth;
- master-slave dispatch granularity on heterogeneous slaves;
- fault-tolerant re-dispatch vs none (time overhead is the price of
  completeness);
- theory-predicted optimal worker count vs a grid search on the simulator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Network, SimulatedCluster, sample_fault_plan
from repro.core import GAConfig, GenerationalEngine, MaxEvaluations, MaxGenerations
from repro.migration import MigrationPolicy, PeriodicSchedule, Synchrony
from repro.parallel import IslandModel, SimulatedMasterSlave
from repro.problems import DeceptiveTrap, OneMax
from repro.theory import masterslave_generation_time, optimal_worker_count

SEEDS = range(3)


def _island_quality(synchrony: Synchrony, seed: int) -> float:
    problem = DeceptiveTrap(blocks=8, k=4)
    model = IslandModel(
        problem, 6, GAConfig(population_size=16, elitism=1),
        policy=MigrationPolicy(rate=1, selection="best"),
        schedule=PeriodicSchedule(4),
        synchrony=synchrony,
        seed=seed,
    )
    return model.run(MaxEvaluations(15_000)).best_fitness / problem.optimum


class TestSyncVsAsyncMigration:
    def test_async_quality_comparable_to_sync(self, benchmark):
        """Alba & Troya 2001: asynchrony changes timing, not search quality
        — stale migrants must not collapse solution quality."""

        def ablation():
            sync = np.mean([_island_quality(Synchrony(True), 100 + s) for s in SEEDS])
            async_ = np.mean(
                [
                    _island_quality(Synchrony(False, delay=2), 100 + s)
                    for s in SEEDS
                ]
            )
            return sync, async_

        sync, async_ = benchmark.pedantic(ablation, iterations=1, rounds=1)
        assert async_ >= sync - 0.08, f"async {async_:.3f} vs sync {sync:.3f}"


class TestElitism:
    def test_elitism_helps_on_onemax(self, benchmark):
        def run(elitism: int, seed: int) -> int:
            res = GenerationalEngine(
                OneMax(48), GAConfig(population_size=32, elitism=elitism), seed=seed
            ).run(MaxGenerations(120))
            return res.generations if res.solved else 120

        def ablation():
            with_e = np.mean([run(1, 200 + s) for s in SEEDS])
            without = np.mean([run(0, 200 + s) for s in SEEDS])
            return with_e, without

        with_e, without = benchmark.pedantic(ablation, iterations=1, rounds=1)
        assert with_e <= without, f"elitist {with_e} vs non-elitist {without} generations"


class TestBufferStaleness:
    def test_deep_staleness_slows_information_spread(self, benchmark):
        """Migration delay postpones when immigrant genes start helping."""

        def epochs_to_solve(delay: int, seed: int) -> int:
            model = IslandModel(
                OneMax(40), 6, GAConfig(population_size=10, elitism=1),
                policy=MigrationPolicy(rate=1, selection="best"),
                schedule=PeriodicSchedule(2),
                synchrony=Synchrony(False, delay=delay),
                seed=seed,
            )
            res = model.run(MaxGenerations(150))
            return res.epochs if res.solved else 150

        def ablation():
            fresh = np.mean([epochs_to_solve(0, 300 + s) for s in SEEDS])
            stale = np.mean([epochs_to_solve(8, 300 + s) for s in SEEDS])
            return fresh, stale

        fresh, stale = benchmark.pedantic(ablation, iterations=1, rounds=1)
        assert stale >= fresh * 0.9, f"fresh {fresh} vs stale {stale} epochs"


def _farm_time(chunks_per_worker: int, *, speeds, seed: int) -> float:
    n = len(speeds)
    cluster = SimulatedCluster(
        n, speeds=speeds, network=Network(n, latency=1e-4, bandwidth=1e7)
    )
    ms = SimulatedMasterSlave(
        OneMax(32), GAConfig(population_size=96), cluster=cluster,
        eval_cost=1e-2, chunks_per_worker=chunks_per_worker, seed=seed,
    )
    return ms.run(MaxGenerations(4)).sim_time


class TestDispatchGranularity:
    def test_fine_chunks_win_on_heterogeneous_slaves(self, benchmark):
        speeds = [1.0, 2.0, 0.25, 1.0, 0.5]

        def ablation():
            coarse = _farm_time(1, speeds=speeds, seed=1)
            fine = _farm_time(4, speeds=speeds, seed=1)
            return coarse, fine

        coarse, fine = benchmark.pedantic(ablation, iterations=1, rounds=1)
        assert fine < coarse, f"fine {fine:.3f}s vs coarse {coarse:.3f}s"


class TestFaultToleranceCost:
    def test_redispatch_overhead_is_bounded(self, benchmark):
        def ablation():
            n = 5
            base_cluster = SimulatedCluster(
                n, network=Network(n, latency=1e-3, bandwidth=1e6)
            )
            ms = SimulatedMasterSlave(
                OneMax(32), GAConfig(population_size=64), cluster=base_cluster,
                eval_cost=5e-3, fault_tolerant=True, seed=2,
            )
            t_base = ms.run(MaxGenerations(6)).sim_time
            plan = sample_fault_plan(
                n, horizon=t_base, mtbf=t_base, repair_time=t_base / 4, seed=3
            )
            faulty_cluster = SimulatedCluster(
                n, network=Network(n, latency=1e-3, bandwidth=1e6), fault_plan=plan
            )
            ms2 = SimulatedMasterSlave(
                OneMax(32), GAConfig(population_size=64), cluster=faulty_cluster,
                eval_cost=5e-3, fault_tolerant=True, seed=2,
            )
            t_faulty = ms2.run(MaxGenerations(6)).sim_time
            return t_base, t_faulty

        t_base, t_faulty = benchmark.pedantic(ablation, iterations=1, rounds=1)
        assert t_faulty < 5.0 * t_base


class TestTheoryVsSimulator:
    def test_sqrt_rule_predicts_simulated_knee(self, benchmark):
        """Cantú-Paz's S* = sqrt(n Tf / Tc) must sit near the simulator's
        measured best worker count."""
        pop, eval_cost, latency = 64, 1e-2, 2e-3

        def measured_time(workers: int) -> float:
            cluster = SimulatedCluster(
                workers + 1,
                network=Network(workers + 1, latency=latency, bandwidth=1e9),
            )
            ms = SimulatedMasterSlave(
                OneMax(32), GAConfig(population_size=pop), cluster=cluster,
                eval_cost=eval_cost, chunks_per_worker=1, seed=4,
            )
            return ms.run(MaxGenerations(3)).sim_time

        def ablation():
            counts = [2, 4, 8, 16, 24, 32, 48, 64]
            times = {w: measured_time(w) for w in counts}
            best_measured = min(times, key=times.get)
            predicted = optimal_worker_count(pop, eval_cost, latency)
            return best_measured, predicted

        best_measured, predicted = benchmark.pedantic(ablation, iterations=1, rounds=1)
        assert 0.25 * predicted <= best_measured <= 4.0 * predicted, (
            f"measured knee {best_measured} vs predicted {predicted:.1f}"
        )
