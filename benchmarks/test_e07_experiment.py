"""Benchmark E7 — hierarchical multi-fidelity GA vs all-complex ensemble (Sefrioui & Periaux 2000).

Regenerates the experiment's tables/series in quick mode and asserts the
paper-shape expectations recorded in DESIGN.md's per-experiment index.
"""

def test_e07(experiment_runner):
    experiment_runner("E7")
