"""Benchmark E1 — Table 1: library feature matrix + model taxonomy.

Regenerates the experiment's tables/series in quick mode and asserts the
paper-shape expectations recorded in DESIGN.md's per-experiment index.
"""

def test_e01(experiment_runner):
    experiment_runner("E1")
