"""Benchmark E5 — takeover-time curves for the five cellular update policies (Giacobini 2003).

Regenerates the experiment's tables/series in quick mode and asserts the
paper-shape expectations recorded in DESIGN.md's per-experiment index.
"""

def test_e05(experiment_runner):
    experiment_runner("E5")
