"""Micro-benchmarks: operator, engine and simulator kernel throughput.

Not tied to a table/figure — these watch for performance regressions in the
hot paths every experiment exercises (per the profiling-first methodology:
the bottlenecks are variation, selection, fitness and the event loop).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.cluster import Simulator, Timeout
from repro.core import GAConfig, GenerationalEngine, SteadyStateEngine
from repro.core.operators.crossover import TwoPointCrossover, UniformCrossover
from repro.core.operators.mutation import BitFlipMutation, GaussianMutation
from repro.core.operators.selection import TournamentSelection
from repro.parallel import CellularGA, IslandModel
from repro.problems import OneMax, Rastrigin, Sphere


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestOperatorThroughput:
    def test_two_point_crossover(self, benchmark, rng):
        a = rng.integers(0, 2, 256, dtype=np.int8)
        b = rng.integers(0, 2, 256, dtype=np.int8)
        benchmark(TwoPointCrossover(), rng, a, b)

    def test_uniform_crossover(self, benchmark, rng):
        a = rng.integers(0, 2, 256, dtype=np.int8)
        b = rng.integers(0, 2, 256, dtype=np.int8)
        benchmark(UniformCrossover(), rng, a, b)

    def test_bitflip_mutation(self, benchmark, rng):
        g = rng.integers(0, 2, 256, dtype=np.int8)
        benchmark(BitFlipMutation(), rng, g)

    def test_gaussian_mutation(self, benchmark, rng):
        g = rng.random(256)
        benchmark(GaussianMutation(sigma=0.1), rng, g)

    def test_tournament_selection(self, benchmark, rng):
        from repro.core import Individual

        pop = []
        for k in range(256):
            ind = Individual(genome=np.zeros(8))
            ind.fitness = float(k)
            pop.append(ind)
        benchmark(TournamentSelection(2), rng, pop, 256, True)


class TestEngineThroughput:
    def test_generational_generation(self, benchmark):
        eng = GenerationalEngine(OneMax(128), GAConfig(population_size=128), seed=1)
        eng.initialize()
        benchmark(eng.step)

    def test_steady_state_generation(self, benchmark):
        eng = SteadyStateEngine(OneMax(128), GAConfig(population_size=128), seed=1)
        eng.initialize()
        benchmark(eng.step)

    def test_continuous_generation(self, benchmark):
        eng = GenerationalEngine(Rastrigin(dims=32), GAConfig(population_size=64), seed=1)
        eng.initialize()
        benchmark(eng.step)

    def test_cellular_sweep(self, benchmark):
        cga = CellularGA(OneMax(64), rows=16, cols=16, seed=1)
        cga.initialize()
        benchmark(cga.step)

    def test_island_epoch(self, benchmark):
        model = IslandModel(OneMax(64), 8, GAConfig(population_size=16), seed=1)
        model.initialize()
        benchmark(model.step_epoch)


def _best_rate(fn, *, repeats: int = 9, inner: int = 30) -> float:
    """Calls per second, best of ``repeats`` timed bursts (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return 1.0 / best


class TestBatchEvaluationThroughput:
    """The vectorized fast path must beat the scalar loop by a wide margin
    (acceptance floor: 5x on a population of 256) while returning
    bit-identical fitnesses."""

    POP = 256

    def _compare(self, problem):
        rng = np.random.default_rng(0)
        batch = np.stack([problem.spec.sample(rng) for _ in range(self.POP)])
        genomes = list(batch)
        scalar_rate = _best_rate(lambda: [problem.evaluate(g) for g in genomes])
        batch_rate = _best_rate(lambda: problem.evaluate_batch(batch))
        assert np.array_equal(
            problem.evaluate_batch(batch),
            np.asarray([problem.evaluate(g) for g in genomes], dtype=float),
        )
        ratio = batch_rate / scalar_rate
        assert ratio >= 5.0, (
            f"{problem.name}: batched evaluation only {ratio:.1f}x the scalar "
            f"loop (need >= 5x)"
        )
        return ratio

    def test_onemax_batch_vs_scalar(self):
        print(f"OneMax batch speedup: {self._compare(OneMax(256)):.0f}x")

    def test_sphere_batch_vs_scalar(self):
        print(f"Sphere batch speedup: {self._compare(Sphere(dims=64)):.0f}x")

    def test_onemax_batch_kernel(self, benchmark, rng):
        p = OneMax(256)
        batch = np.stack([p.spec.sample(rng) for _ in range(self.POP)])
        benchmark(p.evaluate_batch, batch)

    def test_sphere_batch_kernel(self, benchmark, rng):
        p = Sphere(dims=64)
        batch = np.stack([p.spec.sample(rng) for _ in range(self.POP)])
        benchmark(p.evaluate_batch, batch)


class TestSimulatorThroughput:
    #: dispatch floor for the heappop-once hot loop — with the horizon
    #: check hoisted out of the no-``until`` path the measured rate on a
    #: single shared CPU core is ~600-950k events/s, so 150k/s flags a
    #: real regression (peek+pop double access, re-validation on resume,
    #: per-event horizon compare) without flaking on slow CI runners
    EVENTS_PER_SEC_FLOOR = 150_000

    def test_event_dispatch_floor(self):
        from repro.cluster import sim as sim_mod

        n = 50_000

        def run_n():
            sim = Simulator()

            def ticker():
                for _ in range(n):
                    yield Timeout(1.0)

            sim.process(ticker())
            sim.run()

        best = 0.0
        for _ in range(3):
            before = sim_mod.events_dispatched()
            start = time.perf_counter()
            run_n()
            elapsed = time.perf_counter() - start
            dispatched = sim_mod.events_dispatched() - before
            assert dispatched >= n  # the counter must actually count
            best = max(best, dispatched / elapsed)
        assert best >= self.EVENTS_PER_SEC_FLOOR, (
            f"simulator kernel dispatched only {best:,.0f} events/s "
            f"(floor {self.EVENTS_PER_SEC_FLOOR:,})"
        )

    def test_event_dispatch_rate(self, benchmark):
        def run_10k_events():
            sim = Simulator()

            def ticker():
                for _ in range(10_000):
                    yield Timeout(1.0)

            sim.process(ticker())
            sim.run()
            return sim.now

        assert benchmark(run_10k_events) == 10_000.0

    def test_message_passing_rate(self, benchmark):
        def ping_pong_2k():
            sim = Simulator()
            a, b = sim.inbox("a"), sim.inbox("b")

            def ping():
                for _ in range(1_000):
                    b.put("ping")
                    yield a

            def pong():
                for _ in range(1_000):
                    yield b
                    a.put("pong")

            sim.process(ping())
            sim.process(pong())
            sim.run()

        benchmark(ping_pong_2k)


class TestObservabilityOverhead:
    """The zero-overhead-when-disabled promise, as an enforced floor.

    Observability's only touch on the simulator hot loop is one ambient
    check per :meth:`Simulator.run` call (never per event), so the
    disabled-mode dispatch rate must clear the same floor as the
    uninstrumented kernel.  Enabled mode adds the session counter update
    per ``run()`` — still amortised over every event of the run — and its
    measured overhead on this dispatch-only workload stays well under the
    documented 10% ceiling (``docs/observability.md``).
    """

    EVENTS_PER_SEC_FLOOR = 100_000
    ENABLED_OVERHEAD_CEILING = 0.10

    N = 50_000

    def _run_n(self):
        sim = Simulator()

        def ticker():
            for _ in range(self.N):
                yield Timeout(1.0)

        sim.process(ticker())
        sim.run()

    def _rate(self, repeats: int = 3) -> float:
        best = 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            self._run_n()
            best = max(best, self.N / (time.perf_counter() - start))
        return best

    def test_disabled_mode_clears_dispatch_floor(self):
        from repro.obs import current_obs

        assert current_obs() is None  # the default: observability off
        assert self._rate() >= self.EVENTS_PER_SEC_FLOOR

    def test_enabled_mode_overhead_within_documented_ceiling(self):
        from repro.obs import obs_session

        off = self._rate(repeats=5)
        with obs_session(label="overhead-bench") as session:
            on = self._rate(repeats=5)
        assert session.metrics.counter("sim.events_dispatched").value >= 5 * self.N
        overhead = max(0.0, (off - on) / off)
        assert overhead < self.ENABLED_OVERHEAD_CEILING, (
            f"obs-enabled dispatch overhead {overhead:.1%} exceeds the "
            f"documented <{self.ENABLED_OVERHEAD_CEILING:.0%} ceiling"
        )
        # enabled mode must also stay above the absolute floor
        assert on >= self.EVENTS_PER_SEC_FLOOR


class TestVariationThroughput:
    """ISSUE 7 acceptance floor: the vectorized selection-crossover-mutation
    cycle must produce offspring >= 10x faster than the scalar per-Individual
    cycle on a 1k-individual OneMax generation."""

    POP = 1000
    LENGTH = 128
    FLOOR = 10.0

    def _offspring_rates(self):
        from repro.core.variation import make_offspring
        from repro.core.vectorized import selection_kernel as _sk
        from repro.core.vectorized import vector_offspring
        from repro.core import Individual

        problem = OneMax(self.LENGTH)
        spec = problem.spec
        cfg = GAConfig(population_size=self.POP).resolved_for(spec)
        rng = np.random.default_rng(0)
        genomes = np.stack(spec.sample_population(rng, self.POP))
        inds = []
        for g in genomes:
            ind = Individual(genome=g)
            ind.fitness = float(g.sum())
            inds.append(ind)
        fits = np.asarray([i.fitness for i in inds], dtype=float)
        kernel = _sk(cfg.selection)

        def scalar_generation():
            parents = cfg.selection(rng, inds, self.POP, True)
            make_offspring(rng, cfg, spec, parents, self.POP)

        def vector_generation():
            idx = kernel(rng, fits, self.POP, True)
            vector_offspring(rng, cfg, spec, genomes[idx], self.POP)

        # the scalar cycle is slow — small bursts keep the benchmark honest
        # without dominating suite runtime
        scalar_rate = _best_rate(scalar_generation, repeats=3, inner=2) * self.POP
        vector_rate = _best_rate(vector_generation, repeats=5, inner=5) * self.POP
        return scalar_rate, vector_rate

    def test_vectorized_offspring_floor(self):
        scalar_rate, vector_rate = self._offspring_rates()
        ratio = vector_rate / scalar_rate
        print(
            f"variation throughput: scalar {scalar_rate:,.0f} vs vectorized "
            f"{vector_rate:,.0f} offspring/s ({ratio:.1f}x)"
        )
        assert ratio >= self.FLOOR, (
            f"vectorized variation only {ratio:.1f}x the scalar cycle "
            f"(need >= {self.FLOOR}x)"
        )

    def test_vectorized_engine_step_beats_scalar(self):
        """End-to-end: whole engine generations, evaluation included."""
        scalar = GenerationalEngine(
            OneMax(self.LENGTH), GAConfig(population_size=self.POP), seed=1
        )
        scalar.initialize()
        vector = GenerationalEngine(
            OneMax(self.LENGTH),
            GAConfig(population_size=self.POP, vectorized_variation=True),
            seed=1,
        )
        vector.initialize()
        scalar_rate = _best_rate(scalar.step, repeats=3, inner=2)
        vector_rate = _best_rate(vector.step, repeats=3, inner=2)
        ratio = vector_rate / scalar_rate
        print(f"engine step speedup with vectorized variation: {ratio:.1f}x")
        assert ratio >= 3.0, (
            f"vectorized engine step only {ratio:.1f}x scalar (need >= 3x "
            f"with evaluation included)"
        )


def _pool_bench_task(n: int) -> float:
    """A few milliseconds of real NumPy work — the amortized-task regime
    the supervised pool is designed for (one trial >> one pipe hop)."""
    rng = np.random.default_rng(n)
    x = rng.random(n)
    total = 0.0
    for _ in range(40):
        total += float(np.sum(np.sqrt(x) * np.sin(x)))
    return total


@pytest.mark.skipif(os.name != "posix", reason="pool benchmark forks workers")
class TestSupervisedPoolOverhead:
    """ISSUE 8 acceptance: the supervision layer (explicit workers, one
    pipe round-trip and deadline bookkeeping per task) must stay within
    5% of a bare ``multiprocessing.Pool`` on fault-free runs with
    amortized trial-scale tasks.  Measured: ~0.93x — at this task size
    one-task-at-a-time dispatch balances the batch tail *better* than
    ``Pool.map``'s chunked dispatch, more than paying for the extra pipe
    hop (see docs/resilient_execution.md)."""

    JOBS = 4
    TASKS = 32
    PAYLOAD = 60_000
    CEILING = 1.05

    def _bare_seconds(self) -> float:
        from multiprocessing import get_context

        payloads = [self.PAYLOAD] * self.TASKS
        best = float("inf")
        ctx = get_context("fork")
        with ctx.Pool(self.JOBS) as pool:
            for _ in range(3):
                start = time.perf_counter()
                pool.map(_pool_bench_task, payloads)
                best = min(best, time.perf_counter() - start)
        return best

    def _supervised_seconds(self) -> float:
        from repro.runtime.resilient import SupervisedPool

        payloads = [self.PAYLOAD] * self.TASKS
        best = float("inf")
        with SupervisedPool(_pool_bench_task, self.JOBS) as pool:
            for _ in range(3):
                start = time.perf_counter()
                pool.run_batch(payloads)
                best = min(best, time.perf_counter() - start)
        return best

    def test_fault_free_overhead_within_ceiling(self):
        bare = self._bare_seconds()
        supervised = self._supervised_seconds()
        ratio = supervised / bare
        print(
            f"supervised pool overhead: bare {bare * 1e3:.1f}ms vs "
            f"supervised {supervised * 1e3:.1f}ms ({ratio:.3f}x)"
        )
        assert ratio <= self.CEILING, (
            f"supervised pool {ratio:.2f}x the bare pool on fault-free "
            f"amortized tasks (ceiling {self.CEILING}x)"
        )

    def test_results_identical_to_bare_pool(self):
        from multiprocessing import get_context

        from repro.runtime.resilient import SupervisedPool

        payloads = [self.PAYLOAD + i for i in range(8)]
        with get_context("fork").Pool(2) as pool:
            bare = pool.map(_pool_bench_task, payloads)
        with SupervisedPool(_pool_bench_task, 2) as pool:
            supervised = pool.run_batch(payloads)
        assert supervised == bare


class TestTraceThroughput:
    """The streaming trace pipeline's acceptance floors.

    ``Trace.record`` canonicalises every event into the pinned digest-line
    format *as it happens* (interned columnar storage + an incrementally
    updated sha256), so these floors watch the whole per-event cost:
    bookkeeping, line assembly and the amortised hash.  The workload is
    the shape simulations actually produce — bursts of small int-field
    events sharing one timestamp object (``sim.now``).
    """

    #: digest-only record floor; measured ~450-650k ev/s on one shared
    #: core, so half that flags a real hot-path regression
    RECORD_EVENTS_PER_SEC_FLOOR = 250_000
    #: what the issue-level acceptance asks of an idle machine; asserted
    #: only when REPRO_BENCH_STRICT=1 (CI smoke uses the floor above)
    RECORD_EVENTS_PER_SEC_TARGET = 500_000
    #: O(1) finalize must beat the legacy O(n) re-walk by at least this
    #: factor on a 100k-event trace (measured: >1000x)
    FINALIZE_SPEEDUP_FLOOR = 10.0
    N_EVENTS = 100_000

    def _record_rate(self, retention: str) -> float:
        from repro.cluster.trace import Trace

        n = self.N_EVENTS
        best = 0.0
        for _ in range(5):
            trace = Trace(retention)
            record = trace.record
            now = 0.5  # one timestamp object per burst, like sim.now
            start = time.perf_counter()
            for _ in range(n):
                record(now, "dispatch", node=3, chunk=7)
            best = max(best, n / (time.perf_counter() - start))
        return best

    def test_record_floor_digest_only(self):
        rate = self._record_rate("digest-only")
        floor = (
            self.RECORD_EVENTS_PER_SEC_TARGET
            if os.environ.get("REPRO_BENCH_STRICT") == "1"
            else self.RECORD_EVENTS_PER_SEC_FLOOR
        )
        print(f"trace record (digest-only): {rate:,.0f} events/s")
        assert rate >= floor, (
            f"digest-only Trace.record ran {rate:,.0f} events/s "
            f"(floor {floor:,})"
        )

    def test_record_compact_not_slower_than_full(self):
        """Retention modes exist to *cut* cost; compact must never lose
        badly to full (they share the whole digest path and compact skips
        storage for non-retained kinds)."""
        full = self._record_rate("full")
        compact = self._record_rate("compact")
        print(f"trace record: full {full:,.0f} vs compact {compact:,.0f} events/s")
        assert compact >= 0.8 * full

    def test_digest_finalize_speedup_vs_walker(self):
        from repro.cluster.trace import Trace
        from repro.verify.digest import trace_digest_walk

        trace = Trace("full")
        record = trace.record
        for i in range(self.N_EVENTS):
            record(i * 0.001, "msg", src=1, dst=2, mid=i)
        # finalize: flush the <=256 buffered lines and read the hash...
        start = time.perf_counter()
        incremental = trace.digest_hex()
        finalize = time.perf_counter() - start
        # ...vs the legacy walker re-canonicalising all 100k events
        start = time.perf_counter()
        legacy = trace_digest_walk(trace)
        walk = time.perf_counter() - start
        assert incremental == legacy  # same pinned byte format
        speedup = walk / max(finalize, 1e-9)
        print(
            f"digest finalize {finalize * 1e6:,.0f}us vs walker "
            f"{walk * 1e3:,.0f}ms ({speedup:,.0f}x)"
        )
        assert speedup >= self.FINALIZE_SPEEDUP_FLOOR, (
            f"incremental finalize only {speedup:.1f}x faster than the "
            f"legacy walk (floor {self.FINALIZE_SPEEDUP_FLOOR}x)"
        )

    def test_compact_transport_payload_smaller(self):
        """The sweep-worker story: a compact trace pickles far smaller
        than a full one over the same event stream."""
        import pickle

        from repro.cluster.trace import Trace, trace_retention

        def build(mode):
            with trace_retention(mode):
                trace = Trace()
            for i in range(5_000):
                trace.record(i * 0.01, "msg", src=i % 8, dst=(i + 1) % 8, mid=i)
                if i % 50 == 0:
                    trace.generation(i * 0.01, deme=i % 8, generation=i // 50, best=1.0)
            return trace

        full, compact = build("full"), build("compact")
        assert full.digest_hex() == compact.digest_hex()
        full_bytes = len(pickle.dumps(full))
        compact_bytes = len(pickle.dumps(compact))
        print(f"trace pickle: full {full_bytes:,}B vs compact {compact_bytes:,}B")
        assert compact_bytes < full_bytes / 5
