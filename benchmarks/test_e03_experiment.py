"""Benchmark E3 — island-model linear and super-linear speedup to solution (Alba & Troya).

Regenerates the experiment's tables/series in quick mode and asserts the
paper-shape expectations recorded in DESIGN.md's per-experiment index.
"""

def test_e03(experiment_runner):
    experiment_runner("E3")
