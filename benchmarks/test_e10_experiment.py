"""Benchmark E10 — punctuated equilibria: divergence, bursts, recombination (Cohoon 1987).

Regenerates the experiment's tables/series in quick mode and asserts the
paper-shape expectations recorded in DESIGN.md's per-experiment index.
"""

def test_e10(experiment_runner):
    experiment_runner("E10")
