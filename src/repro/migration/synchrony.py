"""Synchronous vs asynchronous migrant exchange.

"[Migration] is of two types — synchronous/asynchronous" (survey §1.1);
Alba & Troya (2001) showed the choice "could affect the evaluation efforts
and also provoke some differences in the search time and speedup".

The island model posts emigrants into per-deme :class:`MigrationBuffer`
mailboxes.  In *synchronous* mode a barrier empties all mailboxes at the
same epoch — every deme sees migrants from the same generation.  In
*asynchronous* mode each deme drains its mailbox whenever it happens to
step, so migrants may be one or more generations stale (``delay`` models
network latency in generations).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.individual import Individual

__all__ = ["MigrationBuffer", "Synchrony"]


@dataclass
class _Parcel:
    """A batch of migrants in flight."""

    migrants: list[Individual]
    source: int
    sent_at: int  # generation (or logical time) of sending


class MigrationBuffer:
    """Mailbox of in-flight migrant parcels for one destination deme.

    Parameters
    ----------
    delay:
        Minimum number of epochs a parcel stays in flight (asynchronous
        latency model).  0 = instantaneous delivery.
    capacity:
        Maximum parcels held; older parcels are dropped first on overflow
        (models bounded mailbox memory).
    """

    def __init__(self, delay: int = 0, capacity: int | None = None) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.delay = delay
        self.capacity = capacity
        self._parcels: deque[_Parcel] = deque()
        self.dropped = 0

    def post(self, migrants: list[Individual], source: int, sent_at: int) -> None:
        """Deposit a parcel (no-op for empty migrant lists)."""
        if not migrants:
            return
        self._parcels.append(_Parcel(list(migrants), source, sent_at))
        if self.capacity is not None:
            while len(self._parcels) > self.capacity:
                self._parcels.popleft()
                self.dropped += 1

    def collect(self, now: int) -> list[tuple[int, list[Individual]]]:
        """Withdraw every parcel whose latency has elapsed.

        Returns ``(source, migrants)`` pairs in arrival order.
        """
        ready: list[tuple[int, list[Individual]]] = []
        remaining: deque[_Parcel] = deque()
        for parcel in self._parcels:
            if now - parcel.sent_at >= self.delay:
                ready.append((parcel.source, parcel.migrants))
            else:
                remaining.append(parcel)
        self._parcels = remaining
        return ready

    def __len__(self) -> int:
        return len(self._parcels)

    @property
    def pending(self) -> int:
        return sum(len(p.migrants) for p in self._parcels)


@dataclass(frozen=True)
class Synchrony:
    """Exchange-timing mode for an island model.

    ``synchronous=True`` → barrier semantics: all demes advance a generation
    together, then migrate together (delay forced to 0).

    ``synchronous=False`` → each deme advances at its own (possibly
    heterogeneous) pace and drains whatever migrants have arrived;
    ``delay`` epochs of staleness are applied to parcels.
    """

    synchronous: bool = True
    delay: int = 0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if self.synchronous and self.delay != 0:
            raise ValueError("synchronous exchange cannot have a delivery delay")

    def make_buffer(self) -> MigrationBuffer:
        return MigrationBuffer(delay=self.delay)

    @property
    def name(self) -> str:
        if self.synchronous:
            return "sync"
        return f"async(delay={self.delay})"
