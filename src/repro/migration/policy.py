"""Migration policies: which individuals leave, and who they replace.

"Migration … is a new process which describes how many migrants will be
exchanged between the demes, when there is the right time for migration and
which type of the migration schemes is useful." — survey §1.1.

A :class:`MigrationPolicy` answers the *which* questions; schedules
(:mod:`repro.migration.schedule`) answer *when*; synchrony
(:mod:`repro.migration.synchrony`) answers *how* the exchange is timed.
Alba & Troya (2000) found migrant selection (best vs random) and the
replacement rule to be key knobs — exactly the fields here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..core.individual import Individual
from ..core.population import Population

__all__ = ["MigrationPolicy", "select_migrants", "integrate_immigrants"]

MigrantSelection = Literal["best", "random", "roulette", "worst"]
ImmigrantReplacement = Literal["worst", "random", "worst-if-better", "similar"]


@dataclass(frozen=True)
class MigrationPolicy:
    """Everything about a migration event except its timing.

    Parameters
    ----------
    rate:
        Migrants sent per event per outgoing link.
    selection:
        How emigrants are chosen: ``"best"`` (elitist — the common choice),
        ``"random"`` (diversity-preserving), ``"roulette"``
        (fitness-proportional), ``"worst"`` (a pathological control).
    replacement:
        How immigrants enter: ``"worst"`` (displace the worst locals),
        ``"random"``, ``"worst-if-better"`` (only accept improving
        immigrants), ``"similar"`` (displace the genotypically closest —
        crowding-flavoured).
    copy:
        If True (pollination model) the emigrant also stays home; if False
        it genuinely leaves (the island keeps its size by back-filling with
        the immigrant flow, so we always copy in practice — the flag only
        affects whether the source deme *also* keeps its copy).
    """

    rate: int = 1
    selection: MigrantSelection = "best"
    replacement: ImmigrantReplacement = "worst-if-better"
    copy: bool = True

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"migration rate must be >= 0, got {self.rate}")


def select_migrants(
    rng: np.random.Generator,
    population: Population,
    policy: MigrationPolicy,
) -> list[Individual]:
    """Choose ``policy.rate`` emigrant *copies* from ``population``."""
    k = min(policy.rate, len(population))
    if k == 0:
        return []
    if policy.selection == "best":
        chosen = population.sorted()[:k]
    elif policy.selection == "worst":
        chosen = population.sorted()[-k:]
    elif policy.selection == "random":
        idx = rng.choice(len(population), size=k, replace=False)
        chosen = [population[int(i)] for i in idx]
    elif policy.selection == "roulette":
        f = population.fitness_array()
        w = f - f.min() if population.maximize else f.max() - f
        total = w.sum()
        probs = (w / total) if total > 0 else np.full(len(population), 1.0 / len(population))
        idx = rng.choice(len(population), size=k, replace=False, p=probs)
        chosen = [population[int(i)] for i in idx]
    else:
        raise ValueError(f"unknown migrant selection {policy.selection!r}")
    return [ind.copy() for ind in chosen]


def integrate_immigrants(
    rng: np.random.Generator,
    population: Population,
    immigrants: list[Individual],
    policy: MigrationPolicy,
    *,
    source: int | None = None,
) -> int:
    """Insert ``immigrants`` into ``population`` per the replacement rule.

    Returns the number actually accepted.  Immigrants must be evaluated.
    """
    accepted = 0
    for imm in immigrants:
        imm = imm.copy(origin=f"migrant:{source}" if source is not None else "migrant")
        if policy.replacement == "worst":
            population.replace_worst(imm)
            accepted += 1
        elif policy.replacement == "random":
            idx = int(rng.integers(0, len(population)))
            population[idx] = imm
            accepted += 1
        elif policy.replacement == "worst-if-better":
            worst = population.worst()
            fi, fw = imm.require_fitness(), worst.require_fitness()
            improves = fi > fw if population.maximize else fi < fw
            if improves:
                population.replace_worst(imm)
                accepted += 1
        elif policy.replacement == "similar":
            # displace the genotypically nearest member (restricted tournament)
            genomes = np.stack([ind.genome.astype(float) for ind in population])
            target = imm.genome.astype(float)
            d = np.abs(genomes - target[None, :]).sum(axis=1)
            idx = int(np.argmin(d))
            fi, fv = imm.require_fitness(), population[idx].require_fitness()
            at_least_as_good = fi >= fv if population.maximize else fi <= fv
            if at_least_as_good:
                population[idx] = imm
                accepted += 1
        else:
            raise ValueError(f"unknown immigrant replacement {policy.replacement!r}")
    return accepted
