"""Migration schedules: *when* demes exchange individuals.

Alba & Troya (2000) "investigated the influence of migration frequency" —
the interval between exchanges.  Besides the classic periodic epoch we
provide probabilistic and adaptive (stagnation-triggered) schedules.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "MigrationSchedule",
    "PeriodicSchedule",
    "ProbabilisticSchedule",
    "StagnationTriggeredSchedule",
    "NeverSchedule",
]


class MigrationSchedule(abc.ABC):
    """Predicate: should deme ``deme`` migrate at generation ``generation``?"""

    @abc.abstractmethod
    def should_migrate(
        self,
        deme: int,
        generation: int,
        rng: np.random.Generator,
        *,
        stagnant_generations: int = 0,
    ) -> bool: ...


@dataclass(frozen=True)
class PeriodicSchedule(MigrationSchedule):
    """Every ``interval`` generations (the *migration frequency* knob).

    ``interval=1`` is maximal coupling; large intervals approach isolation.
    """

    interval: int = 5

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"interval must be >= 1, got {self.interval}")

    def should_migrate(
        self,
        deme: int,
        generation: int,
        rng: np.random.Generator,
        *,
        stagnant_generations: int = 0,
    ) -> bool:
        return generation > 0 and generation % self.interval == 0


@dataclass(frozen=True)
class ProbabilisticSchedule(MigrationSchedule):
    """Migrate each generation independently with probability ``prob``.

    Desynchronises demes even under a synchronous stepping loop — a cheap
    model of the asynchronous behaviour Alba & Troya (2001) analyze.
    """

    prob: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0,1], got {self.prob}")

    def should_migrate(
        self,
        deme: int,
        generation: int,
        rng: np.random.Generator,
        *,
        stagnant_generations: int = 0,
    ) -> bool:
        return generation > 0 and rng.random() < self.prob


@dataclass(frozen=True)
class StagnationTriggeredSchedule(MigrationSchedule):
    """Migrate only when a deme has stagnated ``patience`` generations.

    An *adaptive* policy: fresh genes arrive exactly when a deme's own
    search has flattened (punctuated-equilibria flavoured).
    """

    patience: int = 5

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")

    def should_migrate(
        self,
        deme: int,
        generation: int,
        rng: np.random.Generator,
        *,
        stagnant_generations: int = 0,
    ) -> bool:
        return stagnant_generations >= self.patience


@dataclass(frozen=True)
class NeverSchedule(MigrationSchedule):
    """No migration ever — turns an island model into isolated demes."""

    def should_migrate(
        self,
        deme: int,
        generation: int,
        rng: np.random.Generator,
        *,
        stagnant_generations: int = 0,
    ) -> bool:
        return False
