"""Migration machinery: policies (who), schedules (when), synchrony (how)."""

from .policy import MigrationPolicy, integrate_immigrants, select_migrants
from .schedule import (
    MigrationSchedule,
    NeverSchedule,
    PeriodicSchedule,
    ProbabilisticSchedule,
    StagnationTriggeredSchedule,
)
from .synchrony import MigrationBuffer, Synchrony

__all__ = [
    "MigrationPolicy",
    "select_migrants",
    "integrate_immigrants",
    "MigrationSchedule",
    "PeriodicSchedule",
    "ProbabilisticSchedule",
    "StagnationTriggeredSchedule",
    "NeverSchedule",
    "MigrationBuffer",
    "Synchrony",
]
