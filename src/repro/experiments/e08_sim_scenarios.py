"""E8 — specialized island model scenarios (Xiao & Amstrong 2003).

"Seven scenarios of the model with a different number of subEAs,
communication topology and specialization are tested and the results are
compared."

We run the seven standard scenarios on ZDT1 and compare the hypervolume of
each scenario's non-dominated archive (fixed per-subEA budget so scenarios
with more subEAs also spend more total evaluations, as in the original —
plus a per-evaluation-normalised column for the fair view).  Shapes:
objective specialisation beats no specialisation; mixed-weight subEAs
(S5-S7) populate the centre of the front; denser topologies help the
specialised scenarios.
"""

from __future__ import annotations

import numpy as np

from ..parallel.specialized import standard_scenarios
from ..runtime.sweep import Trial, run_sweep
from ..spec import RunSpec, engine, ga_config, operator, problem
from .report import ExperimentReport, SeriesSpec, TableSpec

__all__ = ["run", "trial_specs"]

HV_REFERENCE = (1.1, 7.0)  # safely dominates random ZDT1 objective vectors


def _scenario_spec(
    scenario_index: int, *, pop: int, epochs: int, dims: int, seed: int
) -> RunSpec:
    return RunSpec(
        engine=engine(
            "specialized",
            problem=problem("zdt1", dims=dims),
            scenario=operator("standard-scenario", index=scenario_index),
            config=ga_config(population_size=pop, elitism=1),
            hv_reference=HV_REFERENCE,
        ),
        seed=seed,
        run={"epochs": epochs},
    )


def _run_scenario(res) -> dict:
    return {
        "hypervolume": res.hypervolume,
        "evaluations": res.evaluations,
        "archive_size": res.archive_size,
        "front": res.archive_objectives.tolist(),
    }


def _grid(quick: bool) -> tuple[int, list[Trial]]:
    seeds = range(2) if quick else range(4)
    epochs = 12 if quick else 30
    pop = 24 if quick else 40
    dims = 10 if quick else 20
    trials = [
        Trial(
            _run_scenario,
            spec=_scenario_spec(i, pop=pop, epochs=epochs, dims=dims, seed=1100 + s),
            seed=1100 + s,
        )
        for i in range(len(standard_scenarios()))
        for s in seeds
    ]
    return len(seeds), trials


def trial_specs(quick: bool = False) -> list[RunSpec]:
    """Every declarative run this experiment dispatches (CLI ``specs`` verb)."""
    _, trials = _grid(quick)
    return [s for t in trials for s in t.specs]


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E8",
        title="Specialized island model: seven scenarios on ZDT1",
    )
    n_seeds, scen_trials = _grid(quick)

    table = TableSpec(
        title="Scenario comparison (hypervolume w.r.t. (1.1, 7.0), means over seeds)",
        columns=["scenario", "subEAs", "topology", "hypervolume", "hv / kEval", "archive"],
    )
    fig = SeriesSpec(
        title="Final non-dominated fronts (one seed)",
        x_label="f1",
        y_label="f2",
    )
    hv: dict[str, float] = {}
    extremes: dict[str, tuple[float, float]] = {}  # (min f1, min f2) over seeds
    scenarios = standard_scenarios()
    scen_results = run_sweep("E8", scen_trials, quick=quick)
    for i, scen in enumerate(scenarios):
        per_scen = scen_results[i * n_seeds : (i + 1) * n_seeds]
        hvs, per_eval, archives = [], [], []
        min_f1, min_f2 = np.inf, np.inf
        front = None
        for res in per_scen:
            front_arr = np.asarray(res["front"], dtype=float).reshape(-1, 2)
            hvs.append(res["hypervolume"])
            per_eval.append(res["hypervolume"] / (res["evaluations"] / 1000.0))
            archives.append(res["archive_size"])
            if front_arr.shape[0]:
                min_f1 = min(min_f1, float(front_arr[:, 0].min()))
                min_f2 = min(min_f2, float(front_arr[:, 1].min()))
            if front is None and front_arr.shape[0]:
                front = front_arr
        hv[scen.name] = float(np.mean(hvs))
        extremes[scen.name] = (min_f1, min_f2)
        table.add_row(
            scen.name,
            scen.n_subeas,
            scen.topology,
            round(hv[scen.name], 3),
            round(float(np.mean(per_eval)), 3),
            round(float(np.mean(archives)), 1),
        )
        if front is not None and scen.name in ("S1-aggregate", "S4-spec-complete", "S7-four-mixed"):
            order = np.argsort(front[:, 0])
            fig.add(scen.name, front[order, 0].tolist(), front[order, 1].tolist())
    report.tables.append(table)
    report.series.append(fig)

    report.expect(
        "every-scenario-yields-a-nontrivial-front",
        all(hv[k] > 0 for k in hv)
        and all(np.isfinite(extremes[k][0]) for k in extremes),
        f"hypervolumes span {min(hv.values()):.3f} – {max(hv.values()):.3f}",
    )
    report.expect(
        "specialists-reach-the-f1-extreme",
        extremes["S4-spec-complete"][0] <= extremes["S1-aggregate"][0] + 1e-9,
        f"min f1: specialists {extremes['S4-spec-complete'][0]:.4f} vs "
        f"aggregate {extremes['S1-aggregate'][0]:.4f}",
    )
    best_mixed = max(
        hv["S5-spec+agg-ring"], hv["S6-spec+agg-complete"], hv["S7-four-mixed"]
    )
    report.expect(
        "mixed-specialisation-beats-single-aggregate",
        best_mixed > hv["S1-aggregate"],
        f"best mixed scenario {best_mixed:.3f} vs S1 {hv['S1-aggregate']:.3f} "
        "(SIM's conclusion: specialisation pays when combined with mixed-"
        "weight subEAs covering the front's interior)",
    )
    report.expect(
        "adding-mixed-weight-subEAs-helps",
        best_mixed >= hv["S4-spec-complete"],
        "best of S5/S6/S7 vs S4",
    )
    report.notes.append(
        "Pure specialists (S3/S4) excel at the front extremes but leave the "
        "interior to chance; hypervolume therefore favours scenarios mixing "
        "specialists with aggregate/mixed-weight subEAs (S5-S7)."
    )
    return report
