"""Experiment report structures and ASCII rendering.

Every experiment runner returns an :class:`ExperimentReport` — tables
(rows the paper's tables would hold), series (the curves its figures would
plot) and *expectations*: named boolean checks that the claimed shape
(who wins, what saturates, what orders how) actually held in this run.
Benchmarks assert the expectations; EXPERIMENTS.md records them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["TableSpec", "SeriesSpec", "Expectation", "ExperimentReport", "render_table", "render_series"]


@dataclass
class TableSpec:
    """One table: column headers + rows of cells."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells for {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> list[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        return render_table(self)


@dataclass
class SeriesSpec:
    """One figure: named (x, y) series sharing axes."""

    title: str
    x_label: str
    y_label: str
    series: dict[str, tuple[list[float], list[float]]] = field(default_factory=dict)

    def add(self, name: str, xs: Sequence[float], ys: Sequence[float]) -> None:
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
        self.series[name] = (list(xs), list(ys))

    def render(self, width: int = 60, height: int = 16) -> str:
        return render_series(self, width=width, height=height)


@dataclass(frozen=True)
class Expectation:
    """One named shape-check with its observed outcome."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f" — {self.detail}" if self.detail else "")


@dataclass
class ExperimentReport:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    tables: list[TableSpec] = field(default_factory=list)
    series: list[SeriesSpec] = field(default_factory=list)
    expectations: list[Expectation] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def expect(self, name: str, passed: bool, detail: str = "") -> None:
        self.expectations.append(Expectation(name=name, passed=bool(passed), detail=detail))

    @property
    def all_passed(self) -> bool:
        return all(e.passed for e in self.expectations)

    def failed(self) -> list[Expectation]:
        return [e for e in self.expectations if not e.passed]

    def render(self) -> str:
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        for t in self.tables:
            parts.append(t.render())
        for s in self.series:
            parts.append(s.render())
        if self.expectations:
            parts.append("Expectations:")
            parts.extend(f"  {e}" for e in self.expectations)
        for n in self.notes:
            parts.append(f"note: {n}")
        return "\n\n".join(parts)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if cell == 0 or (1e-3 <= abs(cell) < 1e6):
            return f"{cell:.4g}"
        return f"{cell:.3e}"
    return str(cell)


def render_table(table: TableSpec) -> str:
    """Plain-text table with aligned columns."""
    header = list(table.columns)
    body = [[_fmt(c) for c in row] for row in table.rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [table.title]
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(sep)
    for r in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_series(spec: SeriesSpec, width: int = 60, height: int = 16) -> str:
    """Crude ASCII line plot — enough to eyeball curve shapes in a terminal."""
    lines = [f"{spec.title}   (y: {spec.y_label}, x: {spec.x_label})"]
    all_x = [x for xs, _ in spec.series.values() for x in xs]
    all_y = [y for _, ys in spec.series.values() for y in ys]
    if not all_x:
        lines.append("(no data)")
        return "\n".join(lines)
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for k, (name, (xs, ys)) in enumerate(spec.series.items()):
        m = markers[k % len(markers)]
        for x, y in zip(xs, ys):
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            canvas[row][col] = m
    lines.append(f"{y_hi:.4g}".rjust(10))
    for row in canvas:
        lines.append(" " * 10 + "|" + "".join(row))
    lines.append(f"{y_lo:.4g}".rjust(10) + "+" + "-" * width)
    lines.append(" " * 11 + f"{x_lo:.4g}".ljust(width // 2) + f"{x_hi:.4g}".rjust(width // 2))
    legend = "   ".join(
        f"{markers[k % len(markers)]}={name}" for k, name in enumerate(spec.series)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
