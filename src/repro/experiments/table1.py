"""E1 — the survey's literal Table 1, regenerated.

"Table 1. Parallel genetic libraries and their characteristics (name,
native programming language, inter-process communication and operating
system)."  The registry below is the machine-readable form; the runner
renders it verbatim and appends this framework's own row plus a taxonomy
table of the models we implement (the survey's §1.2 classification).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.sweep import Trial, run_sweep
from .report import ExperimentReport, TableSpec

__all__ = ["LibraryEntry", "TABLE1_LIBRARIES", "run"]


@dataclass(frozen=True)
class LibraryEntry:
    """One row of the survey's Table 1."""

    index: int
    name: str
    language: str
    communication: str
    os: str


#: the seven libraries exactly as printed in the paper
TABLE1_LIBRARIES: tuple[LibraryEntry, ...] = (
    LibraryEntry(1, "DGENESIS", "C", "sockets", "UNIX"),
    LibraryEntry(2, "GAlib", "C++", "PVM", "UNIX"),
    LibraryEntry(3, "GALOPPS", "C/C++", "PVM", "UNIX"),
    LibraryEntry(4, "PGA", "C", "PVM", "Any"),
    LibraryEntry(5, "PGAPack", "C/C++", "MPI", "UNIX"),
    LibraryEntry(6, "POOGAL", "C++/Java", "MPI", "Any"),
    LibraryEntry(7, "ParadisEO", "C++", "MPI", "UNIX"),
)

#: this framework, in the same schema (communication = simulated message
#: passing + multiprocessing; OS = anywhere CPython runs)
SELF_ENTRY = LibraryEntry(8, "repro (this work)", "Python", "simulated MP / multiprocessing", "Any")


def _taxonomy_rows() -> list[list[str]]:
    """Taxonomy rows for the models this framework implements (survey §1.2)."""
    from ..parallel import (
        CellularGA,
        CellularIslandModel,
        DistributedCellularGA,
        HierarchicalGA,
        IslandModel,
        MasterSlaveGA,
        MasterSlaveIslandModel,
        PooledEvolution,
        SimulatedAsyncMasterSlave,
        SimulatedMasterSlave,
        SpecializedIslandModel,
    )

    rows = []
    for cls in (
        MasterSlaveGA,
        SimulatedMasterSlave,
        SimulatedAsyncMasterSlave,
        IslandModel,
        CellularGA,
        DistributedCellularGA,
        HierarchicalGA,
        SpecializedIslandModel,
        CellularIslandModel,
        MasterSlaveIslandModel,
        PooledEvolution,
    ):
        c = cls.classification
        rows.append(
            [cls.__name__, c.grain.value, c.walk.value, c.parallelism.value, c.programming.value]
        )
    return rows


def run(quick: bool = False) -> ExperimentReport:
    """Regenerate Table 1 and the model-taxonomy table."""
    report = ExperimentReport(
        experiment_id="E1",
        title="Table 1 — parallel genetic libraries and their characteristics",
    )
    t = TableSpec(
        title="Parallel genetic libraries",
        columns=["#", "Name", "Language", "Comm.", "OS"],
    )
    for e in TABLE1_LIBRARIES + (SELF_ENTRY,):
        t.add_row(e.index, e.name, e.language, e.communication, e.os)
    report.tables.append(t)

    tax = TableSpec(
        title="Implemented PGA models vs the survey's taxonomy",
        columns=["Model", "Grain", "Walk", "Parallelism", "Programming"],
    )
    (rows,) = run_sweep("E1", [Trial(_taxonomy_rows)], quick=quick)
    for row in rows:
        tax.add_row(*row)
    report.tables.append(tax)

    report.expect(
        "table1-has-7-literature-rows",
        len(TABLE1_LIBRARIES) == 7,
        f"{len(TABLE1_LIBRARIES)} literature rows",
    )
    report.expect(
        "all-four-grains-covered",
        {r[1] for r in tax.rows} == {"global", "coarse", "fine", "hybrid"},
        "global + coarse + fine + hybrid all implemented",
    )
    return report
