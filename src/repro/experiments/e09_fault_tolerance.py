"""E9 — master-slave vs island on heterogeneous, failure-prone clusters.

Gagné et al. (2003) "argued that the classic master-slave distribution
model was superior to the currently more popular island-model when
exploiting Beowulfs and networks of heterogenous workstations.  They
identified the key features of a good computing system for evolutionary
computation — *transparency, robustness* and *adaptivity* … they adjusted
and extended the master-slave model in order to considerate the
possibility of those [hard] failures."

Three shapes to reproduce:

1. *adaptivity*: on a heterogeneous cluster the chunked master-slave farm
   load-balances and finishes a fixed genetic workload far sooner than a
   barrier-synchronised island ensemble pinned one-deme-per-node;
2. *robustness*: with hard failures injected, the fault-tolerant farm
   completes every generation (re-dispatching lost chunks) at a bounded
   time overhead;
3. the non-fault-tolerant control loses work (lost chunks > 0).
"""

from __future__ import annotations

import numpy as np

from ..cluster.faults import sample_fault_plan
from ..runtime.sweep import Trial, run_sweep
from ..spec import RunSpec, cluster, engine, ga_config, problem, run_spec
from .report import ExperimentReport, TableSpec

__all__ = ["run", "trial_specs"]

EVAL_COST = 5e-3
N_NODES = 9  # master + 8 slaves; the island arm is costed analytically
# on the same 8 worker nodes (no spare is modelled here — supervised
# spare-node recovery is E13's subject)


def _hetero_speeds(seed: int) -> np.ndarray:
    """A 'network of heterogeneous workstations': speeds 0.25x – 2x."""
    rng = np.random.default_rng(seed)
    speeds = rng.uniform(0.25, 2.0, size=N_NODES)
    speeds[0] = 1.0  # master host
    return speeds


def _farm_spec(
    speeds_seed: int,
    *,
    fault_plan=None,
    fault_tolerant: bool = True,
    generations: int,
    pop: int,
    seed: int,
) -> RunSpec:
    return RunSpec(
        engine=engine(
            "sim-master-slave",
            problem=problem("onemax", length=64),
            config=ga_config(population_size=pop),
            cluster=cluster(
                N_NODES,
                speeds=_hetero_speeds(speeds_seed).tolist(),
                latency=1e-3,
                bandwidth=1e6,
                fault_plan=fault_plan,
            ),
            eval_cost=EVAL_COST,
            chunks_per_worker=3,
            fault_tolerant=fault_tolerant,
        ),
        seed=seed,
        run={"termination": generations},
    )


def _masterslave_time(spec: RunSpec) -> tuple[float, int, int]:
    rep = run_spec(spec)
    return rep.sim_time, rep.redispatches, rep.lost_chunks


def _island_time(*, speeds, generations: int, pop: int) -> float:
    """Barrier-equivalent island cost: every epoch waits for the slowest node.

    The simulated island driver is asynchronous, so for the adaptivity
    comparison we compute the synchronous-barrier completion time of the
    same workload analytically: epochs x (per-deme evals x cost / min speed),
    the textbook cost of one-deme-per-node lock-step islands.
    """
    n_islands = N_NODES - 1
    per_deme = max(2, pop // n_islands)
    slowest = float(np.min(speeds[1:]))
    per_epoch = per_deme * EVAL_COST / slowest
    return (generations + 1) * per_epoch  # +1 for initialisation


def _adapt_case(
    report, *, speeds_seed: int, generations: int, pop: int
) -> tuple[float, float]:
    """One adaptivity comparison: (farm time, lock-step island time)."""
    speeds = _hetero_speeds(speeds_seed)
    t_is = _island_time(speeds=speeds, generations=generations, pop=pop)
    return report.sim_time, t_is


def _robust_case(
    *, speeds_seed: int, plan_seed: int, generations: int, pop: int, seed: int
) -> tuple[float, float, int, int]:
    """One robustness comparison: (baseline, FT time, redispatches, lost chunks).

    Bundled into one raw-callable trial because the fault plan's horizon is
    sized from the baseline run's completion time — the follow-up specs
    only exist once the first result is known.
    """
    t_base, _, _ = _masterslave_time(
        _farm_spec(speeds_seed, generations=generations, pop=pop, seed=seed)
    )
    # failures sized to hit mid-run: horizon from the baseline time
    plan = sample_fault_plan(
        N_NODES,
        horizon=t_base,
        mtbf=t_base * 1.2,
        repair_time=t_base / 4,
        seed=plan_seed,
    )
    t_ft, redisp, _ = _masterslave_time(
        _farm_spec(
            speeds_seed,
            fault_plan=plan,
            fault_tolerant=True,
            generations=generations,
            pop=pop,
            seed=seed,
        )
    )
    _, _, lost = _masterslave_time(
        _farm_spec(
            speeds_seed,
            fault_plan=plan,
            fault_tolerant=False,
            generations=generations,
            pop=pop,
            seed=seed,
        )
    )
    return t_base, t_ft, redisp, lost


def _grid(quick: bool) -> tuple[range, int, int, list[Trial], list[Trial]]:
    generations = 8 if quick else 20
    pop = 96 if quick else 160
    seeds = range(2) if quick else range(5)
    adapt_trials = [
        Trial(
            _adapt_case,
            dict(speeds_seed=2200 + s, generations=generations, pop=pop),
            spec=_farm_spec(2200 + s, generations=generations, pop=pop, seed=50 + s),
            seed=50 + s,
        )
        for s in seeds
    ]
    robust_trials = [
        Trial(
            _robust_case,
            dict(speeds_seed=2200 + s, plan_seed=70 + s, generations=generations, pop=pop),
            seed=60 + s,
        )
        for s in seeds
    ]
    return seeds, generations, pop, adapt_trials, robust_trials


def trial_specs(quick: bool = False) -> list[RunSpec]:
    """Every declarative run this experiment dispatches (CLI ``specs`` verb).

    Only the adaptivity arm is statically spec-backed; the robustness
    trials derive their fault plans from a baseline run at execution time."""
    _, _, _, adapt_trials, _ = _grid(quick)
    return [s for t in adapt_trials for s in t.specs]


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E9",
        title="Fault-tolerant master-slave vs islands on heterogeneous clusters",
    )
    seeds, generations, pop, adapt_trials, robust_trials = _grid(quick)

    # (1) adaptivity on heterogeneous speeds, no failures -----------------------------
    adapt = TableSpec(
        title="Time to complete the same genetic workload (heterogeneous nodes)",
        columns=["seed", "master-slave farm", "lock-step islands", "farm advantage"],
    )
    advantages = []
    for s, (t_ms, t_is) in zip(seeds, run_sweep("E9", adapt_trials, quick=quick)):
        advantages.append(t_is / t_ms)
        adapt.add_row(s, round(t_ms, 2), round(t_is, 2), round(t_is / t_ms, 2))
    report.tables.append(adapt)

    # (2+3) robustness under hard failures ----------------------------------------------
    robust = TableSpec(
        title="Hard failures (repairable, MTBF per node): fault-tolerant vs not",
        columns=[
            "seed",
            "baseline time",
            "FT time",
            "FT overhead",
            "redispatches",
            "non-FT lost chunks",
        ],
    )
    overheads, all_redispatch, all_lost = [], [], []
    for s, (t_base, t_ft, redisp, lost) in zip(
        seeds, run_sweep("E9", robust_trials, quick=quick)
    ):
        overheads.append(t_ft / t_base)
        all_redispatch.append(redisp)
        all_lost.append(lost)
        robust.add_row(
            s, round(t_base, 2), round(t_ft, 2), round(t_ft / t_base, 2), redisp, lost
        )
    report.tables.append(robust)

    report.expect(
        "masterslave-adapts-to-heterogeneity-better-than-lockstep-islands",
        float(np.median(advantages)) > 1.0,
        f"median farm advantage {float(np.median(advantages)):.2f}x",
    )
    faulty_runs = [i for i, r in enumerate(all_redispatch) if r > 0 or all_lost[i] > 0]
    report.expect(
        "failures-actually-hit-some-runs",
        len(faulty_runs) > 0,
        f"{len(faulty_runs)}/{len(seeds)} runs saw failures",
    )
    report.expect(
        "fault-tolerant-farm-completes-all-generations",
        True,  # structurally guaranteed: ms.run raises on deadlock otherwise
        "all FT runs completed every generation",
    )
    report.expect(
        "ft-overhead-is-bounded",
        float(np.max(overheads)) < 4.0,
        f"max overhead {float(np.max(overheads)):.2f}x",
    )
    report.expect(
        "non-ft-control-loses-work-when-failures-hit",
        (sum(all_lost) > 0) or (sum(all_redispatch) == 0),
        f"total lost chunks {sum(all_lost)} (redispatches {sum(all_redispatch)})",
    )
    return report
