"""CLI: ``python -m repro.experiments [--quick] [--jobs N] [E3 E5 ...]``.

Runs the requested experiments (default: all) and prints each report's
tables, ASCII figures and expectation checks.  Exit status 1 if any
expectation failed.

``--jobs N`` fans each experiment's independent trials out over a
process pool; results are merged in declared order so reports are
fingerprint-identical to serial runs.  Trials are memoised in a
content-addressed on-disk cache (``--cache-dir``, default
``.sweep_cache``) keyed by experiment id, trial parameters, seed, quick
flag and a digest of the repro source tree — editing any kernel code
invalidates every entry.  ``--no-cache`` disables the cache entirely;
``--bench-out FILE`` writes per-trial telemetry as JSON.

``--obs-out FILE`` enables the observability subsystem for the whole
invocation and writes the merged span timeline + metrics as JSON
(schema ``repro-obs-timeline/v1``); ``--obs-trace FILE`` writes the
same spans in Chrome trace-event format for ``chrome://tracing`` /
Perfetto.  Both leave stdout — and the experiment results themselves —
byte-identical to an unobserved run.

Two declarative-spec verbs ride alongside the runner (see
``docs/run_specs.md``):

``specs [--quick] [--out FILE] [E3 ...]`` dumps every spec-backed run
the selected experiments would dispatch as one canonical
``repro-runspec-batch/v1`` JSON document;

``runspec FILE [--experiment E] [--index N]`` loads a single
``repro-runspec/v1`` document (or one entry of a batch) and executes
it, printing the spec digest and the result fingerprint — the exact
run an experiment dispatched, replayed from data alone.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..obs import obs_session, sweep_obs_summary, write_chrome_trace, write_timeline
from ..runtime.chaos import ChaosPlan
from ..runtime.resilient import ResilienceConfig
from ..runtime.sweep import SweepTelemetry
from . import REGISTRY, experiment_specs, run_experiment

DEFAULT_CACHE_DIR = ".sweep_cache"
BATCH_SCHEMA = "repro-runspec-batch/v1"


def normalize_id(raw: str) -> str:
    """Canonicalise a CLI experiment id: ``e03`` / ``E03`` / ``e3`` → ``E3``."""
    s = raw.strip().upper()
    if s.startswith("E") and s[1:].isdigit():
        s = f"E{int(s[1:])}"
    return s


def _cmd_specs(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments specs",
        description="Dump every spec-backed run as one repro-runspec-batch/v1 "
        "JSON document.",
    )
    parser.add_argument(
        "ids", nargs="*", default=[], help="experiment ids (default: all)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="quick-mode grids (CI budgets)"
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the batch document to FILE "
        "instead of stdout"
    )
    args = parser.parse_args(argv)
    ids = [normalize_id(i) for i in args.ids] or list(REGISTRY)
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        parser.error(
            f"unknown experiment ids {unknown}; choose from {', '.join(REGISTRY)}"
        )
    from ..spec import canonical_json

    experiments = {
        key: [spec.to_dict() for spec in experiment_specs(key, quick=args.quick)]
        for key in ids
    }
    doc = {"schema": BATCH_SCHEMA, "quick": args.quick, "experiments": experiments}
    text = canonical_json(doc, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    n_specs = sum(len(v) for v in experiments.values())
    print(
        f"[specs] {n_specs} run specs across {len(experiments)} experiments"
        + (f" -> {args.out}" if args.out else ""),
        file=sys.stderr,
    )
    return 0


def _cmd_runspec(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments runspec",
        description="Execute one serialized repro-runspec/v1 document "
        "(or one entry of a specs batch).",
    )
    parser.add_argument("file", help="RunSpec JSON file, or a batch from 'specs'")
    parser.add_argument(
        "--experiment", metavar="E", default=None,
        help="batch files: which experiment's spec list to index into "
        "(default: the first non-empty one)",
    )
    parser.add_argument(
        "--index", type=int, default=0, metavar="N",
        help="batch files: which spec of the experiment to run (default: 0)",
    )
    args = parser.parse_args(argv)
    from ..spec import RunSpec, run_spec
    from ..verify.digest import result_fingerprint

    try:
        with open(args.file, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {args.file}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(doc, dict):
        print(f"error: {args.file}: expected a JSON object", file=sys.stderr)
        return 2
    if doc.get("schema") == BATCH_SCHEMA:
        experiments = doc.get("experiments", {})
        key = normalize_id(args.experiment) if args.experiment else next(
            (k for k, v in experiments.items() if v), None
        )
        if key is None or key not in experiments:
            print(
                f"error: {args.file}: no experiment {args.experiment or '(any)'} "
                f"in batch; present: {sorted(experiments)}",
                file=sys.stderr,
            )
            return 2
        entries = experiments[key]
        if not 0 <= args.index < len(entries):
            print(
                f"error: --index {args.index} out of range for {key} "
                f"({len(entries)} specs)",
                file=sys.stderr,
            )
            return 2
        doc = entries[args.index]
        print(f"[runspec] {args.file}: {key}[{args.index}]", file=sys.stderr)
    try:
        spec = RunSpec.from_dict(doc)
    except (KeyError, TypeError, ValueError) as exc:
        print(f"error: not a valid run spec: {exc}", file=sys.stderr)
        return 2
    print(f"spec digest:        {spec.digest()}")
    result = run_spec(spec)
    print(f"result fingerprint: {result_fingerprint(result)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    raw = sys.argv[1:] if argv is None else list(argv)
    if raw and raw[0].lower() == "specs":
        return _cmd_specs(raw[1:])
    if raw and raw[0].lower() == "runspec":
        return _cmd_runspec(raw[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the survey's tables/figures (E1–E13).",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=[],
        help=f"experiment ids to run (default: all of {', '.join(REGISTRY)})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small seeds/budgets (seconds per experiment instead of minutes)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="run each experiment twice and check the runs are identical "
        "(appends a determinism-audit expectation; the second run bypasses "
        "the trial cache)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=int(os.environ.get("REPRO_SWEEP_JOBS", "1")),
        metavar="N",
        help="worker processes for trial fan-out (default: 1, i.e. serial; "
        "env REPRO_SWEEP_JOBS overrides the default)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="content-addressed trial cache directory "
        f"(default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the trial cache (every trial recomputes)",
    )
    parser.add_argument(
        "--bench-out",
        metavar="FILE",
        help="write per-trial telemetry (wall time, simulated events, "
        "evaluations, cache hits) to FILE as JSON; flushed after every "
        "sweep and on interrupt, so a killed run leaves partial telemetry",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-trial wall-clock deadline on the fork pool: a worker "
        "stalled past it is killed and the trial retried (default: none)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="K",
        help="retries per trial after a worker death, timeout or raise "
        "before the trial is quarantined as poison (default: 2)",
    )
    parser.add_argument(
        "--chaos-plan",
        metavar="FILE",
        help="inject the deterministic fault plan (repro-chaos-plan/v1 "
        "JSON) into pool workers — for testing the resilience layer; "
        "only applies with --jobs > 1 (the serial path never faults)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume a sweep killed mid-flight: trials journalled by the "
        "crashed run are served from the cache and counted as resumed "
        "(requires the trial cache)",
    )
    parser.add_argument(
        "--obs-out",
        metavar="FILE",
        help="enable observability and write the merged span timeline "
        "(repro-obs-timeline/v1 JSON) to FILE",
    )
    parser.add_argument(
        "--obs-trace",
        metavar="FILE",
        help="enable observability and write the spans in Chrome "
        "trace-event format to FILE (open in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--verify-digest",
        action="store_true",
        help="cross-check every full-retention trace digest against the "
        "legacy post-hoc walker (slow; guards the incremental fast path "
        "against canonical-format drift, see docs/tracing.md)",
    )
    args = parser.parse_args(raw)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.deadline is not None and args.deadline <= 0:
        parser.error("--deadline must be > 0")
    raw_ids = list(args.ids)
    # tolerate an explicit `run` verb (``python -m repro.experiments run e03``)
    if raw_ids and raw_ids[0].lower() == "run":
        raw_ids = raw_ids[1:]
    ids = [normalize_id(i) for i in raw_ids] or list(REGISTRY)
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        parser.error(
            f"unknown experiment ids {unknown}; choose from {', '.join(REGISTRY)}"
        )
    cache_dir = None if args.no_cache else args.cache_dir
    if args.resume and cache_dir is None:
        parser.error("--resume requires the trial cache (drop --no-cache)")
    chaos = None
    if args.chaos_plan:
        try:
            chaos = ChaosPlan.load(args.chaos_plan)
        except (OSError, ValueError) as exc:
            parser.error(f"--chaos-plan {args.chaos_plan}: {exc}")
        if args.jobs < 2:
            print(
                "[chaos] warning: --chaos-plan has no effect with --jobs 1 "
                "(faults only apply inside pool workers)",
                file=sys.stderr,
            )
    resilience = ResilienceConfig(
        deadline_s=args.deadline,
        max_retries=args.max_retries,
        chaos=chaos,
    )
    telemetry = SweepTelemetry() if args.bench_out else None
    if telemetry is not None:
        telemetry.autoflush_path = args.bench_out
    if args.verify_digest:
        from ..verify.digest import set_verify_digest

        set_verify_digest(True)
    obs_requested = bool(args.obs_out or args.obs_trace)
    any_failed = False

    def _run_all() -> bool:
        failed = False
        for key in ids:
            report = run_experiment(
                key,
                quick=args.quick,
                audit=args.audit,
                jobs=args.jobs,
                cache_dir=cache_dir,
                telemetry=telemetry,
                resilience=resilience,
                resume=args.resume,
            )
            print(report.render())
            print()
            if not report.all_passed:
                failed = True
        return failed

    try:
        if obs_requested:
            with obs_session(label="+".join(ids)) as session:
                any_failed = _run_all()
            if args.obs_out:
                write_timeline(session, args.obs_out)
                print(f"[obs] timeline -> {args.obs_out}", file=sys.stderr)
            if args.obs_trace:
                write_chrome_trace(session, args.obs_trace)
                print(f"[obs] chrome trace -> {args.obs_trace}", file=sys.stderr)
            if telemetry is not None:
                telemetry.obs = sweep_obs_summary(session)
        else:
            any_failed = _run_all()
    except KeyboardInterrupt:
        # run_sweep already flushed journal + partial telemetry; make sure
        # an interrupt *between* sweeps persists telemetry too
        if telemetry is not None:
            telemetry.flush()
            print(f"[sweep] interrupted; partial telemetry -> {args.bench_out}",
                  file=sys.stderr)
        return 130

    if telemetry is not None and args.bench_out:
        telemetry.write(args.bench_out)
        totals = telemetry.totals()
        print(
            f"[sweep] {totals['trials']} trials, "
            f"{totals['cache_hits']} cache hits, "
            f"{totals['trial_wall_s']:.2f}s trial wall time "
            f"-> {args.bench_out}",
            file=sys.stderr,  # keep stdout byte-identical across sweep modes
        )
    return 1 if any_failed else 0


if __name__ == "__main__":
    sys.exit(main())
