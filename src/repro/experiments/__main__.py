"""CLI: ``python -m repro.experiments [--quick] [--jobs N] [E3 E5 ...]``.

Runs the requested experiments (default: all) and prints each report's
tables, ASCII figures and expectation checks.  Exit status 1 if any
expectation failed.

``--jobs N`` fans each experiment's independent trials out over a
process pool; results are merged in declared order so reports are
fingerprint-identical to serial runs.  Trials are memoised in a
content-addressed on-disk cache (``--cache-dir``, default
``.sweep_cache``) keyed by experiment id, trial parameters, seed, quick
flag and a digest of the repro source tree — editing any kernel code
invalidates every entry.  ``--no-cache`` disables the cache entirely;
``--bench-out FILE`` writes per-trial telemetry as JSON.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..runtime.sweep import SweepTelemetry
from . import REGISTRY, run_experiment

DEFAULT_CACHE_DIR = ".sweep_cache"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the survey's tables/figures (E1–E13).",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=[],
        help=f"experiment ids to run (default: all of {', '.join(REGISTRY)})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small seeds/budgets (seconds per experiment instead of minutes)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="run each experiment twice and check the runs are identical "
        "(appends a determinism-audit expectation; the second run bypasses "
        "the trial cache)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=int(os.environ.get("REPRO_SWEEP_JOBS", "1")),
        metavar="N",
        help="worker processes for trial fan-out (default: 1, i.e. serial; "
        "env REPRO_SWEEP_JOBS overrides the default)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="content-addressed trial cache directory "
        f"(default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the trial cache (every trial recomputes)",
    )
    parser.add_argument(
        "--bench-out",
        metavar="FILE",
        help="write per-trial telemetry (wall time, simulated events, "
        "evaluations, cache hits) to FILE as JSON",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    ids = [i.upper() for i in args.ids] or list(REGISTRY)
    cache_dir = None if args.no_cache else args.cache_dir
    telemetry = SweepTelemetry() if args.bench_out else None
    any_failed = False
    for key in ids:
        report = run_experiment(
            key,
            quick=args.quick,
            audit=args.audit,
            jobs=args.jobs,
            cache_dir=cache_dir,
            telemetry=telemetry,
        )
        print(report.render())
        print()
        if not report.all_passed:
            any_failed = True
    if telemetry is not None and args.bench_out:
        telemetry.write(args.bench_out)
        totals = telemetry.totals()
        print(
            f"[sweep] {totals['trials']} trials, "
            f"{totals['cache_hits']} cache hits, "
            f"{totals['trial_wall_s']:.2f}s trial wall time "
            f"-> {args.bench_out}",
            file=sys.stderr,  # keep stdout byte-identical across sweep modes
        )
    return 1 if any_failed else 0


if __name__ == "__main__":
    sys.exit(main())
