"""CLI: ``python -m repro.experiments [--quick] [E3 E5 ...]``.

Runs the requested experiments (default: all) and prints each report's
tables, ASCII figures and expectation checks.  Exit status 1 if any
expectation failed.
"""

from __future__ import annotations

import argparse
import sys

from . import REGISTRY, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the survey's tables/figures (E1–E13).",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        default=[],
        help=f"experiment ids to run (default: all of {', '.join(REGISTRY)})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small seeds/budgets (seconds per experiment instead of minutes)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="run each experiment twice and check the runs are identical "
        "(appends a determinism-audit expectation)",
    )
    args = parser.parse_args(argv)
    ids = [i.upper() for i in args.ids] or list(REGISTRY)
    any_failed = False
    for key in ids:
        report = run_experiment(key, quick=args.quick, audit=args.audit)
        print(report.render())
        print()
        if not report.all_passed:
            any_failed = True
    return 1 if any_failed else 0


if __name__ == "__main__":
    sys.exit(main())
