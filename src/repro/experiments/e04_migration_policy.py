"""E4 — influence of the migration policy (Alba & Troya 2000).

"A key issue in such a coarse grain PGA was the migration policy, since it
governs the exchange of individuals among the islands.  They also
investigated the influence of migration frequency and migrant selection in
a ring of islands running either steady-state, generational, or cellular
GAs with different problem types, namely easy, deceptive, multimodal,
NP-Complete, and epistatic search landscapes."

Grid: {migration interval} x {migrant selection} x {reproduction loop} over
the five-class problem spectrum, at a fixed evaluation budget.  Shapes to
hold: migrating islands beat isolated ones on the hard classes; migrant
selection matters; both reproduction loops behave sensibly.
"""

from __future__ import annotations

import numpy as np

from ..problems import spectrum
from ..runtime.sweep import Trial, run_sweep
from ..spec import RunSpec, engine, ga_config, operator, problem
from .report import ExperimentReport, TableSpec

__all__ = ["run", "trial_specs"]

N_ISLANDS = 8


def _policy_spec(
    problem_name: str,
    *,
    interval: int | None,
    selection: str,
    loop: str,
    seed: int,
    budget: int,
    pop: int,
) -> RunSpec:
    schedule = (
        operator("never") if interval is None else operator("periodic", interval=interval)
    )
    return RunSpec(
        engine=engine(
            "island",
            problem=problem("spectrum", name=problem_name, seed=7),
            n_islands=N_ISLANDS,
            config=ga_config(population_size=pop, elitism=1),
            policy=operator(
                "migration-policy",
                rate=1,
                selection=selection,
                replacement="worst-if-better",
            ),
            schedule=schedule,
            engine=loop,
        ),
        seed=seed,
        run={"termination": operator("max-evaluations", limit=budget)},
    )


def _normalised_best(report, *, problem_name: str) -> float:
    """Best fitness (normalised to optimum where known) after the budget.

    The (seeded, deterministic) spectrum problem is rebuilt by name so only
    plain data crosses the process boundary."""
    prob = spectrum(seed=7)[problem_name]
    best = report.best_fitness
    if prob.optimum is not None and prob.optimum != 0:
        return best / prob.optimum if prob.maximize else prob.optimum / best
    return best


_INTERVALS: list[int | None] = [1, 4, 16, None]  # None = isolated demes
_SELECTIONS = ["best", "random", "worst"]
_LOOPS = ("generational", "steady-state")


def _grid(quick: bool) -> tuple[list[str], int, list[Trial], list[Trial], list[Trial]]:
    seeds = range(2) if quick else range(5)
    budget = 20_000 if quick else 60_000
    pop = 20 if quick else 32
    names = list(spectrum(seed=7))
    if quick:
        names = [k for k in names if k in ("easy", "deceptive", "np-complete")]

    def trial(name, *, interval, selection, loop, seed):
        return Trial(
            _normalised_best,
            dict(problem_name=name),
            spec=_policy_spec(
                name,
                interval=interval,
                selection=selection,
                loop=loop,
                seed=seed,
                budget=budget,
                pop=pop,
            ),
            seed=seed,
        )

    freq_trials = [
        trial(name, interval=interval, selection="best", loop="generational", seed=300 + s)
        for name in names
        for interval in _INTERVALS
        for s in seeds
    ]
    sel_trials = [
        trial(name, interval=4, selection=sel, loop="generational", seed=400 + s)
        for name in names
        for sel in _SELECTIONS
        for s in seeds
    ]
    loop_trials = [
        trial(name, interval=4, selection="best", loop=loop, seed=500 + s)
        for name in names
        for loop in _LOOPS
        for s in seeds
    ]
    return names, len(seeds), freq_trials, sel_trials, loop_trials


def trial_specs(quick: bool = False) -> list[RunSpec]:
    """Every declarative run this experiment dispatches (CLI ``specs`` verb)."""
    _, _, freq_trials, sel_trials, loop_trials = _grid(quick)
    return [s for t in freq_trials + sel_trials + loop_trials for s in t.specs]


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E4",
        title="Migration frequency, migrant selection and reproduction loop "
        "across the problem spectrum",
    )
    names, n_seeds, freq_trials, sel_trials, loop_trials = _grid(quick)

    # --- frequency sweep (best-migrant, generational) -----------------------------
    intervals = _INTERVALS
    freq_table = TableSpec(
        title="Mean normalised best fitness vs migration interval "
        "(ring of 8, best-migrant, generational)",
        columns=["problem"] + [("isolated" if i is None else f"every {i}") for i in intervals],
    )
    freq_vals = iter(run_sweep("E4", freq_trials, quick=quick))
    freq_scores: dict[str, dict[int | None, float]] = {}
    for name in names:
        row: dict[int | None, float] = {}
        for interval in intervals:
            vals = [next(freq_vals) for _ in range(n_seeds)]
            row[interval] = float(np.mean(vals))
        freq_scores[name] = row
        freq_table.add_row(name, *[round(row[i], 4) for i in intervals])
    report.tables.append(freq_table)

    # --- migrant selection sweep (interval 4) ---------------------------------------
    selections = _SELECTIONS
    sel_table = TableSpec(
        title="Mean normalised best fitness vs migrant selection (interval 4)",
        columns=["problem"] + selections,
    )
    sel_vals = iter(run_sweep("E4", sel_trials, quick=quick))
    sel_scores: dict[str, dict[str, float]] = {}
    for name in names:
        row2: dict[str, float] = {}
        for sel in selections:
            vals = [next(sel_vals) for _ in range(n_seeds)]
            row2[sel] = float(np.mean(vals))
        sel_scores[name] = row2
        sel_table.add_row(name, *[round(row2[s], 4) for s in selections])
    report.tables.append(sel_table)

    # --- reproduction loop comparison -------------------------------------------------
    loop_table = TableSpec(
        title="Generational vs steady-state islands (interval 4, best-migrant)",
        columns=["problem", "generational", "steady-state"],
    )
    loop_vals = iter(run_sweep("E4", loop_trials, quick=quick))
    loop_scores: dict[str, dict[str, float]] = {}
    for name in names:
        row3: dict[str, float] = {}
        for loop in _LOOPS:
            vals = [next(loop_vals) for _ in range(n_seeds)]
            row3[loop] = float(np.mean(vals))
        loop_scores[name] = row3
        loop_table.add_row(
            name, round(row3["generational"], 4), round(row3["steady-state"], 4)
        )
    report.tables.append(loop_table)

    # --- expectations --------------------------------------------------------------------
    hard = "deceptive"
    migrating_best = max(
        freq_scores[hard][i] for i in intervals if i is not None
    )
    report.expect(
        "migration-beats-isolation-on-deceptive",
        migrating_best >= freq_scores[hard][None],
        f"best migrating {migrating_best:.4f} vs isolated "
        f"{freq_scores[hard][None]:.4f}",
    )
    easy_ok = all(v > 0.95 for v in freq_scores["easy"].values())
    report.expect(
        "easy-problem-insensitive-to-policy",
        easy_ok,
        "all OneMax configs reach > 95% of optimum",
    )
    sel_hard = sel_scores[hard]
    report.expect(
        "migrant-selection-matters-on-hard-problems",
        sel_hard["best"] >= sel_hard["worst"],
        f"best-migrant {sel_hard['best']:.4f} vs worst-migrant "
        f"{sel_hard['worst']:.4f}",
    )
    both_loops_work = all(
        min(loop_scores[p].values()) > 0.6 for p in loop_scores
    )
    report.expect(
        "both-reproduction-loops-viable",
        both_loops_work,
        "every problem reaches > 60% of optimum under both loops",
    )
    return report
