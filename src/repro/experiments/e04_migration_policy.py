"""E4 — influence of the migration policy (Alba & Troya 2000).

"A key issue in such a coarse grain PGA was the migration policy, since it
governs the exchange of individuals among the islands.  They also
investigated the influence of migration frequency and migrant selection in
a ring of islands running either steady-state, generational, or cellular
GAs with different problem types, namely easy, deceptive, multimodal,
NP-Complete, and epistatic search landscapes."

Grid: {migration interval} x {migrant selection} x {reproduction loop} over
the five-class problem spectrum, at a fixed evaluation budget.  Shapes to
hold: migrating islands beat isolated ones on the hard classes; migrant
selection matters; both reproduction loops behave sensibly.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GAConfig
from ..core.termination import MaxEvaluations
from ..migration.policy import MigrationPolicy
from ..migration.schedule import NeverSchedule, PeriodicSchedule
from ..parallel.island import IslandModel
from ..problems import spectrum
from ..runtime.sweep import Trial, run_sweep
from .report import ExperimentReport, TableSpec

__all__ = ["run"]

N_ISLANDS = 8


def _run_config(
    problem,
    *,
    interval: int | None,
    selection: str,
    engine: str,
    seed: int,
    budget: int,
    pop: int,
) -> float:
    """Best fitness (normalised to optimum where known) after the budget."""
    schedule = NeverSchedule() if interval is None else PeriodicSchedule(interval)
    model = IslandModel(
        problem,
        N_ISLANDS,
        GAConfig(population_size=pop, elitism=1),
        policy=MigrationPolicy(rate=1, selection=selection, replacement="worst-if-better"),
        schedule=schedule,
        engine=engine,
        seed=seed,
    )
    res = model.run(MaxEvaluations(budget))
    best = res.best_fitness
    if problem.optimum is not None and problem.optimum != 0:
        return best / problem.optimum if problem.maximize else problem.optimum / best
    return best


def _run_named(
    problem_name: str,
    *,
    interval: int | None,
    selection: str,
    engine: str,
    seed: int,
    budget: int,
    pop: int,
) -> float:
    """Sweep-friendly trial: rebuild the (seeded, deterministic) spectrum
    problem by name so only plain data crosses the process boundary."""
    return _run_config(
        spectrum(seed=7)[problem_name],
        interval=interval,
        selection=selection,
        engine=engine,
        seed=seed,
        budget=budget,
        pop=pop,
    )


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E4",
        title="Migration frequency, migrant selection and reproduction loop "
        "across the problem spectrum",
    )
    seeds = range(2) if quick else range(5)
    budget = 20_000 if quick else 60_000
    pop = 20 if quick else 32
    problems = spectrum(seed=7)
    if quick:
        problems = {k: problems[k] for k in ("easy", "deceptive", "np-complete")}

    # --- frequency sweep (best-migrant, generational) -----------------------------
    intervals: list[int | None] = [1, 4, 16, None]  # None = isolated demes
    freq_table = TableSpec(
        title="Mean normalised best fitness vs migration interval "
        "(ring of 8, best-migrant, generational)",
        columns=["problem"] + [("isolated" if i is None else f"every {i}") for i in intervals],
    )
    freq_trials = [
        Trial(
            _run_named,
            dict(
                problem_name=name,
                interval=interval,
                selection="best",
                engine="generational",
                budget=budget,
                pop=pop,
            ),
            seed=300 + s,
        )
        for name in problems
        for interval in intervals
        for s in seeds
    ]
    freq_vals = iter(run_sweep("E4", freq_trials, quick=quick))
    freq_scores: dict[str, dict[int | None, float]] = {}
    for name in problems:
        row: dict[int | None, float] = {}
        for interval in intervals:
            vals = [next(freq_vals) for _ in seeds]
            row[interval] = float(np.mean(vals))
        freq_scores[name] = row
        freq_table.add_row(name, *[round(row[i], 4) for i in intervals])
    report.tables.append(freq_table)

    # --- migrant selection sweep (interval 4) ---------------------------------------
    selections = ["best", "random", "worst"]
    sel_table = TableSpec(
        title="Mean normalised best fitness vs migrant selection (interval 4)",
        columns=["problem"] + selections,
    )
    sel_trials = [
        Trial(
            _run_named,
            dict(
                problem_name=name,
                interval=4,
                selection=sel,
                engine="generational",
                budget=budget,
                pop=pop,
            ),
            seed=400 + s,
        )
        for name in problems
        for sel in selections
        for s in seeds
    ]
    sel_vals = iter(run_sweep("E4", sel_trials, quick=quick))
    sel_scores: dict[str, dict[str, float]] = {}
    for name in problems:
        row2: dict[str, float] = {}
        for sel in selections:
            vals = [next(sel_vals) for _ in seeds]
            row2[sel] = float(np.mean(vals))
        sel_scores[name] = row2
        sel_table.add_row(name, *[round(row2[s], 4) for s in selections])
    report.tables.append(sel_table)

    # --- reproduction loop comparison -------------------------------------------------
    loop_table = TableSpec(
        title="Generational vs steady-state islands (interval 4, best-migrant)",
        columns=["problem", "generational", "steady-state"],
    )
    loop_trials = [
        Trial(
            _run_named,
            dict(
                problem_name=name,
                interval=4,
                selection="best",
                engine=engine,
                budget=budget,
                pop=pop,
            ),
            seed=500 + s,
        )
        for name in problems
        for engine in ("generational", "steady-state")
        for s in seeds
    ]
    loop_vals = iter(run_sweep("E4", loop_trials, quick=quick))
    loop_scores: dict[str, dict[str, float]] = {}
    for name in problems:
        row3: dict[str, float] = {}
        for engine in ("generational", "steady-state"):
            vals = [next(loop_vals) for _ in seeds]
            row3[engine] = float(np.mean(vals))
        loop_scores[name] = row3
        loop_table.add_row(
            name, round(row3["generational"], 4), round(row3["steady-state"], 4)
        )
    report.tables.append(loop_table)

    # --- expectations --------------------------------------------------------------------
    hard = "deceptive"
    migrating_best = max(
        freq_scores[hard][i] for i in intervals if i is not None
    )
    report.expect(
        "migration-beats-isolation-on-deceptive",
        migrating_best >= freq_scores[hard][None],
        f"best migrating {migrating_best:.4f} vs isolated "
        f"{freq_scores[hard][None]:.4f}",
    )
    easy_ok = all(v > 0.95 for v in freq_scores["easy"].values())
    report.expect(
        "easy-problem-insensitive-to-policy",
        easy_ok,
        "all OneMax configs reach > 95% of optimum",
    )
    sel_hard = sel_scores[hard]
    report.expect(
        "migrant-selection-matters-on-hard-problems",
        sel_hard["best"] >= sel_hard["worst"],
        f"best-migrant {sel_hard['best']:.4f} vs worst-migrant "
        f"{sel_hard['worst']:.4f}",
    )
    both_loops_work = all(
        min(loop_scores[p].values()) > 0.6 for p in loop_scores
    )
    report.expect(
        "both-reproduction-loops-viable",
        both_loops_work,
        "every problem reaches > 60% of optimum under both loops",
    )
    return report
