"""Experiment harness: one runner per table/figure-shaped claim (E1–E13).

``REGISTRY`` maps experiment ids to their runners; each runner has the
signature ``run(quick: bool = False) -> ExperimentReport``.  Quick mode
shrinks seeds/budgets for CI-speed benchmark runs; full mode is what
EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Callable

from . import (
    e02_masterslave,
    e03_island_speedup,
    e04_migration_policy,
    e05_cellular_pressure,
    e06_cantupaz_design,
    e07_hierarchical,
    e08_sim_scenarios,
    e09_fault_tolerance,
    e10_punctuated,
    e11_applications,
    e12_stock_reactor,
    e13_island_resilience,
    table1,
)
from ..runtime.resilient import ResilienceConfig
from ..runtime.sweep import SweepTelemetry, sweep_context
from .report import Expectation, ExperimentReport, SeriesSpec, TableSpec

__all__ = [
    "REGISTRY",
    "run_experiment",
    "run_all",
    "experiment_specs",
    "ExperimentReport",
    "TableSpec",
    "SeriesSpec",
    "Expectation",
]

_MODULES = {
    "E1": table1,
    "E2": e02_masterslave,
    "E3": e03_island_speedup,
    "E4": e04_migration_policy,
    "E5": e05_cellular_pressure,
    "E6": e06_cantupaz_design,
    "E7": e07_hierarchical,
    "E8": e08_sim_scenarios,
    "E9": e09_fault_tolerance,
    "E10": e10_punctuated,
    "E11": e11_applications,
    "E12": e12_stock_reactor,
    "E13": e13_island_resilience,
}

REGISTRY: dict[str, Callable[..., ExperimentReport]] = {
    key: module.run for key, module in _MODULES.items()
}


def experiment_specs(experiment_id: str, quick: bool = False) -> list:
    """The declarative :class:`~repro.spec.RunSpec` list an experiment
    dispatches, in dispatch order.

    Experiments whose trials are raw callables (E1's literature table has
    no runs at all) contribute an empty list; the rest expose a
    ``trial_specs(quick)`` hook covering every spec-backed trial.
    """
    key = experiment_id.upper()
    if key not in _MODULES:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(_MODULES)}"
        )
    hook = getattr(_MODULES[key], "trial_specs", None)
    return list(hook(quick=quick)) if hook is not None else []


def run_experiment(
    experiment_id: str,
    quick: bool = False,
    *,
    audit: bool = False,
    jobs: int = 1,
    cache_dir: str | None = None,
    telemetry: SweepTelemetry | None = None,
    resilience: ResilienceConfig | None = None,
    resume: bool = False,
) -> ExperimentReport:
    """Run one experiment by id ('E1' … 'E13').

    ``jobs`` fans the experiment's independent trials out over a process
    pool and ``cache_dir`` enables the content-addressed trial cache (see
    :mod:`repro.runtime.sweep`); both default to the hermetic serial,
    uncached configuration.  ``telemetry`` collects per-trial timing.
    ``resilience`` sets the fork pool's supervision policy (per-trial
    deadline, retry/backoff, chaos plan) and ``resume=True`` replays the
    completion journal of a crashed run (see
    :mod:`repro.runtime.resilient`).

    With ``audit=True`` the runner executes *twice* and a
    ``determinism-audit`` expectation is appended comparing the two
    reports' canonical fingerprints — every experiment is seeded, so two
    fresh runs must be behaviourally identical (same tables, same series,
    same expectation outcomes).  The audit re-run always executes with
    the cache disabled: replaying cached values would audit the cache,
    not the experiment.
    """
    key = experiment_id.upper()
    if key not in REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(REGISTRY)}"
        )
    with sweep_context(
        jobs=jobs,
        cache_dir=cache_dir,
        telemetry=telemetry,
        resilience=resilience,
        resume=resume,
    ):
        report = REGISTRY[key](quick=quick)
    if audit:
        from ..verify.digest import result_fingerprint

        first = result_fingerprint(report)
        with sweep_context(jobs=jobs, cache_dir=None, resilience=resilience):
            second = result_fingerprint(REGISTRY[key](quick=quick))
        report.expect(
            "determinism-audit",
            first == second,
            f"run fingerprints {first[:16]}… vs {second[:16]}…",
        )
    return report


def run_all(
    quick: bool = False,
    ids: list[str] | None = None,
    *,
    audit: bool = False,
    jobs: int = 1,
    cache_dir: str | None = None,
    telemetry: SweepTelemetry | None = None,
    resilience: ResilienceConfig | None = None,
    resume: bool = False,
) -> list[ExperimentReport]:
    """Run every experiment (or a subset) and return the reports in order."""
    keys = [k.upper() for k in ids] if ids else list(REGISTRY)
    return [
        run_experiment(
            k,
            quick=quick,
            audit=audit,
            jobs=jobs,
            cache_dir=cache_dir,
            telemetry=telemetry,
            resilience=resilience,
            resume=resume,
        )
        for k in keys
    ]
