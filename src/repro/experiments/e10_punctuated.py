"""E10 — punctuated equilibria in island GAs (Cohoon 1987; Starkweather 1991).

Cohoon "showed that the *punctuated equilibria* theory of the natural
systems transfers to parallel implementation of evolutionary algorithms …
and leads to expansion of evolutionary progress"; Starkweather, Whitley &
Mathias "claimed that relatively isolated demes converge to different
solutions and that migration and recombination combine partial solutions."

Three measurable signatures on concatenated deceptive traps:

1. *divergence*: run demes fully isolated — they converge to *different*
   local optima (distinct deme-best genotypes, high between-deme centroid
   divergence while within-deme diversity collapses);
2. *punctuation*: with rare migration, global-best improvements cluster in
   the epochs right after migration events far above the chance rate;
3. *recombination of partial solutions*: the migrating ensemble's final
   quality beats the same ensemble kept isolated.
"""

from __future__ import annotations

import numpy as np

from ..core.termination import MaxGenerations
from ..metrics.diversity import between_deme_divergence, gene_entropy
from ..runtime.sweep import Trial, run_sweep
from ..spec import RunSpec, engine, ga_config, operator, problem
from .report import ExperimentReport, SeriesSpec, TableSpec

__all__ = ["run", "trial_specs"]

MIGRATION_INTERVAL = 12


def _model_spec(
    interval: int | None, seed: int, *, epochs: int, n_islands: int = 6, pop: int = 24
) -> RunSpec:
    schedule = (
        operator("never") if interval is None else operator("periodic", interval=interval)
    )
    return RunSpec(
        engine=engine(
            "island",
            problem=problem("deceptive-trap", blocks=10, k=4),
            n_islands=n_islands,
            config=ga_config(population_size=pop, elitism=1),
            policy=operator("migration-policy", rate=2, selection="best", replacement="worst"),
            schedule=schedule,
        ),
        seed=seed,
        run={"termination": operator("max-generations", limit=epochs)},
    )


def _improvement_epochs(records, burn_in: int = MIGRATION_INTERVAL) -> list[int]:
    """Epochs where the global best strictly improved, after burn-in.

    The first ``burn_in`` epochs are the panmictic-like initial ramp where
    improvements happen every few steps regardless of migration; the
    punctuation signature lives in the equilibrium phase after it.
    """
    out, prev = [], -np.inf
    for r in records:
        if r.global_best > prev:
            if r.epoch > burn_in:
                out.append(r.epoch)
            prev = r.global_best
    return out


def _divergence_case(model, *, epochs: int) -> tuple[int, float, float]:
    """Engine-mode trial: needs the deme populations after the run."""
    model.run(MaxGenerations(epochs))
    genomes = {tuple(d.population.best().genome.tolist()) for d in model.demes}
    div = between_deme_divergence([d.population for d in model.demes])
    entropy = float(np.mean([gene_entropy(d.population) for d in model.demes]))
    return len(genomes), float(div), entropy


def _burst_case(res) -> dict:
    return {
        "improvements": _improvement_epochs(res.records),
        "curve_epochs": [r.epoch for r in res.records],
        "curve_bests": [float(r.global_best) for r in res.records],
    }


def _quality_case(results) -> tuple[float, float]:
    iso, mig = results
    return iso.best_fitness, mig.best_fitness


def _grid(quick: bool) -> tuple[range, int, list[Trial], list[Trial], list[Trial]]:
    seeds = range(3) if quick else range(6)
    epochs = 60 if quick else 120
    div_trials = [
        Trial(
            _divergence_case,
            dict(epochs=epochs),
            spec=_model_spec(None, 3000 + s, epochs=epochs),
            mode="engine",
            seed=3000 + s,
        )
        for s in seeds
    ]
    burst_trials = [
        Trial(
            _burst_case,
            spec=_model_spec(MIGRATION_INTERVAL, 3100 + s, epochs=epochs),
            seed=3100 + s,
        )
        for s in seeds
    ]
    quality_trials = [
        Trial(
            _quality_case,
            spec=(
                _model_spec(None, 3200 + s, epochs=epochs),
                _model_spec(MIGRATION_INTERVAL, 3200 + s, epochs=epochs),
            ),
            seed=3200 + s,
        )
        for s in seeds
    ]
    return seeds, epochs, div_trials, burst_trials, quality_trials


def trial_specs(quick: bool = False) -> list[RunSpec]:
    """Every declarative run this experiment dispatches (CLI ``specs`` verb)."""
    _, _, div_trials, burst_trials, quality_trials = _grid(quick)
    return [s for t in div_trials + burst_trials + quality_trials for s in t.specs]


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E10",
        title="Punctuated equilibria: divergence, bursts after migration, recombination",
    )
    seeds, epochs, div_trials, burst_trials, quality_trials = _grid(quick)

    # (1) isolated demes converge to different solutions --------------------------------
    div_table = TableSpec(
        title="Isolated demes after convergence",
        columns=[
            "seed",
            "distinct deme-best genotypes",
            "between-deme divergence",
            "mean within-deme entropy",
        ],
    )
    distinct_counts, divergences = [], []
    for s, (n_distinct, div, entropy) in zip(seeds, run_sweep("E10", div_trials, quick=quick)):
        distinct_counts.append(n_distinct)
        divergences.append(div)
        div_table.add_row(s, n_distinct, round(div, 2), round(entropy, 3))
    report.tables.append(div_table)

    # (2) bursts after migration ------------------------------------------------------------
    burst_table = TableSpec(
        title=f"Global-best improvements near migration epochs (interval {MIGRATION_INTERVAL})",
        columns=["seed", "improvements", "within 2 epochs of migration", "chance rate"],
    )
    fig = SeriesSpec(
        title="Global best vs epoch (migration every "
        f"{MIGRATION_INTERVAL} epochs; one seed)",
        x_label="epoch",
        y_label="global best fitness",
    )
    burst_fracs, chance_rates = [], []
    for s, burst in zip(seeds, run_sweep("E10", burst_trials, quick=quick)):
        improvements = burst["improvements"]
        # epochs counted as 'post-migration': m+1 .. m+2 for each migration m
        post = set()
        for m in range(MIGRATION_INTERVAL, epochs + 1, MIGRATION_INTERVAL):
            post.update((m + 1, m + 2))
        if improvements:
            frac = sum(1 for e in improvements if e in post) / len(improvements)
        else:
            frac = float("nan")
        eligible = range(MIGRATION_INTERVAL + 1, epochs + 1)
        chance = len([e for e in eligible if e in post]) / max(1, len(eligible))
        burst_fracs.append(frac)
        chance_rates.append(chance)
        burst_table.add_row(
            s, len(improvements), round(frac, 3) if frac == frac else "n/a", round(chance, 3)
        )
        if s == list(seeds)[0]:
            fig.add("global best", burst["curve_epochs"], burst["curve_bests"])
    report.tables.append(burst_table)
    report.series.append(fig)

    # (3) migration recombines partial solutions -----------------------------------------------
    quality_table = TableSpec(
        title="Final quality: migrating vs isolated ensemble (same budget)",
        columns=["seed", "isolated best", "migrating best"],
    )
    iso_bests, mig_bests = [], []
    for s, (iso_best, mig_best) in zip(seeds, run_sweep("E10", quality_trials, quick=quick)):
        iso_bests.append(iso_best)
        mig_bests.append(mig_best)
        quality_table.add_row(s, iso_best, mig_best)
    report.tables.append(quality_table)

    report.expect(
        "isolated-demes-converge-to-different-solutions",
        float(np.mean(distinct_counts)) > 1.5,
        f"mean distinct deme bests {float(np.mean(distinct_counts)):.1f} of 6 demes",
    )
    valid = [(f, c) for f, c in zip(burst_fracs, chance_rates) if f == f]
    mean_frac = float(np.mean([f for f, _ in valid])) if valid else 0.0
    mean_chance = float(np.mean([c for _, c in valid])) if valid else 1.0
    report.expect(
        "improvements-cluster-after-migration",
        mean_frac > mean_chance,
        f"{mean_frac:.2f} of improvements land within 2 epochs of a migration "
        f"vs {mean_chance:.2f} chance rate",
    )
    report.expect(
        "migration-recombines-partial-solutions",
        float(np.mean(mig_bests)) >= float(np.mean(iso_bests)),
        f"migrating mean {float(np.mean(mig_bests)):.1f} vs isolated "
        f"{float(np.mean(iso_bests)):.1f}",
    )
    return report
