"""E12 — neuro-genetic stock prediction & reactor core design.

Kwon & Moon (2003): "The genetic algorithm optimizes the neural networks
under a 2D encoding and crossover.  A parallel genetic algorithm was used
on a Linux cluster.  A notable improvement on the average buy-and-hold
strategy was observed."

Pereira & Lapa (2003): "After exhaustive experiments, the IGA [island GA]
provided gains not only in terms of computational time, but also in the
optimization outcome" over a traditional non-parallel GA on the
three-enrichment-zone reactor design problem.
"""

from __future__ import annotations

import numpy as np

from ..problems.applications.reactor import ReactorCoreDesign
from ..problems.applications.stock import StockPrediction
from ..runtime.sweep import Trial, run_sweep
from ..spec import RunSpec, engine, ga_config, operator, problem
from .report import ExperimentReport, TableSpec

__all__ = ["run", "trial_specs"]


def _stock_spec(*, budget: int, problem_seed: int, seed: int) -> RunSpec:
    prob = StockPrediction(seed=problem_seed, hidden=4)
    # the 2-D encoding: rows = hidden units, cols = per-unit weights.
    # pad: genome also holds the output layer — fall back to treating
    # the full genome as rows x cols only if lengths match, else use the
    # default SBX via config resolution on the non-matching tail.
    cx = (
        operator("two-dimensional", rows=prob.rows, cols=prob.cols)
        if prob.spec.length == prob.rows * prob.cols
        else None
    )
    return RunSpec(
        engine=engine(
            "island",
            problem=problem("stock-prediction", seed=problem_seed, hidden=4),
            n_islands=4,
            config=ga_config(
                population_size=30,
                crossover=cx,
                mutation=operator("gaussian", sigma=0.3, lower=-3.0, upper=3.0),
                elitism=1,
            ),
            policy=operator("migration-policy", rate=1, selection="best"),
            schedule=operator("periodic", interval=5),
        ),
        seed=seed,
        run={"termination": operator("max-evaluations", limit=budget)},
    )


def _stock_case(res, *, problem_seed: int) -> dict:
    prob = StockPrediction(seed=problem_seed, hidden=4)
    out = prob.out_of_sample(res.best.genome)
    return {
        "train_fitness": res.best_fitness,
        "bh_train": prob.buy_and_hold(),
        "strategy_return": out.strategy_return,
        "buy_and_hold_return": out.buy_and_hold_return,
        "excess": out.excess,
    }


def _stock_trials(budget: int, seeds) -> list[Trial]:
    return [
        Trial(
            _stock_case,
            dict(problem_seed=5100 + s),
            spec=_stock_spec(budget=budget, problem_seed=5100 + s, seed=s),
            seed=s,
        )
        for s in seeds
    ]


def _stock_rows(seeds, quick: bool) -> tuple[TableSpec, float, float]:
    budget = 4_000 if quick else 15_000
    table = TableSpec(
        title="Neuro-genetic trading vs buy-and-hold (train & held-out spans)",
        columns=[
            "seed",
            "train strategy",
            "train B&H",
            "test strategy",
            "test B&H",
            "test excess",
        ],
    )
    trials = _stock_trials(budget, seeds)
    train_excess, test_excess = [], []
    for s, case in zip(seeds, run_sweep("E12", trials, quick=quick)):
        train_excess.append(case["train_fitness"] - case["bh_train"])
        test_excess.append(case["excess"])
        table.add_row(
            s,
            round(case["train_fitness"], 4),
            round(case["bh_train"], 4),
            round(case["strategy_return"], 4),
            round(case["buy_and_hold_return"], 4),
            round(case["excess"], 4),
        )
    return table, float(np.mean(train_excess)), float(np.mean(test_excess))


def _reactor_specs(*, budget: int, seq_seed: int, seed: int) -> tuple[RunSpec, RunSpec]:
    core = problem("reactor-core", mesh_points=40)
    termination = {"termination": operator("max-evaluations", limit=budget)}
    island = RunSpec(
        engine=engine(
            "island",
            problem=core,
            n_islands=6,
            total_population=96,
            config=ga_config(elitism=1),
            policy=operator("migration-policy", rate=1, selection="best"),
            schedule=operator("periodic", interval=4),
        ),
        seed=seed,
        run=termination,
    )
    sequential = RunSpec(
        engine=engine(
            "generational",
            problem=core,
            config=ga_config(population_size=96, elitism=1),
        ),
        seed=seq_seed,
        run=termination,
    )
    return island, sequential


def _reactor_case(results) -> tuple[float, float, float, float]:
    res_i, res_s = results
    sol = ReactorCoreDesign(mesh_points=40).solve(res_i.best.genome)
    return res_i.best_fitness, res_s.best_fitness, float(sol.k_eff), float(sol.peaking_factor)


def _reactor_trials(budget: int, seeds) -> list[Trial]:
    return [
        Trial(
            _reactor_case,
            spec=_reactor_specs(budget=budget, seq_seed=5300 + s, seed=5200 + s),
            seed=5200 + s,
        )
        for s in seeds
    ]


def trial_specs(quick: bool = False) -> list[RunSpec]:
    """Every declarative run this experiment dispatches (CLI ``specs`` verb)."""
    seeds = range(2) if quick else range(4)
    stock_budget = 4_000 if quick else 15_000
    reactor_budget = 3_000 if quick else 10_000
    trials = _stock_trials(stock_budget, seeds) + _reactor_trials(reactor_budget, seeds)
    return [s for t in trials for s in t.specs]


def _reactor_rows(seeds, quick: bool) -> tuple[TableSpec, float, float]:
    budget = 3_000 if quick else 10_000
    table = TableSpec(
        title="Reactor core design: island GA vs non-parallel GA (same budget)",
        columns=["seed", "island fitness", "sequential fitness", "island k_eff", "island peaking"],
    )
    trials = _reactor_trials(budget, seeds)
    island_fits, seq_fits = [], []
    for s, (fit_i, fit_s, k_eff, peaking) in zip(
        seeds, run_sweep("E12", trials, quick=quick)
    ):
        island_fits.append(fit_i)
        seq_fits.append(fit_s)
        table.add_row(s, round(fit_i, 4), round(fit_s, 4), round(k_eff, 4), round(peaking, 3))
    return table, float(np.mean(island_fits)), float(np.mean(seq_fits))


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E12",
        title="Stock prediction vs buy-and-hold; reactor design island vs sequential",
    )
    seeds = range(2) if quick else range(4)

    stock_table, train_x, test_x = _stock_rows(seeds, quick)
    report.tables.append(stock_table)
    reactor_table, island_f, seq_f = _reactor_rows(seeds, quick)
    report.tables.append(reactor_table)

    report.expect(
        "strategy-beats-buy-and-hold-in-training",
        train_x > 0,
        f"mean train excess return {train_x:+.4f}",
    )
    report.expect(
        "held-out-excess-reported-honestly",
        True,
        f"mean test excess {test_x:+.4f} (the paper reports averaged "
        "improvement; generalisation of evolved traders is noisy and is "
        "reported, not asserted)",
    )
    report.expect(
        "island-ga-at-least-matches-sequential-on-reactor",
        island_f <= seq_f * 1.02,
        f"island {island_f:.4f} vs sequential {seq_f:.4f} (minimised)",
    )
    last_peaking = [row[4] for row in reactor_table.rows]
    report.expect(
        "reactor-designs-are-physically-sensible",
        all(1.0 <= p <= 3.0 for p in last_peaking),
        f"peaking factors {last_peaking}",
    )
    return report
