"""E13 — island resilience on a lossy, partitioning, crashing cluster.

The coarse-grained chapter's "conventional LAN" does not just delay
messages: it loses them, duplicates them, splits into halves that cannot
reach each other, and the workstations themselves die (Gagné et al.
2003's hard failures).  This experiment sweeps that chaos — message-loss
rate x mid-run partition duration x node MTBF — over three protection
arms of the same island ensemble:

``none``
    The fire-and-forget driver: lost migrants stay lost, a crashed
    deme's subpopulation is simply gone.
``reliable``
    Migrants ride the ack/retransmit channel
    (:mod:`repro.parallel.reliable`): at-least-once delivery,
    exactly-once application.
``reliable+supervisor``
    Additionally, a heartbeat supervisor restores silent demes from
    their last checkpoint on spare nodes and rewires the ring around
    demes it must abandon (:mod:`repro.parallel.supervisor`).

Demes run to *their own* solution (``stop_when_any_solves=False``): the
resilience question is how much of the ensemble delivers, how good the
stragglers' final populations are (quality degradation), and what the
protection machinery costs (time overhead, retransmissions,
recoveries).  Every run's trace is audited against the full invariant
set — message conservation including loss/dup receipts, exactly-once
migrant application, no sends from dead nodes.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..cluster.faults import FaultPlan, Partition, sample_fault_plan
from ..runtime.sweep import Trial, run_sweep
from ..spec import RunSpec, cluster, engine, ga_config, operator, problem
from ..verify.invariants import CheckContext, check_trace
from .report import ExperimentReport, TableSpec

__all__ = ["run", "trial_specs"]

EVAL_COST = 2e-3
MIGRATION_PAYLOAD = 64.0
GENOME = 32

ARMS = ("none", "reliable", "reliable+supervisor")

#: message kinds the conservation ledger must balance in supervised runs
CONSERVED_KINDS = ("migration", "migration-ack", "heartbeat", "checkpoint", "restore")
RULES = (
    "time-monotone",
    "message-conservation",
    "no-send-while-dead",
    "exactly-once-application",
    "generation-monotone",
    "best-monotone",
)


def _fault_plan(
    *,
    n_nodes: int,
    n_islands: int,
    horizon: float,
    loss: float,
    partition: float,
    mtbf_mode: str,
    seed: int,
):
    """One seeded chaos recipe: node downtime from ``mtbf_mode`` plus the
    lossy-network knobs.  The supervisor node and its spares are kept
    failure-free (a recovery service must outlive its wards)."""
    spared = tuple(range(n_islands, n_nodes))
    mtbf = {"none": None, "repair": horizon * 0.8, "crash": horizon * float(n_islands)}[
        mtbf_mode
    ]
    plan = sample_fault_plan(
        n_nodes,
        horizon=horizon,
        mtbf=mtbf,
        repair_time=horizon * 0.25 if mtbf_mode == "repair" else None,
        seed=seed,
        spare_node_zero=False,
        spare_nodes=spared,
        loss_rate=loss,
        dup_rate=loss / 2.0,
        link_seed=seed,
    )
    if partition > 0:
        # one deterministic mid-run bisection through the deme set
        group = tuple(range(n_islands // 2))
        start = horizon * 0.3
        plan = replace(plan, partitions=(Partition(start, start + partition, group),))
    if plan.any_failures():
        return plan
    return None


def _showcase_plan(*, n_nodes: int, n_islands: int, horizon: float) -> FaultPlan:
    """The acceptance scenario, hand-placed rather than sampled: deme node 1
    crashes permanently early (after its first checkpoints exist but well
    before OneMax is solved), every link drops 30% of messages and
    duplicates 15%, and a partition cuts demes 0-1 off from the rest of
    the cluster for a third of the run."""
    intervals: list[tuple[tuple[float, float], ...]] = [()] * n_nodes
    intervals[1] = ((horizon * 0.15, float("inf")),)
    return FaultPlan(
        intervals=tuple(intervals),
        loss_rate=0.3,
        dup_rate=0.15,
        partitions=(Partition(horizon * 0.5, horizon * 0.8, (0, 1)),),
        link_seed=1313,
    )


def _arm_spec(
    arm: str,
    *,
    n_islands: int,
    n_nodes: int,
    plan,
    seed: int,
    pop: int,
    max_epochs: int,
    checkpoint_every: int,
) -> RunSpec:
    return RunSpec(
        engine=engine(
            "sim-island",
            problem=problem("onemax", length=GENOME),
            n_islands=n_islands,
            config=ga_config(population_size=pop, elitism=1),
            cluster=cluster(n_nodes, latency=1e-3, bandwidth=1e6, fault_plan=plan),
            eval_cost=EVAL_COST,
            migration_payload=MIGRATION_PAYLOAD,
            max_epochs=max_epochs,
            policy=operator("migration-policy", rate=1, replacement="worst-if-better"),
            stop_when_any_solves=False,
            reliable_migration=arm != "none",
            supervised=arm == "reliable+supervisor",
            checkpoint_every=checkpoint_every,
        ),
        seed=seed,
    )


def _run_arm(model):
    """Engine-mode body: the invariant audit needs the cluster trace,
    not just the run report."""
    result = model.run()
    ctx = CheckContext.from_cluster(model.cluster, conserved_kinds=CONSERVED_KINDS)
    violations = check_trace(model.cluster.trace, ctx, RULES)
    lost = model.cluster.trace.count("migration-lost")
    return result, violations, lost


def _case_summary(result, violations, lost) -> dict:
    return {
        "violations": len(violations),
        "lost": lost,
        "deme_bests": [float(b) for b in result.deme_bests],
        "sim_time": result.sim_time,
        "retransmits": result.retransmits,
        "dup_discards": result.dup_discards,
        "recoveries": result.recoveries,
        "abandoned": result.abandoned_demes,
    }


def _audited_case(model) -> dict:
    return _case_summary(*_run_arm(model))


def _grid_spec(
    *,
    arm: str,
    n_islands: int,
    n_nodes: int,
    horizon: float,
    loss: float,
    partition: float,
    mode: str,
    plan_seed: int,
    pop: int,
    max_epochs: int,
) -> RunSpec:
    plan = _fault_plan(
        n_nodes=n_nodes,
        n_islands=n_islands,
        horizon=horizon,
        loss=loss,
        partition=partition,
        mtbf_mode=mode,
        seed=plan_seed,
    )
    return _arm_spec(
        arm,
        n_islands=n_islands,
        n_nodes=n_nodes,
        plan=plan,
        seed=42,
        pop=pop,
        max_epochs=max_epochs,
        checkpoint_every=3,
    )


def _showcase_spec(
    *, arm: str, n_islands: int, n_nodes: int, horizon: float, pop: int, max_epochs: int
) -> RunSpec:
    plan = _showcase_plan(n_nodes=n_nodes, n_islands=n_islands, horizon=horizon)
    return _arm_spec(
        arm,
        n_islands=n_islands,
        n_nodes=n_nodes,
        plan=plan,
        seed=42,
        pop=pop,
        max_epochs=max_epochs,
        checkpoint_every=3,
    )


def _dimensions(quick: bool) -> dict:
    if quick:
        n_islands, pop, max_epochs = 4, 16, 60
        losses = [0.0, 0.3]
        partition_durations = [0.0, 0.8]
        mtbf_modes = ["none", "crash"]
    else:
        n_islands, pop, max_epochs = 6, 20, 50
        losses = [0.0, 0.2, 0.4]
        partition_durations = [0.0, 1.0]
        mtbf_modes = ["none", "repair", "crash"]
    n_nodes = n_islands + 3  # + supervisor + two spares
    horizon = (max_epochs + 1) * pop * EVAL_COST
    grid = [
        (loss, partition, mode)
        for loss in losses
        for partition in partition_durations
        for mode in mtbf_modes
    ]
    grid_trials = [
        Trial(
            _audited_case,
            spec=_grid_spec(
                arm=arm,
                n_islands=n_islands,
                n_nodes=n_nodes,
                horizon=horizon,
                loss=loss,
                partition=partition,
                mode=mode,
                plan_seed=1300 + cfg_id,
                pop=pop,
                max_epochs=max_epochs,
            ),
            mode="engine",
            seed=42,
            retention="full",  # the invariant audit re-walks the event stream
        )
        for cfg_id, (loss, partition, mode) in enumerate(grid)
        for arm in ARMS
    ]
    showcase_trials = [
        Trial(
            _audited_case,
            spec=_showcase_spec(
                arm=arm,
                n_islands=n_islands,
                n_nodes=n_nodes,
                horizon=horizon,
                pop=pop,
                max_epochs=max_epochs,
            ),
            mode="engine",
            seed=42,
            retention="full",  # the invariant audit re-walks the event stream
        )
        for arm in ARMS
    ]
    return {
        "n_islands": n_islands,
        "grid": grid,
        "grid_trials": grid_trials,
        "showcase_trials": showcase_trials,
    }


def trial_specs(quick: bool = False) -> list[RunSpec]:
    """Every declarative run this experiment dispatches (CLI ``specs`` verb)."""
    d = _dimensions(quick)
    return [s for t in d["grid_trials"] + d["showcase_trials"] for s in t.specs]


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E13",
        title="Island resilience: lossy links, partitions and crashes vs protection",
    )
    dims = _dimensions(quick)
    n_islands, grid = dims["n_islands"], dims["grid"]

    solved_tbl = TableSpec(
        title=f"Demes solved (of {n_islands}) by protection arm",
        columns=["loss", "partition", "faults", *ARMS],
    )
    quality_tbl = TableSpec(
        title="Mean final deme best fitness (quality degradation)",
        columns=["loss", "partition", "faults", *ARMS],
    )
    machinery_tbl = TableSpec(
        title="Protection machinery per arm (totals across the sweep)",
        columns=["arm", "wall time", "retransmits", "dup discards", "recoveries", "abandoned"],
    )

    total_violations = 0
    total_lost = 0
    sums = {a: {"time": 0.0, "retx": 0, "dup": 0, "recov": 0, "aband": 0} for a in ARMS}
    healthy = {a: None for a in ARMS}     # fault-free config
    lossy_retx = 0

    grid_results = iter(run_sweep("E13", dims["grid_trials"], quick=quick))
    cfg_id = 0
    for loss, partition, mode in grid:
        solved_row, quality_row = [], []
        for arm in ARMS:
            case = next(grid_results)
            total_violations += case["violations"]
            total_lost += case["lost"]
            solved = sum(1 for b in case["deme_bests"] if b >= GENOME)
            solved_row.append(solved)
            quality_row.append(round(float(np.mean(case["deme_bests"])), 2))
            s = sums[arm]
            s["time"] += case["sim_time"]
            s["retx"] += case["retransmits"]
            s["dup"] += case["dup_discards"]
            s["recov"] += case["recoveries"]
            s["aband"] += case["abandoned"]
            if loss > 0 and arm != "none":
                lossy_retx += case["retransmits"]
            if (loss, partition, mode) == (0.0, 0.0, "none"):
                healthy[arm] = (solved, case)
        solved_tbl.add_row(loss, partition, mode, *solved_row)
        quality_tbl.add_row(loss, partition, mode, *quality_row)
        cfg_id += 1

    for arm in ARMS:
        s = sums[arm]
        machinery_tbl.add_row(
            arm, round(s["time"], 2), s["retx"], s["dup"], s["recov"], s["aband"]
        )

    # the acceptance cell: a hand-placed crash + partition + 30% loss, run
    # deterministically so the unprotected/supervised contrast is not at
    # the mercy of an MTBF draw
    showcase_tbl = TableSpec(
        title="Showcase: deme crash + partition + 30% loss (deterministic)",
        columns=["arm", "demes solved", "mean best", "retransmits", "recoveries"],
    )
    showcase = {}
    for arm, case in zip(ARMS, run_sweep("E13", dims["showcase_trials"], quick=quick)):
        total_violations += case["violations"]
        total_lost += case["lost"]
        solved = sum(1 for b in case["deme_bests"] if b >= GENOME)
        showcase[arm] = (solved, case)
        lossy_retx += case["retransmits"]
        showcase_tbl.add_row(
            arm,
            solved,
            round(float(np.mean(case["deme_bests"])), 2),
            case["retransmits"],
            case["recoveries"],
        )
    report.tables.extend([solved_tbl, quality_tbl, machinery_tbl, showcase_tbl])

    n_runs = (cfg_id + 1) * len(ARMS)
    report.expect(
        "verify-invariants-clean-on-every-trace",
        total_violations == 0,
        f"{total_violations} violations across {n_runs} audited runs",
    )
    report.expect(
        "losses-actually-injected",
        total_lost > 0,
        f"{total_lost} migration-lost receipts recorded across the sweep",
    )
    report.expect(
        "reliable-channel-retransmits-across-loss",
        lossy_retx > 0,
        f"{lossy_retx} retransmissions in lossy protected runs",
    )
    show_none, show_sup = showcase["none"][0], showcase["reliable+supervisor"][0]
    report.expect(
        "unprotected-control-degrades-under-chaos",
        show_none < n_islands,
        f"unprotected arm solved {show_none}/{n_islands} demes in the showcase",
    )
    report.expect(
        "supervised-islands-survive-chaos",
        show_sup == n_islands and show_sup > show_none,
        f"supervised arm solved {show_sup}/{n_islands} demes "
        f"(vs {show_none} unprotected)",
    )
    report.expect(
        "recovery-actually-used-under-chaos",
        showcase["reliable+supervisor"][1]["recoveries"] > 0,
        f"{showcase['reliable+supervisor'][1]['recoveries']} checkpoint recoveries "
        "in the showcase",
    )
    overhead = (
        healthy["reliable+supervisor"][1]["sim_time"] / healthy["none"][1]["sim_time"]
    )
    report.expect(
        "protection-overhead-bounded-when-healthy",
        overhead < 1.5,
        f"fault-free supervised wall time {overhead:.2f}x the unprotected arm's",
    )
    return report
