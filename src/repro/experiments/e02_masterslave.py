"""E2 — master-slave (global PGA) speedup and its bottleneck.

Bethke (1976) "showed the analysis of efficiency of using the processing
capacity.  He identified some bottlenecks that limit the parallel
efficiency of PGAs."  The shape to reproduce: with *expensive* fitness
functions speedup tracks the worker count and then saturates; with *cheap*
fitness functions communication dominates and speedup collapses far below
p — Amdahl's law with the master's serial work and the network as the
serial fraction.

Identical seeds mean every farm size runs genetically identical
generations, so simulated-time ratios measure the farm alone.
"""

from __future__ import annotations

from ..metrics.speedup import amdahl_speedup, speedup_curve
from ..runtime.sweep import Trial, run_sweep
from ..spec import RunSpec, cluster, engine, ga_config, problem
from .report import ExperimentReport, SeriesSpec, TableSpec

__all__ = ["run", "trial_specs"]


def _farm_spec(
    workers: int, eval_cost: float, *, generations: int, pop: int, latency: float
) -> RunSpec:
    return RunSpec(
        engine=engine(
            "sim-master-slave",
            problem=problem("onemax", length=64),
            config=ga_config(population_size=pop),
            cluster=cluster(workers + 1, latency=latency, bandwidth=1e6),
            eval_cost=eval_cost,
            chunks_per_worker=2,
        ),
        seed=42,
        run={"termination": generations},
    )


def _farm_time(report) -> float:
    return report.sim_time


def _grid(quick: bool) -> tuple[list[int], dict[str, float], list[Trial]]:
    worker_counts = [1, 2, 4, 8, 16] if quick else [1, 2, 4, 8, 16, 32, 64]
    generations = 5 if quick else 10
    pop = 64 if quick else 128
    latency = 1e-3
    scenarios = {
        "expensive-eval (0.1s)": 0.1,
        "moderate-eval (10ms)": 1e-2,
        "cheap-eval (0.1ms)": 1e-4,
    }
    trials = [
        Trial(
            _farm_time,
            spec=_farm_spec(
                w, cost, generations=generations, pop=pop, latency=latency
            ),
        )
        for cost in scenarios.values()
        for w in worker_counts
    ]
    return worker_counts, scenarios, trials


def trial_specs(quick: bool = False) -> list[RunSpec]:
    """Every declarative run this experiment dispatches (CLI ``specs`` verb)."""
    _, _, trials = _grid(quick)
    return [s for t in trials for s in t.specs]


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E2",
        title="Master-slave speedup: growth, saturation and the cheap-fitness bottleneck",
    )
    worker_counts, scenarios, trials = _grid(quick)

    table = TableSpec(
        title="Speedup vs workers (simulated time, identical genetics)",
        columns=["workers"] + [f"S [{k}]" for k in scenarios] + ["Amdahl f=0.02"],
    )
    fig = SeriesSpec(
        title="Master-slave speedup curves", x_label="workers", y_label="speedup"
    )
    farm_times = run_sweep("E2", trials, quick=quick)
    curves = {}
    for k, name in enumerate(scenarios):
        times = farm_times[k * len(worker_counts) : (k + 1) * len(worker_counts)]
        curves[name] = speedup_curve(worker_counts, times)
        fig.add(name, worker_counts, [p.speedup for p in curves[name]])
    for i, w in enumerate(worker_counts):
        table.add_row(
            w,
            *[round(curves[k][i].speedup, 3) for k in scenarios],
            round(amdahl_speedup(0.02, w), 2),
        )
    report.tables.append(table)
    report.series.append(fig)

    exp_curve = curves["expensive-eval (0.1s)"]
    cheap_curve = curves["cheap-eval (0.1ms)"]
    mid = len(worker_counts) // 2
    report.expect(
        "speedup-grows-with-workers-when-eval-expensive",
        exp_curve[-1].speedup > exp_curve[0].speedup
        and exp_curve[mid].speedup > 0.6 * worker_counts[mid],
        f"S({worker_counts[mid]})={exp_curve[mid].speedup:.2f}",
    )
    report.expect(
        "efficiency-degrades-at-scale (saturation)",
        exp_curve[-1].efficiency < exp_curve[1].efficiency,
        f"E({worker_counts[1]})={exp_curve[1].efficiency:.2f} vs "
        f"E({worker_counts[-1]})={exp_curve[-1].efficiency:.2f}",
    )
    report.expect(
        "cheap-fitness-is-communication-bound",
        cheap_curve[-1].speedup < 0.5 * exp_curve[-1].speedup,
        f"cheap S={cheap_curve[-1].speedup:.2f} vs expensive "
        f"S={exp_curve[-1].speedup:.2f} at p={worker_counts[-1]}",
    )
    report.notes.append(
        "Times are deterministic simulated seconds; all farm sizes run "
        "genetically identical generations (same seed)."
    )
    return report
