"""E11 — application workloads: registration, feature selection, cluster TSP.

Three of the survey's §4 applications, each with its headline shape:

- Chalermwat et al. (2001): the 2-phase (coarse-then-fine) registration
  pipeline "yielded very accurate registration results" — and finds the
  exact shift more cheaply than a single full-resolution GA;
- Moser & Murty (2000): distributed GA feature selection "was capable of
  reduction of the problem complexity significantly and scale very well"
  to large dimensionalities — accuracy is preserved while the selected
  fraction shrinks dramatically as dimensionality grows (sparse
  initialisation, as in their sparsity-aware operators);
- Sena et al. (2001): island TSP on a workstation cluster — the island
  ensemble beats a panmictic GA of the same total budget on tour quality.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GAConfig
from ..core.engine import GenerationalEngine
from ..core.operators.crossover import OrderCrossover
from ..core.operators.mutation import InversionMutation
from ..core.termination import MaxEvaluations
from ..migration.policy import MigrationPolicy
from ..migration.schedule import PeriodicSchedule
from ..parallel.island import IslandModel
from ..problems.applications.feature_selection import FeatureSelection
from ..problems.applications.image_registration import (
    ImageRegistration,
    two_phase_register,
)
from ..problems.combinatorial import TravelingSalesman
from .report import ExperimentReport, TableSpec

__all__ = ["run"]


def _registration_rows(seeds, quick: bool) -> tuple[TableSpec, float, float]:
    size = 64 if quick else 96
    table = TableSpec(
        title="2-phase vs single-phase registration (synthetic scenes)",
        columns=["seed", "true shift", "2-phase found", "2-phase evals", "1-phase found", "1-phase evals"],
    )
    hits2, hits1 = [], []
    for s in seeds:
        rng = np.random.default_rng(4100 + s)
        shift = (int(rng.integers(-10, 11)), int(rng.integers(-10, 11)))
        problem = ImageRegistration.synthetic(
            size=size, shift=shift, max_shift=12, seed=4200 + s
        )
        two = two_phase_register(
            problem,
            factor=4,
            phase1_generations=8,
            phase2_generations=8,
            population=30,
            seed=s,
        )
        # single-phase control with the same total budget
        eng = GenerationalEngine(problem, GAConfig(population_size=30), seed=999 + s)
        eng.run(MaxEvaluations(two.total_evaluations))
        single = eng.result()
        found1 = (int(single.best.genome[0]), int(single.best.genome[1]))
        hits2.append(two.exact)
        hits1.append(found1 == shift)
        table.add_row(
            s, str(shift), str(two.shift), two.total_evaluations,
            str(found1), single.evaluations,
        )
    return table, float(np.mean(hits2)), float(np.mean(hits1))


def _feature_rows(seeds, quick: bool) -> tuple[TableSpec, dict[int, float], dict[int, float]]:
    dims = [100, 300] if quick else [100, 300, 1000]
    budget = 6_000 if quick else 20_000
    table = TableSpec(
        title="Island-GA feature selection scaling (8 demes, fixed budget)",
        columns=[
            "features",
            "mean fitness",
            "mean informative recall",
            "mean selected",
            "selected fraction",
        ],
    )
    fitness_by_dim: dict[int, float] = {}
    selected_fraction: dict[int, float] = {}
    for d in dims:
        fits, recs, sels = [], [], []
        for s in seeds:
            problem = FeatureSelection.synthetic(
                n_features=d,
                n_informative=max(5, d // 20),
                seed=4300 + s,
                feature_cost=5e-4,       # pruning pressure: accuracy minus cost
                initial_density=0.1,     # sparse start, Moser-style
            )
            model = IslandModel(
                problem,
                8,
                GAConfig(population_size=16, elitism=1),
                policy=MigrationPolicy(rate=1, selection="best"),
                schedule=PeriodicSchedule(4),
                seed=s,
            )
            res = model.run(MaxEvaluations(budget))
            fits.append(res.best_fitness)
            recs.append(problem.informative_recall(res.best.genome))
            sels.append(problem.selected_count(res.best.genome))
        fitness_by_dim[d] = float(np.mean(fits))
        selected_fraction[d] = float(np.mean(sels)) / d
        table.add_row(
            d,
            round(fitness_by_dim[d], 4),
            round(float(np.mean(recs)), 3),
            round(float(np.mean(sels)), 1),
            round(selected_fraction[d], 3),
        )
    return table, fitness_by_dim, selected_fraction


def _tsp_rows(seeds, quick: bool) -> tuple[TableSpec, float, float]:
    n_cities = 30 if quick else 60
    budget = 20_000 if quick else 80_000
    table = TableSpec(
        title=f"Circular TSP ({n_cities} cities): island vs panmictic, same budget",
        columns=["seed", "optimum", "island tour", "panmictic tour"],
    )
    cfg_kwargs = dict(
        crossover=OrderCrossover(), mutation=InversionMutation(), elitism=1
    )
    island_gaps, pan_gaps = [], []
    for s in seeds:
        problem = TravelingSalesman.circular(n_cities)
        model = IslandModel.partitioned(
            problem,
            128,
            8,
            GAConfig(**cfg_kwargs),
            policy=MigrationPolicy(rate=1, selection="best"),
            schedule=PeriodicSchedule(4),
            seed=4400 + s,
        )
        res_island = model.run(MaxEvaluations(budget))
        eng = GenerationalEngine(
            problem, GAConfig(population_size=128, **cfg_kwargs), seed=4500 + s
        )
        eng.run(MaxEvaluations(budget))
        res_pan = eng.result()
        island_gaps.append(res_island.best_fitness / problem.optimum)
        pan_gaps.append(res_pan.best_fitness / problem.optimum)
        table.add_row(
            s,
            round(problem.optimum, 1),
            round(res_island.best_fitness, 1),
            round(res_pan.best_fitness, 1),
        )
    return table, float(np.mean(island_gaps)), float(np.mean(pan_gaps))


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E11",
        title="Applications: 2-phase registration, feature-selection scaling, cluster TSP",
    )
    seeds = range(2) if quick else range(4)

    reg_table, hit2, hit1 = _registration_rows(seeds, quick)
    report.tables.append(reg_table)
    fs_table, fs_fitness, fs_fraction = _feature_rows(seeds, quick)
    report.tables.append(fs_table)
    tsp_table, island_gap, pan_gap = _tsp_rows(seeds, quick)
    report.tables.append(tsp_table)

    report.expect(
        "two-phase-registration-finds-exact-shifts",
        hit2 >= 0.5 and hit2 >= hit1,
        f"2-phase exact-hit rate {hit2:.2f} vs 1-phase {hit1:.2f}",
    )
    dims = sorted(fs_fitness)
    report.expect(
        "feature-selection-scales-to-large-dimensionality",
        fs_fitness[dims[-1]] >= 0.85 and fs_fraction[dims[-1]] <= 0.25,
        f"at {dims[-1]} features: fitness {fs_fitness[dims[-1]]:.3f} with only "
        f"{fs_fraction[dims[-1]]:.1%} of features selected (Moser & Murty's "
        "claim: complexity reduced significantly at preserved accuracy)",
    )
    report.expect(
        "complexity-reduction-deepens-with-scale",
        fs_fraction[dims[-1]] <= fs_fraction[dims[0]],
        f"selected fraction {fs_fraction[dims[0]]:.1%} at {dims[0]} -> "
        f"{fs_fraction[dims[-1]]:.1%} at {dims[-1]} features",
    )
    report.expect(
        "island-tsp-at-least-matches-panmictic",
        island_gap <= pan_gap * 1.02,
        f"island gap {island_gap:.3f}x optimum vs panmictic {pan_gap:.3f}x",
    )
    return report
