"""E11 — application workloads: registration, feature selection, cluster TSP.

Three of the survey's §4 applications, each with its headline shape:

- Chalermwat et al. (2001): the 2-phase (coarse-then-fine) registration
  pipeline "yielded very accurate registration results" — and finds the
  exact shift more cheaply than a single full-resolution GA;
- Moser & Murty (2000): distributed GA feature selection "was capable of
  reduction of the problem complexity significantly and scale very well"
  to large dimensionalities — accuracy is preserved while the selected
  fraction shrinks dramatically as dimensionality grows (sparse
  initialisation, as in their sparsity-aware operators);
- Sena et al. (2001): island TSP on a workstation cluster — the island
  ensemble beats a panmictic GA of the same total budget on tour quality.
"""

from __future__ import annotations

import numpy as np

from ..core.config import GAConfig
from ..core.engine import GenerationalEngine
from ..core.termination import MaxEvaluations
from ..problems.applications.feature_selection import FeatureSelection
from ..problems.applications.image_registration import (
    ImageRegistration,
    two_phase_register,
)
from ..problems.combinatorial import TravelingSalesman
from ..runtime.sweep import Trial, run_sweep
from ..spec import RunSpec, engine, ga_config, operator, problem
from .report import ExperimentReport, TableSpec

__all__ = ["run", "trial_specs"]


def _registration_case(
    *, size: int, shift_seed: int, scene_seed: int, control_seed: int, seed: int
) -> dict:
    rng = np.random.default_rng(shift_seed)
    shift = (int(rng.integers(-10, 11)), int(rng.integers(-10, 11)))
    problem = ImageRegistration.synthetic(
        size=size, shift=shift, max_shift=12, seed=scene_seed
    )
    two = two_phase_register(
        problem,
        factor=4,
        phase1_generations=8,
        phase2_generations=8,
        population=30,
        seed=seed,
    )
    # single-phase control with the same total budget
    eng = GenerationalEngine(problem, GAConfig(population_size=30), seed=control_seed)
    eng.run(MaxEvaluations(two.total_evaluations))
    single = eng.result()
    found1 = (int(single.best.genome[0]), int(single.best.genome[1]))
    return {
        "shift": shift,
        "two_shift_str": str(two.shift),
        "two_evals": two.total_evaluations,
        "two_exact": bool(two.exact),
        "found1": found1,
        "single_evals": single.evaluations,
    }


def _registration_rows(seeds, quick: bool) -> tuple[TableSpec, float, float]:
    size = 64 if quick else 96
    table = TableSpec(
        title="2-phase vs single-phase registration (synthetic scenes)",
        columns=["seed", "true shift", "2-phase found", "2-phase evals", "1-phase found", "1-phase evals"],
    )
    trials = [
        Trial(
            _registration_case,
            dict(size=size, shift_seed=4100 + s, scene_seed=4200 + s, control_seed=999 + s),
            seed=s,
        )
        for s in seeds
    ]
    hits2, hits1 = [], []
    for s, case in zip(seeds, run_sweep("E11", trials, quick=quick)):
        hits2.append(case["two_exact"])
        hits1.append(case["found1"] == case["shift"])
        table.add_row(
            s, str(case["shift"]), case["two_shift_str"], case["two_evals"],
            str(case["found1"]), case["single_evals"],
        )
    return table, float(np.mean(hits2)), float(np.mean(hits1))


def _feature_problem_params(n_features: int, problem_seed: int) -> dict:
    return dict(
        n_features=n_features,
        n_informative=max(5, n_features // 20),
        seed=problem_seed,
        feature_cost=5e-4,       # pruning pressure: accuracy minus cost
        initial_density=0.1,     # sparse start, Moser-style
    )


def _feature_spec(*, n_features: int, budget: int, problem_seed: int, seed: int) -> RunSpec:
    return RunSpec(
        engine=engine(
            "island",
            problem=problem(
                "feature-selection-synthetic",
                **_feature_problem_params(n_features, problem_seed),
            ),
            n_islands=8,
            config=ga_config(population_size=16, elitism=1),
            policy=operator("migration-policy", rate=1, selection="best"),
            schedule=operator("periodic", interval=4),
        ),
        seed=seed,
        run={"termination": operator("max-evaluations", limit=budget)},
    )


def _feature_case(res, *, n_features: int, problem_seed: int) -> tuple[float, float, int]:
    prob = FeatureSelection.synthetic(**_feature_problem_params(n_features, problem_seed))
    return (
        res.best_fitness,
        prob.informative_recall(res.best.genome),
        prob.selected_count(res.best.genome),
    )


def _feature_trials(dims, budget: int, seeds) -> list[Trial]:
    return [
        Trial(
            _feature_case,
            dict(n_features=d, problem_seed=4300 + s),
            spec=_feature_spec(n_features=d, budget=budget, problem_seed=4300 + s, seed=s),
            seed=s,
        )
        for d in dims
        for s in seeds
    ]


def _feature_rows(seeds, quick: bool) -> tuple[TableSpec, dict[int, float], dict[int, float]]:
    dims = [100, 300] if quick else [100, 300, 1000]
    budget = 6_000 if quick else 20_000
    table = TableSpec(
        title="Island-GA feature selection scaling (8 demes, fixed budget)",
        columns=[
            "features",
            "mean fitness",
            "mean informative recall",
            "mean selected",
            "selected fraction",
        ],
    )
    n_seeds = len(seeds)
    fs_trials = _feature_trials(dims, budget, seeds)
    fs_results = run_sweep("E11", fs_trials, quick=quick)
    fitness_by_dim: dict[int, float] = {}
    selected_fraction: dict[int, float] = {}
    for j, d in enumerate(dims):
        per_dim = fs_results[j * n_seeds : (j + 1) * n_seeds]
        fits = [fit for fit, _, _ in per_dim]
        recs = [rec for _, rec, _ in per_dim]
        sels = [sel for _, _, sel in per_dim]
        fitness_by_dim[d] = float(np.mean(fits))
        selected_fraction[d] = float(np.mean(sels)) / d
        table.add_row(
            d,
            round(fitness_by_dim[d], 4),
            round(float(np.mean(recs)), 3),
            round(float(np.mean(sels)), 1),
            round(selected_fraction[d], 3),
        )
    return table, fitness_by_dim, selected_fraction


def _tsp_specs(
    *, n_cities: int, budget: int, pan_seed: int, seed: int
) -> tuple[RunSpec, RunSpec]:
    tsp = problem("tsp-circular", n_cities=n_cities)
    permutation_ops = dict(
        crossover=operator("order"), mutation=operator("inversion"), elitism=1
    )
    termination = {"termination": operator("max-evaluations", limit=budget)}
    island = RunSpec(
        engine=engine(
            "island",
            problem=tsp,
            n_islands=8,
            total_population=128,
            config=ga_config(**permutation_ops),
            policy=operator("migration-policy", rate=1, selection="best"),
            schedule=operator("periodic", interval=4),
        ),
        seed=seed,
        run=termination,
    )
    panmictic = RunSpec(
        engine=engine(
            "generational",
            problem=tsp,
            config=ga_config(population_size=128, **permutation_ops),
        ),
        seed=pan_seed,
        run=termination,
    )
    return island, panmictic


def _tsp_case(results, *, n_cities: int) -> tuple[float, float, float]:
    res_island, res_pan = results
    optimum = TravelingSalesman.circular(n_cities).optimum
    return optimum, res_island.best_fitness, res_pan.best_fitness


def _tsp_trials(n_cities: int, budget: int, seeds) -> list[Trial]:
    return [
        Trial(
            _tsp_case,
            dict(n_cities=n_cities),
            spec=_tsp_specs(
                n_cities=n_cities, budget=budget, pan_seed=4500 + s, seed=4400 + s
            ),
            seed=4400 + s,
        )
        for s in seeds
    ]


def trial_specs(quick: bool = False) -> list[RunSpec]:
    """Every declarative run this experiment dispatches (CLI ``specs`` verb).

    The registration arm stays a raw callable (its single-phase control's
    budget is sized from the two-phase run), so only the feature-selection
    and TSP arms contribute specs."""
    seeds = range(2) if quick else range(4)
    dims = [100, 300] if quick else [100, 300, 1000]
    fs_budget = 6_000 if quick else 20_000
    n_cities = 30 if quick else 60
    tsp_budget = 20_000 if quick else 80_000
    trials = _feature_trials(dims, fs_budget, seeds) + _tsp_trials(
        n_cities, tsp_budget, seeds
    )
    return [s for t in trials for s in t.specs]


def _tsp_rows(seeds, quick: bool) -> tuple[TableSpec, float, float]:
    n_cities = 30 if quick else 60
    budget = 20_000 if quick else 80_000
    table = TableSpec(
        title=f"Circular TSP ({n_cities} cities): island vs panmictic, same budget",
        columns=["seed", "optimum", "island tour", "panmictic tour"],
    )
    trials = _tsp_trials(n_cities, budget, seeds)
    island_gaps, pan_gaps = [], []
    for s, (optimum, island_best, pan_best) in zip(
        seeds, run_sweep("E11", trials, quick=quick)
    ):
        island_gaps.append(island_best / optimum)
        pan_gaps.append(pan_best / optimum)
        table.add_row(s, round(optimum, 1), round(island_best, 1), round(pan_best, 1))
    return table, float(np.mean(island_gaps)), float(np.mean(pan_gaps))


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E11",
        title="Applications: 2-phase registration, feature-selection scaling, cluster TSP",
    )
    seeds = range(2) if quick else range(4)

    reg_table, hit2, hit1 = _registration_rows(seeds, quick)
    report.tables.append(reg_table)
    fs_table, fs_fitness, fs_fraction = _feature_rows(seeds, quick)
    report.tables.append(fs_table)
    tsp_table, island_gap, pan_gap = _tsp_rows(seeds, quick)
    report.tables.append(tsp_table)

    report.expect(
        "two-phase-registration-finds-exact-shifts",
        hit2 >= 0.5 and hit2 >= hit1,
        f"2-phase exact-hit rate {hit2:.2f} vs 1-phase {hit1:.2f}",
    )
    dims = sorted(fs_fitness)
    report.expect(
        "feature-selection-scales-to-large-dimensionality",
        fs_fitness[dims[-1]] >= 0.85 and fs_fraction[dims[-1]] <= 0.25,
        f"at {dims[-1]} features: fitness {fs_fitness[dims[-1]]:.3f} with only "
        f"{fs_fraction[dims[-1]]:.1%} of features selected (Moser & Murty's "
        "claim: complexity reduced significantly at preserved accuracy)",
    )
    report.expect(
        "complexity-reduction-deepens-with-scale",
        fs_fraction[dims[-1]] <= fs_fraction[dims[0]],
        f"selected fraction {fs_fraction[dims[0]]:.1%} at {dims[0]} -> "
        f"{fs_fraction[dims[-1]]:.1%} at {dims[-1]} features",
    )
    report.expect(
        "island-tsp-at-least-matches-panmictic",
        island_gap <= pan_gap * 1.02,
        f"island gap {island_gap:.3f}x optimum vs panmictic {pan_gap:.3f}x",
    )
    return report
