"""E6 — Cantú-Paz's rational-design principles for island PGAs.

The survey lists the dissertation's key findings: "importance of accurate
population sizing for PGA, an equivalent scalability of single and
multiple demes, impracticability of isolated demes, improvement quality
and efficiency by migration, advantage of fully connected topologies,
studies of effects of topology and optimal allocation computing
resources."

Three sub-experiments on the deceptive-trap workload Cantú-Paz's theory is
built around:

(a) topology sweep at fixed deme grid — fully-connected converges to the
    target quality in the fewest epochs, isolated never reliably does;
(b) deme-count/size trade-off at constant total population — quality after
    a fixed budget peaks at an intermediate deme count;
(c) population sizing — bigger total populations raise efficacy.
"""

from __future__ import annotations

import numpy as np

from ..problems.binary import DeceptiveTrap
from ..runtime.sweep import Trial, run_sweep
from ..spec import RunSpec, engine, ga_config, operator, problem, topology
from .report import ExperimentReport, SeriesSpec, TableSpec

__all__ = ["run", "trial_specs"]

_POLICY = operator(
    "migration-policy", rate=1, selection="best", replacement="worst-if-better"
)


def _quality_spec(
    n_islands: int,
    pop_per_deme: int,
    topology_name: str,
    seed: int,
    *,
    budget: int,
) -> RunSpec:
    return RunSpec(
        engine=engine(
            "island",
            problem=problem("deceptive-trap", blocks=8, k=4),
            n_islands=n_islands,
            config=ga_config(population_size=pop_per_deme, elitism=1),
            topology=topology(topology_name, size=n_islands),
            policy=_POLICY,
            schedule=operator("periodic", interval=4),
        ),
        seed=seed,
        run={"termination": operator("max-evaluations", limit=budget)},
    )


def _quality(report) -> tuple[float, bool]:
    return report.best_fitness / DeceptiveTrap(blocks=8, k=4).optimum, report.solved


def _speed_spec(topology_name: str, seed: int, *, max_epochs: int = 120) -> RunSpec:
    """Convergence-speed probe: epochs a deme ensemble needs to solve OneMax."""
    return RunSpec(
        engine=engine(
            "island",
            problem=problem("onemax", length=48),
            n_islands=8,
            config=ga_config(population_size=16, elitism=1),
            topology=topology(topology_name, size=8),
            policy=_POLICY,
            schedule=operator("periodic", interval=2),
        ),
        seed=seed,
        run={"termination": operator("max-generations", limit=max_epochs)},
    )


def _epochs_to_solve_onemax(report, *, max_epochs: int = 120) -> int:
    return report.epochs if report.solved else max_epochs


_TOPO_NAMES = ["isolated", "ring", "grid", "complete"]
_TOTAL_POP = 160


def _grid(quick: bool) -> dict:
    seeds = range(3) if quick else range(8)
    budget = 25_000 if quick else 60_000
    deme_counts = [1, 2, 4, 8, 16] if quick else [1, 2, 4, 8, 16, 32]
    sizes = [40, 80, 160] if quick else [40, 80, 160, 320]
    return {
        "n_seeds": len(seeds),
        "budget": budget,
        "deme_counts": deme_counts,
        "sizes": sizes,
        "quality_trials": [
            Trial(
                _quality,
                spec=_quality_spec(8, 20, name, 600 + s, budget=budget),
                seed=600 + s,
            )
            for name in _TOPO_NAMES
            for s in seeds
        ],
        "speed_trials": [
            Trial(_epochs_to_solve_onemax, spec=_speed_spec(name, 600 + s), seed=600 + s)
            for name in _TOPO_NAMES
            for s in seeds
        ],
        "trade_trials": [
            Trial(
                _quality,
                spec=_quality_spec(
                    n,
                    _TOTAL_POP // n,
                    "ring" if n > 1 else "isolated",
                    700 + s,
                    budget=budget,
                ),
                seed=700 + s,
            )
            for n in deme_counts
            for s in seeds
        ],
        "sizing_trials": [
            Trial(
                _quality,
                spec=_quality_spec(8, max(2, total // 8), "ring", 800 + s, budget=budget),
                seed=800 + s,
            )
            for total in sizes
            for s in seeds
        ],
    }


def trial_specs(quick: bool = False) -> list[RunSpec]:
    """Every declarative run this experiment dispatches (CLI ``specs`` verb)."""
    g = _grid(quick)
    trials = g["quality_trials"] + g["speed_trials"] + g["trade_trials"] + g["sizing_trials"]
    return [s for t in trials for s in t.specs]


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E6",
        title="Cantú-Paz design principles: topology, deme sizing, population sizing",
    )
    g = _grid(quick)
    budget = g["budget"]

    # (a) topology sweep ------------------------------------------------------------
    topo_names = _TOPO_NAMES
    topo_table = TableSpec(
        title="Topology sweep (8 demes x 20): trap quality + OneMax convergence speed",
        columns=["topology", "mean quality (trap)", "hit rate (trap)", "median epochs to solve OneMax"],
    )
    topo_quality: dict[str, float] = {}
    topo_hits: dict[str, float] = {}
    topo_speed: dict[str, float] = {}
    n_seeds = g["n_seeds"]
    quality_results = run_sweep("E6", g["quality_trials"], quick=quick)
    speed_results = run_sweep("E6", g["speed_trials"], quick=quick)
    for j, name in enumerate(topo_names):
        per_topo = quality_results[j * n_seeds : (j + 1) * n_seeds]
        epochs = speed_results[j * n_seeds : (j + 1) * n_seeds]
        vals = [q for q, _ in per_topo]
        hits = sum(int(ok) for _, ok in per_topo)
        topo_quality[name] = float(np.mean(vals))
        topo_hits[name] = hits / n_seeds
        topo_speed[name] = float(np.median(epochs))
        topo_table.add_row(
            name,
            round(topo_quality[name], 4),
            round(topo_hits[name], 2),
            topo_speed[name],
        )
    report.tables.append(topo_table)

    # (b) deme count/size trade-off ----------------------------------------------------
    total_pop = _TOTAL_POP
    deme_counts = g["deme_counts"]
    trade_table = TableSpec(
        title=f"Deme count vs size at constant total population ({total_pop})",
        columns=["demes", "deme size", "mean quality", "hit rate"],
    )
    fig = SeriesSpec(
        title="Quality vs deme count (constant total population)",
        x_label="demes",
        y_label="mean normalised quality",
    )
    trade_quality: dict[int, float] = {}
    trade_results = run_sweep("E6", g["trade_trials"], quick=quick)
    for j, n in enumerate(deme_counts):
        size = total_pop // n
        per_n = trade_results[j * n_seeds : (j + 1) * n_seeds]
        vals = [q for q, _ in per_n]
        hits = sum(int(ok) for _, ok in per_n)
        trade_quality[n] = float(np.mean(vals))
        trade_table.add_row(n, size, round(trade_quality[n], 4), round(hits / n_seeds, 2))
    fig.add("quality", deme_counts, [trade_quality[n] for n in deme_counts])
    report.tables.append(trade_table)
    report.series.append(fig)

    # (c) population sizing --------------------------------------------------------------
    sizes = g["sizes"]
    sizing_table = TableSpec(
        title="Population sizing: quality/efficacy vs total population (8 ring demes)",
        columns=["total population", "mean quality", "hit rate"],
    )
    sizing_hits: dict[int, float] = {}
    sizing_quality: dict[int, float] = {}
    sizing_results = run_sweep("E6", g["sizing_trials"], quick=quick)
    for j, total in enumerate(sizes):
        per_total = sizing_results[j * n_seeds : (j + 1) * n_seeds]
        vals = [q for q, _ in per_total]
        hits = sum(int(ok) for _, ok in per_total)
        sizing_hits[total] = hits / n_seeds
        sizing_quality[total] = float(np.mean(vals))
        sizing_table.add_row(total, round(sizing_quality[total], 4), round(sizing_hits[total], 2))
    report.tables.append(sizing_table)

    # expectations ---------------------------------------------------------------------------
    report.expect(
        "isolated-demes-impractical",
        topo_quality["isolated"] <= min(
            topo_quality["ring"], topo_quality["complete"]
        ),
        f"isolated {topo_quality['isolated']:.4f} vs ring "
        f"{topo_quality['ring']:.4f}, complete {topo_quality['complete']:.4f}",
    )
    report.expect(
        "fully-connected-converges-fastest",
        topo_speed["complete"] <= min(topo_speed["ring"], topo_speed["isolated"]),
        f"epochs to solve OneMax: complete {topo_speed['complete']}, "
        f"ring {topo_speed['ring']}, isolated {topo_speed['isolated']} "
        "(Cantú-Paz's fully-connected advantage is convergence speed; on "
        "deceptive traps the same mixing can cost final quality)",
    )
    interior = [n for n in deme_counts if n not in (deme_counts[0], deme_counts[-1])]
    best_interior = max(trade_quality[n] for n in interior)
    report.expect(
        "deme-count-tradeoff-has-interior-optimum",
        best_interior >= trade_quality[deme_counts[0]]
        and best_interior >= trade_quality[deme_counts[-1]],
        f"interior best {best_interior:.4f} vs endpoints "
        f"{trade_quality[deme_counts[0]]:.4f}/{trade_quality[deme_counts[-1]]:.4f}",
    )
    report.expect(
        "bigger-populations-raise-quality-and-efficacy",
        sizing_quality[sizes[-1]] > sizing_quality[sizes[0]]
        and sizing_hits[sizes[-1]] >= sizing_hits[sizes[0]],
        f"quality {sizing_quality[sizes[0]]:.4f} -> {sizing_quality[sizes[-1]]:.4f}, "
        f"hit rate {sizing_hits[sizes[0]]:.2f} -> {sizing_hits[sizes[-1]]:.2f}",
    )
    return report
