"""E5 — selection pressure in asynchronous cellular EAs (Giacobini 2003).

"The authors searched for a general model for asynchronous update of
individuals in cEAs and for better models of selection intensity … and
characterized the update dynamics of each algorithm variant."

We regenerate the takeover-time table and growth-curve figure for the five
canonical update policies on a toroidal grid with best-wins neighbourhood
selection (variation off), plus the panmictic control.  Shape: all
asynchronous sweeps take over faster than synchronous lock-step;
line-sweep is the fastest; uniform-choice sits between the sweeps and
synchronous; panmictic tournament is faster than any grid (diffusion slows
takeover).
"""

from __future__ import annotations

import numpy as np

from ..metrics.pressure import (
    GrowthCurve,
    cellular_growth_curve,
    logistic_fit_rate,
    panmictic_growth_curve,
)
from ..parallel.cellular import UPDATE_POLICIES
from ..runtime.sweep import Trial, run_sweep
from ..spec import RunSpec, cluster, engine, ga_config, problem
from .report import ExperimentReport, SeriesSpec, TableSpec

__all__ = ["run", "trial_specs"]


def _growth(*, rows: int, cols: int, update: str, max_steps: int, seed: int) -> GrowthCurve:
    return cellular_growth_curve(rows, cols, update=update, seed=seed, max_steps=max_steps)


def _panmictic(*, population: int, max_steps: int, seed: int) -> GrowthCurve:
    return panmictic_growth_curve(population, seed=seed, max_steps=max_steps)


def _strip_spec(nodes: int, grid: int, *, max_sweeps: int, seed: int) -> RunSpec:
    return RunSpec(
        engine=engine(
            "distributed-cellular",
            problem=problem("onemax", length=32),
            config=ga_config(),
            rows=grid,
            cols=grid,
            cluster=cluster(nodes, latency=1e-4, bandwidth=1e6),
            eval_cost=1e-3,
        ),
        seed=seed,
        run={"max_sweeps": max_sweeps},
    )


def _strip_scalability(report) -> tuple[float, float]:
    return report.sim_time, report.comm_fraction


def _strip_trials(quick: bool) -> tuple[list[int], int, list[Trial]]:
    node_counts = [1, 4, 8, 16] if quick else [1, 4, 8, 16, 32, 64]
    grid_rows = 32 if quick else 64
    trials = [
        Trial(_strip_scalability, spec=_strip_spec(n, grid_rows, max_sweeps=8, seed=1), seed=1)
        for n in node_counts
    ]
    return node_counts, grid_rows, trials


def trial_specs(quick: bool = False) -> list[RunSpec]:
    """Every declarative run this experiment dispatches (CLI ``specs`` verb).

    The takeover growth curves are operator-level measurements (no engine),
    so only the strip-scalability sweep is spec-backed."""
    _, _, trials = _strip_trials(quick)
    return [s for t in trials for s in t.specs]


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E5",
        title="Takeover time under synchronous vs asynchronous cellular updates",
    )
    rows = cols = 16 if quick else 32
    seeds = range(3) if quick else range(10)
    max_steps = 400

    table = TableSpec(
        title=f"Takeover statistics on a {rows}x{cols} torus "
        "(best-wins von Neumann selection, medians over seeds)",
        columns=["policy", "median takeover", "mean growth rate", "curve area"],
    )
    fig = SeriesSpec(
        title="Growth of the best individual (one representative seed)",
        x_label="sweep",
        y_label="proportion of best copies",
    )
    n_seeds = len(seeds)
    growth_trials = [
        Trial(_growth, dict(rows=rows, cols=cols, update=policy, max_steps=max_steps), seed=1000 + s)
        for policy in UPDATE_POLICIES
        for s in seeds
    ]
    pan_trial = Trial(_panmictic, dict(population=rows * cols, max_steps=max_steps), seed=1000)
    curves = run_sweep("E5", growth_trials + [pan_trial], quick=quick)
    med_takeover: dict[str, float] = {}
    for j, policy in enumerate(UPDATE_POLICIES):
        per_policy = curves[j * n_seeds : (j + 1) * n_seeds]
        takeovers, rates, areas = [], [], []
        for c in per_policy:
            takeovers.append(c.takeover if c.takeover is not None else max_steps)
            rates.append(logistic_fit_rate(c.proportions))
            areas.append(c.area())
        med_takeover[policy] = float(np.median(takeovers))
        table.add_row(
            policy,
            med_takeover[policy],
            round(float(np.nanmean(rates)), 3),
            round(float(np.mean(areas)), 1),
        )
        rep = per_policy[0]  # the seed-1000 run doubles as the representative curve
        fig.add(policy, list(range(len(rep))), list(rep.proportions))
    pan = curves[-1]
    table.add_row(
        "panmictic-tournament",
        pan.takeover if pan.takeover is not None else max_steps,
        round(logistic_fit_rate(pan.proportions), 3),
        round(pan.area(), 1),
    )
    report.tables.append(table)
    report.series.append(fig)

    sync = med_takeover["synchronous"]
    report.expect(
        "async-sweeps-take-over-faster-than-synchronous",
        all(
            med_takeover[p] < sync
            for p in ("line-sweep", "fixed-random-sweep", "new-random-sweep")
        ),
        f"sync={sync}, sweeps="
        + str({p: med_takeover[p] for p in ("line-sweep", "fixed-random-sweep", "new-random-sweep")}),
    )
    report.expect(
        "line-sweep-is-fastest",
        med_takeover["line-sweep"] == min(med_takeover.values()),
        f"line-sweep={med_takeover['line-sweep']}",
    )
    report.expect(
        "uniform-choice-between-sweeps-and-synchronous",
        med_takeover["new-random-sweep"] <= med_takeover["uniform-choice"] <= sync,
        f"uniform-choice={med_takeover['uniform-choice']}",
    )
    report.notes.append(
        "Selection-only dynamics (no crossover/mutation), per Giacobini et "
        "al.'s growth-curve methodology; grid updates use best-wins local "
        "selection so the curves isolate the update policy's contribution."
    )

    # -- fine-grained scalability (Pelikan et al. 2002) -----------------------------
    node_counts, grid_rows, strip_trials = _strip_trials(quick)
    grid_cols = grid_rows
    scal = TableSpec(
        title=f"Strip-distributed cellular GA scalability ({grid_rows}x{grid_cols} "
        "grid, fixed sweeps)",
        columns=["nodes", "sim time", "speedup", "efficiency", "comm fraction"],
    )
    times = dict(zip(node_counts, run_sweep("E5", strip_trials, quick=quick)))
    base = times[node_counts[0]][0]
    for n in node_counts:
        t, cf = times[n]
        scal.add_row(n, round(t, 3), round(base / t, 2), round(base / t / n, 3), round(cf, 4))
    report.tables.append(scal)
    top = node_counts[-1]
    eff_top = base / times[top][0] / top
    report.expect(
        "fine-grained-model-scales-to-many-processors",
        eff_top > 0.7,
        f"efficiency {eff_top:.2f} at {top} nodes (Pelikan: 'scaled well, "
        "even for a very large number of processors')",
    )
    return report
