"""E3 — island-model speedup, including the super-linear regime.

Alba & Troya (2001/2002; Alba 2002, *Parallel evolutionary algorithms can
achieve superlinear performance*): multi-deme GAs "demonstrated linear and
even super-linear speedup when run in a cluster of workstations".  The
mechanism: n communicating demes of size P/n need *fewer total
evaluations* to hit the optimum of a multimodal/deceptive landscape than
one panmictic population of size P, so the ratio of times can exceed n.

Two measurements, per the super-linear-speedup literature's method:

1. *evaluations to solution* (machine-independent, orthodox measure) from
   the logical :class:`IslandModel`;
2. *simulated time to solution* from :class:`SimulatedIslandModel` on an
   n-node cluster — the quantity a cluster user actually observes.
"""

from __future__ import annotations

import numpy as np

from ..runtime.sweep import Trial, run_sweep
from ..spec import RunSpec, cluster, engine, ga_config, operator, problem
from .report import ExperimentReport, SeriesSpec, TableSpec

__all__ = ["run", "trial_specs"]

_TRAP = problem("deceptive-trap", blocks=8, k=4)
_POLICY = operator(
    "migration-policy", rate=1, selection="best", replacement="worst-if-better"
)


def _evals_spec(n_islands: int, total_pop: int, seed: int, *, budget: int) -> RunSpec:
    return RunSpec(
        engine=engine(
            "island",
            problem=_TRAP,
            n_islands=n_islands,
            total_population=total_pop,
            config=ga_config(elitism=1, crossover_prob=0.9),
            policy=_POLICY,
            schedule=operator("periodic", interval=4),
        ),
        seed=seed,
        run={"termination": operator("max-evaluations", limit=budget)},
    )


def _evals_to_solution(report) -> tuple[int, bool]:
    return report.evaluations, report.solved


def _time_spec(n_islands: int, total_pop: int, seed: int, *, max_epochs: int) -> RunSpec:
    return RunSpec(
        engine=engine(
            "sim-island",
            problem=_TRAP,
            n_islands=n_islands,
            config=ga_config(
                elitism=1, population_size=max(2, total_pop // n_islands)
            ),
            cluster=cluster(n_islands),
            eval_cost=1e-3,
            max_epochs=max_epochs,
            policy=operator("migration-policy", rate=1, selection="best"),
            schedule=operator("periodic", interval=4),
        ),
        seed=seed,
    )


def _time_to_solution(report) -> tuple[float, bool]:
    return report.sim_time, report.solved


def _grid(quick: bool) -> tuple[list[int], int, list[Trial], list[Trial]]:
    island_counts = [1, 2, 4, 8] if quick else [1, 2, 4, 8, 16]
    total_pop = 160
    seeds = range(3) if quick else range(7)
    budget = 150_000 if quick else 400_000
    max_epochs = 300 if quick else 800
    eval_trials = [
        Trial(
            _evals_to_solution,
            spec=_evals_spec(n, total_pop, 1000 + s, budget=budget),
            seed=1000 + s,
        )
        for n in island_counts
        for s in seeds
    ]
    time_trials = [
        Trial(
            _time_to_solution,
            spec=_time_spec(n, total_pop, 2000 + s, max_epochs=max_epochs),
            seed=2000 + s,
        )
        for n in island_counts
        for s in seeds
    ]
    return island_counts, len(seeds), eval_trials, time_trials


def trial_specs(quick: bool = False) -> list[RunSpec]:
    """Every declarative run this experiment dispatches (CLI ``specs`` verb)."""
    _, _, eval_trials, time_trials = _grid(quick)
    return [s for t in eval_trials + time_trials for s in t.specs]


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E3",
        title="Island model: linear and super-linear speedup to solution",
    )
    island_counts, n_seeds, eval_trials, time_trials = _grid(quick)

    table = TableSpec(
        title="Evaluations & simulated time to optimum (medians over seeds)",
        columns=[
            "islands",
            "median evals",
            "eval hit rate",
            "evals speedup",
            "median sim time",
            "time hit rate",
            "time speedup",
        ],
    )
    fig = SeriesSpec(
        title="Speedup to solution vs island count",
        x_label="islands",
        y_label="speedup",
    )
    eval_results = run_sweep("E3", eval_trials, quick=quick)
    time_results = run_sweep("E3", time_trials, quick=quick)
    med_evals, med_times, eval_hits, time_hits = {}, {}, {}, {}
    for j, n in enumerate(island_counts):
        per_n_e = eval_results[j * n_seeds : (j + 1) * n_seeds]
        per_n_t = time_results[j * n_seeds : (j + 1) * n_seeds]
        evals = [e for e, ok_e in per_n_e if ok_e]
        times = [t for t, ok_t in per_n_t if ok_t]
        med_evals[n] = float(np.median(evals)) if evals else float("inf")
        med_times[n] = float(np.median(times)) if times else float("inf")
        eval_hits[n] = sum(int(ok_e) for _, ok_e in per_n_e) / n_seeds
        time_hits[n] = sum(int(ok_t) for _, ok_t in per_n_t) / n_seeds
    base_e, base_t = med_evals[1], med_times[1]
    evals_speedup = {n: base_e / med_evals[n] for n in island_counts}
    time_speedup = {n: base_t / med_times[n] for n in island_counts}
    for n in island_counts:
        table.add_row(
            n,
            med_evals[n],
            round(eval_hits[n], 2),
            round(evals_speedup[n], 2),
            round(med_times[n], 2),
            round(time_hits[n], 2),
            round(time_speedup[n], 2),
        )
    report.tables.append(table)
    fig.add("evaluations-to-solution", island_counts, [evals_speedup[n] for n in island_counts])
    fig.add("time-to-solution", island_counts, [time_speedup[n] for n in island_counts])
    fig.add("linear", island_counts, [float(n) for n in island_counts])
    report.series.append(fig)

    multi = [n for n in island_counts if n > 1]
    report.expect(
        "multi-deme-beats-panmictic-on-evaluations",
        any(evals_speedup[n] > 1.0 for n in multi),
        f"max evals-speedup {max(evals_speedup[n] for n in multi):.2f}",
    )
    report.expect(
        "time-speedup-grows-with-islands",
        time_speedup[multi[-1]] > time_speedup[multi[0]] * 0.9
        and time_speedup[multi[-1]] > 1.5,
        f"time speedup at {multi[-1]} islands = {time_speedup[multi[-1]]:.2f}",
    )
    best_n = max(multi, key=lambda n: time_speedup[n] / n)
    report.expect(
        "super-linear-or-near-linear-regime-exists",
        time_speedup[best_n] >= 0.8 * best_n,
        f"S({best_n})={time_speedup[best_n]:.2f} vs linear {best_n} "
        "(super-linear when > islands; deceptive landscapes make the "
        "evaluations-to-solution term < 1/n per deme)",
    )
    report.notes.append(
        "Speedup definition follows Alba (2002): same total population, "
        "1-deme panmictic baseline, stop at first hit of the optimum."
    )
    return report
