"""E7 — hierarchical GA with multiple model fidelities (Sefrioui & Périaux).

"The architecture allowed mix of a simple and complex models, but it
achieved the same quality as reached by only complex models.  This
solutions gave the same quality results of the nozzle reconstruction but
it was three times faster when compared with the complex models."

We race a 3-layer :class:`HierarchicalGA` (truth model only at the top
deme, cheap models below) against a same-deme-count island ensemble that
evaluates *everything* at the truth fidelity, on the transonic-wing
surrogate.  Cost is in work units (evaluations x fidelity cost).  Shape:
the hierarchy reaches the all-complex ensemble's quality at a fraction of
the work — the survey's "three times faster" is the target factor.
"""

from __future__ import annotations

import numpy as np

from ..problems.applications.wing import TransonicWingDesign
from ..runtime.sweep import Trial, run_sweep
from ..spec import RunSpec, engine, ga_config, operator, problem
from .report import ExperimentReport, SeriesSpec, TableSpec

__all__ = ["run", "trial_specs"]


def _hga_spec(seed: int, *, epochs: int, pop: int) -> RunSpec:
    return RunSpec(
        engine=engine(
            "hierarchical",
            problem=problem("transonic-wing"),
            config=ga_config(population_size=pop, elitism=1),
            layers=3,
            branching=2,
            migration_interval=3,
        ),
        seed=seed,
        run={"max_epochs": epochs},
    )


def _hga_curve(report) -> tuple[list[float], list[float]]:
    """(work_units, best) curves for the hierarchical run."""
    return report.extras["work_curve"], report.extras["best_curve"]


def _complex_spec(seed: int, *, pop: int) -> RunSpec:
    """Same deme count (7), all at the truth fidelity."""
    return RunSpec(
        engine=engine(
            "island",
            problem=problem("transonic-wing-truth"),
            n_islands=7,
            config=ga_config(population_size=pop, elitism=1),
            policy=operator("migration-policy", rate=1, selection="best"),
            schedule=operator("periodic", interval=3),
        ),
        seed=seed,
    )


def _complex_curve(model, *, epochs: int) -> tuple[list[float], list[float]]:
    """Drive the all-truth ensemble epoch by epoch, pricing every
    evaluation at the highest-fidelity cost."""
    cost = float(TransonicWingDesign().costs[-1])
    works, bests = [], []
    model.initialize()
    works.append(model.total_evaluations() * cost)
    bests.append(model.global_best().require_fitness())
    for _ in range(epochs):
        model.step_epoch()
        works.append(model.total_evaluations() * cost)
        bests.append(model.global_best().require_fitness())
    return works, bests


def _work_to_reach(works: list[float], bests: list[float], target: float) -> float:
    """First work level at which best <= target (minimisation)."""
    for w, b in zip(works, bests):
        if b <= target:
            return w
    return float("inf")


def _grid(quick: bool) -> tuple[list[Trial], list[Trial]]:
    seeds = range(2) if quick else range(5)
    epochs = 20 if quick else 50
    pop = 16 if quick else 24
    hga_trials = [
        Trial(_hga_curve, spec=_hga_spec(900 + s, epochs=epochs, pop=pop), seed=900 + s)
        for s in seeds
    ]
    complex_trials = [
        Trial(
            _complex_curve,
            dict(epochs=epochs),
            spec=_complex_spec(900 + s, pop=pop),
            mode="engine",
            seed=900 + s,
        )
        for s in seeds
    ]
    return hga_trials, complex_trials


def trial_specs(quick: bool = False) -> list[RunSpec]:
    """Every declarative run this experiment dispatches (CLI ``specs`` verb)."""
    hga_trials, complex_trials = _grid(quick)
    return [s for t in hga_trials + complex_trials for s in t.specs]


def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E7",
        title="Hierarchical multi-fidelity GA vs all-complex-model ensemble",
    )
    hga_trials, complex_trials = _grid(quick)
    hga_curves = run_sweep("E7", hga_trials, quick=quick)
    complex_curves = run_sweep("E7", complex_trials, quick=quick)

    ratios, targets = [], []
    rep_series = None
    for (hw, hb), (cw, cb) in zip(hga_curves, complex_curves):
        # matched-quality point: the worse of the two finals, which both
        # curves provably reach — "same quality" in Sefrioui's claim
        target = max(cb[-1], hb[-1])
        w_h = _work_to_reach(hw, hb, target)
        w_c = _work_to_reach(cw, cb, target)
        if np.isfinite(w_h) and w_h > 0:
            ratios.append(w_c / w_h)
            targets.append(target)
        if rep_series is None:
            rep_series = SeriesSpec(
                title="Best drag vs work units (one representative seed)",
                x_label="work units",
                y_label="best drag coefficient",
            )
            rep_series.add("hierarchical (mixed fidelity)", hw, hb)
            rep_series.add("all-complex ensemble", cw, cb)
    if rep_series is not None:
        report.series.append(rep_series)

    table = TableSpec(
        title="Work to reach the matched quality level (worse of the two finals)",
        columns=["seed", "speed ratio (complex work / HGA work)"],
    )
    for i, r in enumerate(ratios):
        table.add_row(i, round(r, 2))
    table.add_row("median", round(float(np.median(ratios)), 2) if ratios else float("nan"))
    report.tables.append(table)

    med = float(np.median(ratios)) if ratios else 0.0
    report.expect(
        "hierarchy-reaches-complex-quality-with-less-work",
        bool(ratios) and med > 1.0,
        f"median speed ratio {med:.2f}x",
    )
    report.expect(
        "speedup-factor-near-the-claimed-3x",
        bool(ratios) and med >= 1.5,
        f"median {med:.2f}x vs the paper's ~3x (same order of magnitude "
        "expected, not the exact factor)",
    )
    report.notes.append(
        "Fidelity costs 1:6:36 mirror a CFD stack; the hierarchy spends "
        "most evaluations at the cheap levels and promotes winners upward."
    )
    return report
