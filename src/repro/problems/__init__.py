"""Benchmark problems: the survey's problem spectrum plus its applications.

``spectrum()`` returns the five-class problem suite of Alba & Troya (2000):
easy, deceptive, multimodal, NP-complete and epistatic landscapes.
"""

from ..core.problem import CountingProblem, Problem
from .binary import (
    DeceptiveTrap,
    LeadingOnes,
    NKLandscape,
    OneMax,
    PPeaks,
    RoyalRoad,
    ZeroMax,
)
from .combinatorial import (
    GraphBipartition,
    Knapsack,
    MaxSat,
    SubsetSum,
    TaskGraphScheduling,
    TravelingSalesman,
    random_tsp_instance,
)
from .continuous import (
    Ackley,
    Griewank,
    Rastrigin,
    Rosenbrock,
    Schwefel,
    Sphere,
    Weierstrass,
)
from .multifidelity import FidelityView, MultiFidelityProblem
from .multiobjective import (
    ZDT1,
    ZDT2,
    ZDT3,
    FonsecaFleming,
    MultiObjectiveProblem,
    ScalarizedObjective,
    SchafferF2,
    dominates,
    hypervolume_2d,
    pareto_front,
)

__all__ = [
    "Problem",
    "CountingProblem",
    # binary
    "OneMax",
    "ZeroMax",
    "LeadingOnes",
    "DeceptiveTrap",
    "RoyalRoad",
    "NKLandscape",
    "PPeaks",
    # combinatorial
    "SubsetSum",
    "MaxSat",
    "Knapsack",
    "TravelingSalesman",
    "GraphBipartition",
    "TaskGraphScheduling",
    "random_tsp_instance",
    # continuous
    "Sphere",
    "Rastrigin",
    "Ackley",
    "Griewank",
    "Schwefel",
    "Rosenbrock",
    "Weierstrass",
    # multi-fidelity
    "MultiFidelityProblem",
    "FidelityView",
    # multiobjective
    "MultiObjectiveProblem",
    "ScalarizedObjective",
    "SchafferF2",
    "FonsecaFleming",
    "ZDT1",
    "ZDT2",
    "ZDT3",
    "dominates",
    "pareto_front",
    "hypervolume_2d",
    # suites
    "spectrum",
]


def spectrum(seed: int = 0) -> dict[str, Problem]:
    """The five-class landscape spectrum of Alba & Troya (2000).

    Keys name the difficulty class the survey cites: "easy, deceptive,
    multimodal, NP-Complete, and epistatic search landscapes".
    """
    return {
        "easy": OneMax(64),
        "deceptive": DeceptiveTrap(blocks=16, k=4),
        "multimodal": PPeaks(p=64, length=64, seed=seed),
        "np-complete": MaxSat(n_vars=48, n_clauses=200, seed=seed),
        "epistatic": NKLandscape(n=48, k=4, seed=seed, exact_optimum=False),
    }
