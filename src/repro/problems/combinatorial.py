"""Combinatorial / NP-complete workloads.

The survey's application range: "Numerical Mathematics and Graph Theory
(numerical function optimatizations, graph bipartity, graph partitioning
problem, scheduling problems, mission routing problems)" plus the
NP-complete entries of Alba & Troya's problem spectrum (subset sum, MAXSAT)
and the cluster-demo classics (TSP — Sena et al. 2001; knapsack; task-graph
scheduling — Kwok & Ahmad 1997).
"""

from __future__ import annotations

import numpy as np

from ..core.genome import BinarySpec, PermutationSpec
from ..core.problem import Problem
from ..core.rng import ensure_rng

__all__ = [
    "SubsetSum",
    "MaxSat",
    "Knapsack",
    "TravelingSalesman",
    "GraphBipartition",
    "TaskGraphScheduling",
    "random_tsp_instance",
]


class SubsetSum(Problem):
    """Pick a subset of ``weights`` summing as close to ``capacity`` as
    possible without exceeding it (the DRM/DREAM test problem, Jelasity
    2002).  Fitness is the achieved sum (0 when over capacity); maximised.
    """

    def __init__(
        self,
        weights: np.ndarray | None = None,
        capacity: float | None = None,
        *,
        n: int = 64,
        seed: int = 0,
    ) -> None:
        rng = ensure_rng(seed)
        if weights is None:
            weights = rng.integers(1, 1000, size=n).astype(float)
        self.weights = np.asarray(weights, dtype=float)
        if capacity is None:
            # guarantee a perfect subset exists: capacity = sum of a random half
            mask = rng.random(self.weights.size) < 0.5
            if not mask.any():
                mask[0] = True
            capacity = float(self.weights[mask].sum())
        self.capacity = float(capacity)
        self.spec = BinarySpec(self.weights.size)
        self.maximize = True
        self.optimum = self.capacity  # attainable by construction (when generated)

    def evaluate(self, genome: np.ndarray) -> float:
        total = float(np.dot(self.weights, genome))
        return total if total <= self.capacity else 0.0

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        # weights are small integers stored as floats and genomes are 0/1, so
        # the dot products are exact regardless of summation order
        totals = genomes.astype(float) @ self.weights
        return np.where(totals <= self.capacity, totals, 0.0)


class MaxSat(Problem):
    """Random 3-SAT as MAXSAT: maximise the number of satisfied clauses.

    Instances are generated satisfiable by planting a solution.
    """

    def __init__(
        self,
        n_vars: int = 50,
        n_clauses: int = 215,
        *,
        seed: int = 0,
        planted: bool = True,
    ) -> None:
        if n_vars < 3:
            raise ValueError(f"need at least 3 variables, got {n_vars}")
        rng = ensure_rng(seed)
        self.spec = BinarySpec(n_vars)
        self.maximize = True
        plant = rng.integers(0, 2, size=n_vars) if planted else None
        lits = np.empty((n_clauses, 3), dtype=np.int64)
        negs = np.empty((n_clauses, 3), dtype=bool)
        for c in range(n_clauses):
            vs = rng.choice(n_vars, size=3, replace=False)
            ns = rng.random(3) < 0.5
            if plant is not None:
                # ensure at least one literal is true under the planted assignment
                truth = (plant[vs] == 1) != ns
                if not truth.any():
                    flip = int(rng.integers(0, 3))
                    ns[flip] = not ns[flip]
            lits[c] = vs
            negs[c] = ns
        self.literals = lits
        self.negated = negs
        self.optimum = float(n_clauses) if planted else None

    def evaluate(self, genome: np.ndarray) -> float:
        vals = genome[self.literals] == 1  # (clauses, 3)
        lit_true = vals != self.negated
        return float(np.count_nonzero(lit_true.any(axis=1)))

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        vals = genomes[:, self.literals] == 1  # (batch, clauses, 3)
        lit_true = vals != self.negated
        return np.count_nonzero(lit_true.any(axis=2), axis=1).astype(float)

    @property
    def n_clauses(self) -> int:
        return self.literals.shape[0]


class Knapsack(Problem):
    """0/1 knapsack with a penalty for over-capacity selections."""

    def __init__(
        self,
        values: np.ndarray | None = None,
        weights: np.ndarray | None = None,
        capacity: float | None = None,
        *,
        n: int = 50,
        seed: int = 0,
    ) -> None:
        rng = ensure_rng(seed)
        if values is None:
            values = rng.integers(10, 100, size=n).astype(float)
        if weights is None:
            weights = rng.integers(5, 50, size=len(values)).astype(float)
        self.values = np.asarray(values, dtype=float)
        self.weights = np.asarray(weights, dtype=float)
        if self.values.shape != self.weights.shape:
            raise ValueError("values and weights must have equal length")
        self.capacity = (
            float(capacity) if capacity is not None else float(self.weights.sum()) * 0.5
        )
        self.spec = BinarySpec(self.values.size)
        self.maximize = True
        self.optimum = None  # exact DP optimum available via solve_exact()

    def evaluate(self, genome: np.ndarray) -> float:
        weight = float(np.dot(self.weights, genome))
        value = float(np.dot(self.values, genome))
        if weight <= self.capacity:
            return value
        # linear death-penalty proportional to overweight
        return max(0.0, value - 2.0 * (weight - self.capacity) * self._density)

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        g = genomes.astype(float)
        weight = g @ self.weights  # exact: integer-valued operands
        value = g @ self.values
        penalized = np.maximum(
            0.0, value - 2.0 * (weight - self.capacity) * self._density
        )
        return np.where(weight <= self.capacity, value, penalized)

    @property
    def _density(self) -> float:
        return float(np.max(self.values / self.weights))

    def solve_exact(self) -> float:
        """Dynamic-programming optimum (weights must be integral)."""
        cap = int(self.capacity)
        w = self.weights.astype(np.int64)
        v = self.values
        best = np.zeros(cap + 1)
        for wi, vi in zip(w, v):
            if wi <= cap:
                best[wi:] = np.maximum(best[wi:], best[:-wi] + vi if wi else best + vi)
        return float(best.max())


def random_tsp_instance(
    n_cities: int, seed: int = 0, *, scale: float = 100.0
) -> np.ndarray:
    """Uniform random city coordinates in a ``scale`` × ``scale`` square."""
    rng = ensure_rng(seed)
    return rng.uniform(0.0, scale, size=(n_cities, 2))


class TravelingSalesman(Problem):
    """Euclidean TSP over given city coordinates; minimise tour length.

    The survey's cluster case study (Sena et al. 2001) ran exactly this on a
    workstation cluster.
    """

    def __init__(self, cities: np.ndarray, target: float | None = None) -> None:
        cities = np.asarray(cities, dtype=float)
        if cities.ndim != 2 or cities.shape[1] != 2 or cities.shape[0] < 3:
            raise ValueError("cities must be an (n>=3, 2) coordinate array")
        self.cities = cities
        diff = cities[:, None, :] - cities[None, :, :]
        self.distances = np.sqrt((diff * diff).sum(axis=2))
        self.spec = PermutationSpec(cities.shape[0])
        self.maximize = False
        self.target = target

    @classmethod
    def random(cls, n_cities: int = 50, seed: int = 0) -> "TravelingSalesman":
        return cls(random_tsp_instance(n_cities, seed))

    @classmethod
    def circular(cls, n_cities: int = 50, radius: float = 100.0) -> "TravelingSalesman":
        """Cities on a circle — known optimal tour (the circle perimeter).

        Gives experiments a combinatorial problem with a certifiable optimum.
        """
        theta = 2.0 * np.pi * np.arange(n_cities) / n_cities
        pts = radius * np.stack([np.cos(theta), np.sin(theta)], axis=1)
        inst = cls(pts)
        inst.optimum = float(n_cities * 2.0 * radius * np.sin(np.pi / n_cities))
        inst.target = inst.optimum * 1.05  # within 5% of optimal counts as solved
        return inst

    def evaluate(self, genome: np.ndarray) -> float:
        tour = np.asarray(genome, dtype=np.int64)
        nxt = np.roll(tour, -1)
        return float(self.distances[tour, nxt].sum())

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        tours = np.asarray(genomes, dtype=np.int64)
        nxt = np.roll(tours, -1, axis=1)
        return self.distances[tours, nxt].sum(axis=1)


class GraphBipartition(Problem):
    """Balanced graph bipartition: minimise cut edges, penalise imbalance.

    "graph bipartity, graph partitioning problem" — survey §4.  The genome
    assigns each vertex to side 0 or 1.
    """

    def __init__(
        self,
        adjacency: np.ndarray | None = None,
        *,
        n: int = 64,
        edge_prob: float = 0.1,
        seed: int = 0,
        balance_weight: float | None = None,
    ) -> None:
        rng = ensure_rng(seed)
        if adjacency is None:
            a = rng.random((n, n)) < edge_prob
            a = np.triu(a, 1)
            adjacency = (a | a.T).astype(np.int8)
        self.adjacency = np.asarray(adjacency)
        if self.adjacency.shape[0] != self.adjacency.shape[1]:
            raise ValueError("adjacency must be square")
        nv = self.adjacency.shape[0]
        self.spec = BinarySpec(nv)
        self.maximize = False
        # default: one cut edge costs as much as one unit of imbalance
        self.balance_weight = (
            balance_weight if balance_weight is not None else 1.0
        )

    def evaluate(self, genome: np.ndarray) -> float:
        side = np.asarray(genome, dtype=np.int8)
        cut = float(np.sum(self.adjacency * (side[:, None] != side[None, :]))) / 2.0
        imbalance = abs(float(side.sum()) - side.size / 2.0)
        return cut + self.balance_weight * imbalance

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        sides = np.asarray(genomes, dtype=np.int8)
        crossing = sides[:, :, None] != sides[:, None, :]  # (batch, n, n)
        cuts = np.sum(self.adjacency[None, :, :] * crossing, axis=(1, 2)) / 2.0
        imbalance = np.abs(
            sides.sum(axis=1, dtype=np.int64).astype(float) - sides.shape[1] / 2.0
        )
        return cuts + self.balance_weight * imbalance


class TaskGraphScheduling(Problem):
    """List-scheduling of a random DAG onto ``m`` processors (Kwok & Ahmad).

    The genome is a *priority permutation* of tasks; decoding assigns each
    ready task (in priority order) to the earliest-available processor,
    respecting precedence and communication delays.  Fitness is the
    makespan (minimised).
    """

    def __init__(
        self,
        n_tasks: int = 30,
        n_processors: int = 4,
        *,
        seed: int = 0,
        edge_prob: float = 0.15,
        comm_cost: float = 2.0,
    ) -> None:
        if n_tasks < 2 or n_processors < 1:
            raise ValueError("need >= 2 tasks and >= 1 processor")
        rng = ensure_rng(seed)
        self.n_tasks = n_tasks
        self.n_processors = n_processors
        self.durations = rng.uniform(1.0, 10.0, size=n_tasks)
        # random DAG: edge i->j only for i < j
        mask = rng.random((n_tasks, n_tasks)) < edge_prob
        self.dag = np.triu(mask, 1)
        self.comm_cost = comm_cost
        self.spec = PermutationSpec(n_tasks)
        self.maximize = False
        self._preds = [np.flatnonzero(self.dag[:, j]) for j in range(n_tasks)]

    def evaluate(self, genome: np.ndarray) -> float:
        priority = np.empty(self.n_tasks, dtype=np.int64)
        priority[np.asarray(genome, dtype=np.int64)] = np.arange(self.n_tasks)
        finish = np.full(self.n_tasks, -1.0)
        proc_of = np.full(self.n_tasks, -1, dtype=np.int64)
        proc_free = np.zeros(self.n_processors)
        scheduled = np.zeros(self.n_tasks, dtype=bool)
        for _ in range(self.n_tasks):
            # ready tasks: all predecessors scheduled
            ready = [
                t
                for t in range(self.n_tasks)
                if not scheduled[t] and all(scheduled[p] for p in self._preds[t])
            ]
            # pick the ready task with the best (lowest) priority value
            t = min(ready, key=lambda t: priority[t])
            # earliest start on each processor given predecessor placement
            best_proc, best_start = 0, np.inf
            for proc in range(self.n_processors):
                start = proc_free[proc]
                for p in self._preds[t]:
                    arrival = finish[p] + (self.comm_cost if proc_of[p] != proc else 0.0)
                    start = max(start, arrival)
                if start < best_start:
                    best_proc, best_start = proc, start
            finish[t] = best_start + self.durations[t]
            proc_of[t] = best_proc
            proc_free[best_proc] = finish[t]
            scheduled[t] = True
        return float(finish.max())
