"""Transonic wing design surrogate (Oyama 2000; Sefrioui & Périaux 2000).

The survey's aerodynamic entries optimised "three-dimensional shape … for
aerodynamic design of a transonic aircraft wing" with CFD solvers of
several fidelities.  We substitute an *algebraic drag model* with the same
structure a multi-fidelity CFD stack exposes: induced drag falling with
aspect ratio, transonic wave drag rising sharply with thickness and falling
with sweep, viscous drag, and a lift-requirement penalty.  The low-fidelity
models drop terms and add systematic bias — cheap but misleading exactly
where cheap panel methods are misleading (the wave-drag regime) — which is
the property Sefrioui's hierarchical GA exploits.

Genome (all normalised to [0, 1]):
    [aspect_ratio, sweep, thickness, taper, twist]
"""

from __future__ import annotations

import numpy as np

from ...core.genome import RealVectorSpec
from ..multifidelity import MultiFidelityProblem

__all__ = ["TransonicWingDesign"]


def _denorm(x: float, lo: float, hi: float) -> float:
    return lo + x * (hi - lo)


class TransonicWingDesign(MultiFidelityProblem):
    """Minimise total drag coefficient at a fixed cruise condition.

    Fidelity 2 (truth): full drag build-up (induced + wave + viscous +
    twist-loading correction) with the lift constraint enforced.
    Fidelity 1: wave drag linearised around a nominal sweep (biased near
    the optimum), viscous drag coarse.
    Fidelity 0: induced drag only plus a crude constant for compressibility
    — the classic "panel-method" cheat.

    ``costs`` reflect CFD reality: each fidelity step is ~6x dearer.
    """

    maximize = False
    costs = (1.0, 6.0, 36.0)

    #: design-variable physical ranges
    AR_RANGE = (4.0, 12.0)        # aspect ratio
    SWEEP_RANGE = (0.0, 40.0)     # quarter-chord sweep, degrees
    TC_RANGE = (0.06, 0.16)       # thickness/chord
    TAPER_RANGE = (0.2, 1.0)      # taper ratio
    TWIST_RANGE = (-5.0, 5.0)     # degrees washout

    def __init__(self, mach: float = 0.82, cl_required: float = 0.5) -> None:
        self.spec = RealVectorSpec(5, 0.0, 1.0)
        self.mach = mach
        self.cl_required = cl_required
        # success threshold found by a long reference run of the truth model
        self.target = None

    # -- physics pieces ------------------------------------------------------------
    def _decode(self, genome: np.ndarray) -> tuple[float, float, float, float, float]:
        ar = _denorm(float(genome[0]), *self.AR_RANGE)
        sweep = _denorm(float(genome[1]), *self.SWEEP_RANGE)
        tc = _denorm(float(genome[2]), *self.TC_RANGE)
        taper = _denorm(float(genome[3]), *self.TAPER_RANGE)
        twist = _denorm(float(genome[4]), *self.TWIST_RANGE)
        return ar, sweep, tc, taper, twist

    def _induced_drag(self, ar: float, taper: float, twist: float) -> float:
        # Oswald efficiency degrades away from taper ~0.4 and with twist
        e = 0.98 - 0.1 * (taper - 0.4) ** 2 - 0.003 * abs(twist)
        return self.cl_required**2 / (np.pi * ar * e)

    def _wave_drag(self, sweep: float, tc: float) -> float:
        # Korn-equation flavoured: drag-divergence Mach from sweep/thickness
        cos_s = np.cos(np.radians(sweep))
        m_dd = 0.95 / cos_s - tc / cos_s**2 - self.cl_required / (10.0 * cos_s**3)
        excess = self.mach - m_dd
        return 20.0 * max(0.0, excess) ** 4  # classic 4th-power rise

    def _viscous_drag(self, ar: float, tc: float, taper: float) -> float:
        wetted_factor = 1.0 + 1.8 * tc  # form factor
        # slender high-AR wings have slightly more wetted area per lift
        return 0.0055 * wetted_factor * (1.0 + 0.003 * ar) * (1.0 + 0.05 * (1 - taper))

    def _structure_penalty(self, ar: float, tc: float) -> float:
        # thin, high-aspect wings are structurally infeasible: soft penalty
        stress = ar / (tc * 100.0)
        return 0.002 * max(0.0, stress - 1.2) ** 2

    def _twist_loading(self, twist: float) -> float:
        # optimal washout near -2 degrees at this condition
        return 0.0004 * (twist + 2.0) ** 2

    # -- fidelities ---------------------------------------------------------------------
    def evaluate_at(self, genome: np.ndarray, fidelity: int) -> float:
        ar, sweep, tc, taper, twist = self._decode(genome)
        if fidelity == 2:
            return (
                self._induced_drag(ar, taper, twist)
                + self._wave_drag(sweep, tc)
                + self._viscous_drag(ar, tc, taper)
                + self._structure_penalty(ar, tc)
                + self._twist_loading(twist)
            )
        if fidelity == 1:
            # linearised wave drag: right trend, wrong curvature + bias
            cos_s = np.cos(np.radians(sweep))
            wave_lin = 0.004 * max(0.0, self.mach - 0.87 * cos_s)
            return (
                self._induced_drag(ar, taper, twist)
                + wave_lin
                + 1.1 * self._viscous_drag(ar, tc, taper)
                + 0.001
            )
        if fidelity == 0:
            # induced-drag-only panel method + constant compressibility guess
            return self._induced_drag(ar, taper, twist) + 0.008
        raise ValueError(f"fidelity {fidelity} out of range [0, 3)")
