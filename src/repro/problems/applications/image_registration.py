"""2-phase GA image registration (Chalermwat, El-Ghazawi & LeMoigne 2001).

The original registered LandSat Thematic Mapper scenes: "In its first
phase, the algorithm found a small set of good solutions using
low-resolution versions of the images.  Based on these candidate
low-resolution solutions, the algorithm used the full resolution image
data to refine the final registration results in the second phase."

We substitute a synthetic satellite-like scene: smoothed random fields have
the same broad autocorrelation structure that makes multi-resolution
registration work on real imagery.  The observed image is the reference
translated (and optionally noise-corrupted); the GA searches the 2-D shift
maximising normalised cross-correlation (NCC).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.genome import IntegerVectorSpec
from ...core.individual import Individual
from ...core.problem import Problem
from ...core.rng import ensure_rng

__all__ = ["synthetic_scene", "ImageRegistration", "TwoPhaseResult", "two_phase_register"]


def synthetic_scene(size: int = 128, seed: int = 0, smoothness: int = 8) -> np.ndarray:
    """Generate a smooth random field resembling a satellite band.

    White noise box-filtered ``smoothness`` times along both axes — cheap
    separable smoothing, no SciPy needed.
    """
    if size < 8:
        raise ValueError(f"scene size must be >= 8, got {size}")
    rng = ensure_rng(seed)
    img = rng.random((size, size))
    kernel = np.ones(5) / 5.0
    for _ in range(smoothness):
        img = np.apply_along_axis(lambda r: np.convolve(r, kernel, mode="same"), 1, img)
        img = np.apply_along_axis(lambda c: np.convolve(c, kernel, mode="same"), 0, img)
    img -= img.min()
    peak = img.max()
    return img / peak if peak > 0 else img


def _translate(img: np.ndarray, tx: int, ty: int) -> np.ndarray:
    """Integer-pixel translation with toroidal wrap (keeps NCC well-defined)."""
    return np.roll(np.roll(img, ty, axis=0), tx, axis=1)


def _ncc(a: np.ndarray, b: np.ndarray) -> float:
    """Normalised cross-correlation of two equal-shape images."""
    a = a - a.mean()
    b = b - b.mean()
    denom = np.sqrt((a * a).sum() * (b * b).sum())
    if denom == 0:
        return 0.0
    return float((a * b).sum() / denom)


def _downsample(img: np.ndarray, factor: int) -> np.ndarray:
    """Block-mean downsampling by ``factor`` (trims remainder rows/cols)."""
    h, w = img.shape
    h2, w2 = h - h % factor, w - w % factor
    view = img[:h2, :w2].reshape(h2 // factor, factor, w2 // factor, factor)
    return view.mean(axis=(1, 3))


class ImageRegistration(Problem):
    """Find the integer shift aligning ``observed`` to ``reference``.

    Genome: ``[tx, ty]`` in ``[-max_shift, max_shift]``.  Fitness: NCC of
    the observed image un-shifted by the candidate against the reference
    (maximise; 1.0 = perfect alignment for a noise-free pair).
    """

    def __init__(
        self,
        reference: np.ndarray,
        observed: np.ndarray,
        *,
        max_shift: int = 16,
        true_shift: tuple[int, int] | None = None,
    ) -> None:
        if reference.shape != observed.shape:
            raise ValueError("reference and observed images must share a shape")
        if max_shift < 1:
            raise ValueError(f"max_shift must be >= 1, got {max_shift}")
        self.reference = reference
        self.observed = observed
        self.max_shift = max_shift
        self.true_shift = true_shift
        self.spec = IntegerVectorSpec(2, -max_shift, max_shift)
        self.maximize = True
        self.target = 0.995 if true_shift is not None else None

    @classmethod
    def synthetic(
        cls,
        size: int = 128,
        shift: tuple[int, int] = (7, -4),
        *,
        noise: float = 0.02,
        max_shift: int = 16,
        seed: int = 0,
    ) -> "ImageRegistration":
        """Build a registration instance with a known ground-truth shift."""
        rng = ensure_rng(seed)
        ref = synthetic_scene(size, seed=seed)
        obs = _translate(ref, shift[0], shift[1])
        if noise > 0:
            obs = obs + rng.normal(0.0, noise, size=obs.shape)
        return cls(ref, obs, max_shift=max_shift, true_shift=shift)

    def evaluate(self, genome: np.ndarray) -> float:
        tx, ty = int(genome[0]), int(genome[1])
        undone = _translate(self.observed, -tx, -ty)
        return _ncc(undone, self.reference)

    def at_scale(self, factor: int) -> "ImageRegistration":
        """Low-resolution version of this instance (phase-1 problem).

        Shifts at scale ``factor`` are in coarse pixels: a coarse shift of
        s corresponds to ``s * factor`` full-resolution pixels.
        """
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        coarse = ImageRegistration(
            _downsample(self.reference, factor),
            _downsample(self.observed, factor),
            max_shift=max(1, self.max_shift // factor),
            true_shift=None,
        )
        return coarse


@dataclass
class TwoPhaseResult:
    """Outcome of the two-phase registration pipeline."""

    shift: tuple[int, int]
    ncc: float
    phase1_evaluations: int
    phase2_evaluations: int
    exact: bool  # equals ground truth (when known)

    @property
    def total_evaluations(self) -> int:
        return self.phase1_evaluations + self.phase2_evaluations


def two_phase_register(
    problem: ImageRegistration,
    *,
    factor: int = 4,
    candidates: int = 5,
    phase1_generations: int = 15,
    phase2_generations: int = 15,
    population: int = 40,
    seed: int = 0,
) -> TwoPhaseResult:
    """Chalermwat's 2-phase pipeline.

    Phase 1 runs a GA on the ``factor``-times downsampled pair; the best
    ``candidates`` coarse shifts (scaled up) seed phase 2's population on
    the full-resolution problem.
    """
    from ...core.config import GAConfig
    from ...core.engine import GenerationalEngine

    coarse = problem.at_scale(factor)
    eng1 = GenerationalEngine(
        coarse, GAConfig(population_size=population), seed=seed
    )
    eng1.run(phase1_generations)
    seeds = eng1.population.sorted()[:candidates]

    # seed phase 2 with scaled-up candidates plus random fill
    rng = ensure_rng(seed + 1)
    seeded: list[Individual] = []
    for cand in seeds:
        up = np.clip(
            cand.genome.astype(np.int64) * factor,
            -problem.max_shift,
            problem.max_shift,
        )
        seeded.append(Individual(genome=up, origin="phase1"))
    while len(seeded) < population:
        seeded.append(Individual(genome=problem.spec.sample(rng), origin="init"))

    eng2 = GenerationalEngine(
        problem, GAConfig(population_size=population), seed=seed + 2
    )
    eng2.initialize(seeded)
    res2 = eng2.run(phase2_generations)

    best = res2.best
    shift = (int(best.genome[0]), int(best.genome[1]))
    return TwoPhaseResult(
        shift=shift,
        ncc=res2.best_fitness,
        phase1_evaluations=eng1.state.evaluations,
        phase2_evaluations=eng2.state.evaluations,
        exact=(problem.true_shift is not None and shift == tuple(problem.true_shift)),
    )
