"""Autonomous photogrammetric camera-network design (Olague 2001).

"a system for placing cameras in order to satisfy a set of interrelated
and competing constrains for three-dimensional objects … taking into
account the imaging geometry, visibility, convergence angle and workspace
constraints."

Substitution: target points sit on/near the unit sphere; each camera is a
point on a viewing sphere of radius R parameterised by (azimuth,
elevation).  Reconstruction uncertainty of a 3-D point from multiple rays
falls as rays become mutually orthogonal (optimal convergence ≈ 90°);
visibility requires cameras above a minimum elevation (the workspace
floor) and separated from each other.  The fitness aggregates exactly
Olague's four competing criteria.
"""

from __future__ import annotations

import numpy as np

from ...core.genome import RealVectorSpec
from ...core.problem import Problem
from ...core.rng import ensure_rng

__all__ = ["CameraPlacement"]


class CameraPlacement(Problem):
    """Place ``n_cameras`` on a viewing sphere to observe target points.

    Genome: ``[az_1, el_1, az_2, el_2, …]`` normalised to [0, 1]; azimuth
    spans [0, 2π), elevation spans [floor, π/2].

    Fitness (minimised) = mean reconstruction uncertainty over targets
    + visibility penalty + clustering penalty.
    """

    def __init__(
        self,
        n_cameras: int = 4,
        n_targets: int = 30,
        *,
        radius: float = 3.0,
        elevation_floor: float = 0.1,   # radians above the horizon
        min_separation: float = 0.35,   # radians between cameras
        seed: int = 0,
    ) -> None:
        if n_cameras < 2:
            raise ValueError(f"need >= 2 cameras for triangulation, got {n_cameras}")
        rng = ensure_rng(seed)
        self.n_cameras = n_cameras
        self.radius = radius
        self.elevation_floor = elevation_floor
        self.min_separation = min_separation
        # random target cloud in the unit ball's upper hemisphere
        pts = rng.normal(size=(n_targets, 3))
        pts /= np.linalg.norm(pts, axis=1, keepdims=True)
        pts *= rng.uniform(0.5, 1.0, size=(n_targets, 1))
        pts[:, 2] = np.abs(pts[:, 2])
        self.targets = pts
        self.spec = RealVectorSpec(2 * n_cameras, 0.0, 1.0)
        self.maximize = False

    # -- geometry --------------------------------------------------------------------
    def camera_positions(self, genome: np.ndarray) -> np.ndarray:
        g = np.asarray(genome, dtype=float).reshape(self.n_cameras, 2)
        az = g[:, 0] * 2.0 * np.pi
        el = self.elevation_floor + g[:, 1] * (np.pi / 2.0 - self.elevation_floor)
        x = np.cos(el) * np.cos(az)
        y = np.cos(el) * np.sin(az)
        z = np.sin(el)
        return self.radius * np.stack([x, y, z], axis=1)

    def _uncertainty(self, cams: np.ndarray) -> float:
        """Mean triangulation uncertainty over targets.

        For each target, rays to all cameras; uncertainty of a pair decays
        with sin of the convergence angle (90° is ideal); the target's
        score is the best pair's, averaged over targets.
        """
        total = 0.0
        for t in self.targets:
            rays = cams - t[None, :]
            rays /= np.linalg.norm(rays, axis=1, keepdims=True)
            cosang = np.clip(rays @ rays.T, -1.0, 1.0)
            iu = np.triu_indices(self.n_cameras, 1)
            sin2 = 1.0 - cosang[iu] ** 2
            best = float(sin2.max())
            total += 1.0 / max(best, 1e-6)
        return total / self.targets.shape[0]

    def _visibility_penalty(self, cams: np.ndarray) -> float:
        """Targets should be in front of (not occluded by) the hemisphere rim.

        A target is poorly visible from a camera when the view ray grazes
        the horizon — approximate by penalising cameras whose elevation to
        any target dips below the workspace floor.
        """
        penalty = 0.0
        for c in cams:
            to_targets = self.targets - c[None, :]
            d = np.linalg.norm(to_targets, axis=1)
            # angle of the ray below the camera's local horizontal
            sin_drop = -to_targets[:, 2] / d
            worst = float(np.max(sin_drop))
            threshold = np.sin(np.pi / 2 - self.elevation_floor)
            penalty += max(0.0, worst - threshold) * 10.0
        return penalty

    def _separation_penalty(self, cams: np.ndarray) -> float:
        unit = cams / np.linalg.norm(cams, axis=1, keepdims=True)
        cosang = np.clip(unit @ unit.T, -1.0, 1.0)
        iu = np.triu_indices(self.n_cameras, 1)
        ang = np.arccos(cosang[iu])
        viol = np.maximum(0.0, self.min_separation - ang)
        return float(20.0 * (viol**2).sum())

    # -- Problem interface -----------------------------------------------------------------
    def evaluate(self, genome: np.ndarray) -> float:
        cams = self.camera_positions(genome)
        return (
            self._uncertainty(cams)
            + self._visibility_penalty(cams)
            + self._separation_penalty(cams)
        )

    def convergence_angles(self, genome: np.ndarray) -> np.ndarray:
        """Pairwise camera convergence angles (radians) — for inspection."""
        cams = self.camera_positions(genome)
        unit = cams / np.linalg.norm(cams, axis=1, keepdims=True)
        cosang = np.clip(unit @ unit.T, -1.0, 1.0)
        iu = np.triu_indices(self.n_cameras, 1)
        return np.arccos(cosang[iu])
