"""Very large-scale feature selection (Moser & Murty 2000).

The original selected features for hand-written-digit (OCR) classification
and showed the distributed GA "was capable of reduction of the problem
complexity significantly and scale very well according to very large-scale
problems".  We substitute a synthetic classification task with planted
informative features: ``n_features`` columns of which only
``n_informative`` carry class signal; the rest are noise.  Fitness of a
feature mask is nearest-centroid validation accuracy minus a per-feature
cost — so the optimum is a sparse mask over (mostly) informative features,
and accuracy degrades both with missing signal and with included noise,
exactly the trade-off structure of the OCR task.
"""

from __future__ import annotations

import numpy as np

from ...core.genome import BinarySpec
from ...core.problem import Problem
from ...core.rng import ensure_rng

__all__ = ["SyntheticClassification", "FeatureSelection"]


class SyntheticClassification:
    """Planted-signal classification dataset.

    ``n_informative`` features get class-dependent means (+/- ``separation``);
    the remainder are pure noise.  Split into train/validation halves.
    """

    def __init__(
        self,
        n_samples: int = 200,
        n_features: int = 200,
        n_informative: int = 20,
        n_classes: int = 2,
        *,
        separation: float = 1.0,
        noise: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_informative > n_features:
            raise ValueError("n_informative cannot exceed n_features")
        if n_classes < 2:
            raise ValueError(f"need >= 2 classes, got {n_classes}")
        rng = ensure_rng(seed)
        self.n_features = n_features
        self.n_classes = n_classes
        self.informative = np.sort(rng.choice(n_features, size=n_informative, replace=False))
        # class means: zero everywhere except informative columns
        means = np.zeros((n_classes, n_features))
        for c in range(n_classes):
            means[c, self.informative] = rng.normal(0.0, separation, size=n_informative)
        y = rng.integers(0, n_classes, size=n_samples)
        X = means[y] + rng.normal(0.0, noise, size=(n_samples, n_features))
        half = n_samples // 2
        self.X_train, self.y_train = X[:half], y[:half]
        self.X_val, self.y_val = X[half:], y[half:]

    def accuracy(self, mask: np.ndarray) -> float:
        """Nearest-centroid validation accuracy using ``mask``'s features."""
        cols = np.flatnonzero(mask)
        if cols.size == 0:
            return 1.0 / self.n_classes  # chance level
        Xt = self.X_train[:, cols]
        Xv = self.X_val[:, cols]
        centroids = np.stack(
            [
                Xt[self.y_train == c].mean(axis=0)
                if np.any(self.y_train == c)
                else np.zeros(cols.size)
                for c in range(self.n_classes)
            ]
        )
        d = ((Xv[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        pred = d.argmin(axis=1)
        return float((pred == self.y_val).mean())


class FeatureSelection(Problem):
    """Binary mask over features; maximise accuracy − cost·|mask|."""

    def __init__(
        self,
        dataset: SyntheticClassification,
        *,
        feature_cost: float = 1e-4,
        initial_density: float = 0.5,
    ) -> None:
        if feature_cost < 0:
            raise ValueError(f"feature_cost must be >= 0, got {feature_cost}")
        self.dataset = dataset
        self.feature_cost = feature_cost
        self.spec = BinarySpec(dataset.n_features, density=initial_density)
        self.maximize = True

    @classmethod
    def synthetic(
        cls,
        n_features: int = 200,
        n_informative: int = 20,
        *,
        n_samples: int = 200,
        seed: int = 0,
        feature_cost: float = 1e-4,
        initial_density: float = 0.5,
    ) -> "FeatureSelection":
        return cls(
            SyntheticClassification(
                n_samples=n_samples,
                n_features=n_features,
                n_informative=n_informative,
                seed=seed,
            ),
            feature_cost=feature_cost,
            initial_density=initial_density,
        )

    def evaluate(self, genome: np.ndarray) -> float:
        acc = self.dataset.accuracy(genome)
        return acc - self.feature_cost * float(genome.sum())

    def selected_count(self, genome: np.ndarray) -> int:
        return int(genome.sum())

    def informative_recall(self, genome: np.ndarray) -> float:
        """Fraction of planted informative features the mask recovered."""
        inf = self.dataset.informative
        return float(genome[inf].mean())
