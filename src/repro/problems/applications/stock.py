"""Neuro-genetic daily stock prediction (Kwon & Moon 2003).

"Traditional indicators of stock prediction are utilized to produce useful
input features of neural networks.  The genetic algorithm optimizes the
neural networks under a 2D encoding and crossover … A notable improvement
on the average buy-and-hold strategy was observed."

Substitution: a synthetic daily price series — geometric Brownian motion
plus a mean-reverting *predictable* component — stands in for the Korean
market data.  The predictable component is what a good network can exploit
to beat buy-and-hold; its amplitude controls task difficulty.  The network
is a one-hidden-layer tanh MLP whose weight matrix is evolved under the
2-D encoding (rows = hidden units), matching the paper's representation,
with :class:`~repro.core.operators.crossover.TwoDimensionalCrossover` as
the natural operator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.genome import RealVectorSpec
from ...core.problem import Problem
from ...core.rng import ensure_rng

__all__ = ["synthetic_prices", "technical_indicators", "StockPrediction", "TradingOutcome"]


def synthetic_prices(
    days: int = 600,
    *,
    drift: float = 0.0002,
    volatility: float = 0.015,
    signal_strength: float = 0.004,
    signal_period: int = 15,
    seed: int = 0,
) -> np.ndarray:
    """GBM price path with an exploitable mean-reverting component.

    The deterministic-ish oscillation of amplitude ``signal_strength``
    gives learning algorithms something real to find; with
    ``signal_strength=0`` the series is an efficient-market control where
    nothing should beat buy-and-hold in expectation.
    """
    if days < 50:
        raise ValueError(f"need >= 50 days, got {days}")
    rng = ensure_rng(seed)
    shocks = rng.normal(drift, volatility, size=days)
    t = np.arange(days)
    # slowly phase-drifting oscillation: predictable from recent history
    phase = 2.0 * np.pi * t / signal_period + 0.5 * np.sin(2 * np.pi * t / 97.0)
    signal = signal_strength * np.sin(phase)
    log_prices = np.cumsum(shocks + signal)
    return 100.0 * np.exp(log_prices - log_prices[0])


def technical_indicators(prices: np.ndarray, window: int = 20) -> np.ndarray:
    """Classic indicator matrix (one row per day, NaN-free after warmup).

    Columns: 1-day return, 5-day momentum, price/SMA5 − 1, price/SMA20 − 1,
    rolling volatility, RSI-like up-fraction, stochastic %K.
    """
    n = prices.shape[0]
    ret1 = np.zeros(n)
    ret1[1:] = prices[1:] / prices[:-1] - 1.0

    def sma(k: int) -> np.ndarray:
        out = np.empty(n)
        c = np.cumsum(np.insert(prices, 0, 0.0))
        for i in range(n):
            a = max(0, i - k + 1)
            out[i] = (c[i + 1] - c[a]) / (i + 1 - a)
        return out

    sma5, sma20 = sma(5), sma(20)
    mom5 = np.zeros(n)
    mom5[5:] = prices[5:] / prices[:-5] - 1.0
    vol = np.zeros(n)
    for i in range(n):
        a = max(0, i - window + 1)
        vol[i] = ret1[a : i + 1].std()
    up_frac = np.zeros(n)
    for i in range(n):
        a = max(0, i - window + 1)
        seg = ret1[a : i + 1]
        up_frac[i] = float((seg > 0).mean())
    stoch = np.zeros(n)
    for i in range(n):
        a = max(0, i - window + 1)
        lo, hi = prices[a : i + 1].min(), prices[a : i + 1].max()
        stoch[i] = 0.5 if hi == lo else (prices[i] - lo) / (hi - lo)
    feats = np.stack(
        [ret1, mom5, prices / sma5 - 1.0, prices / sma20 - 1.0, vol, up_frac, stoch],
        axis=1,
    )
    return feats


@dataclass
class TradingOutcome:
    """Return comparison for one weight vector on one span."""

    strategy_return: float
    buy_and_hold_return: float

    @property
    def excess(self) -> float:
        return self.strategy_return - self.buy_and_hold_return


class StockPrediction(Problem):
    """Evolve MLP weights that trade the synthetic market.

    Genome layout (2-D encoding): ``hidden x (n_features + 1)`` input
    weights+bias rows, flattened, followed by ``hidden + 1`` output
    weights+bias.  Network: tanh hidden layer, tanh output in (-1, 1)
    interpreted as position (long/short fraction).  Fitness = total return
    of the strategy over the training span (maximise).
    """

    def __init__(
        self,
        prices: np.ndarray | None = None,
        *,
        hidden: int = 6,
        train_fraction: float = 0.7,
        transaction_cost: float = 0.0005,
        seed: int = 0,
    ) -> None:
        if prices is None:
            prices = synthetic_prices(seed=seed)
        if not 0.1 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0.1, 1)")
        self.prices = np.asarray(prices, dtype=float)
        self.hidden = hidden
        self.transaction_cost = transaction_cost
        feats = technical_indicators(self.prices)
        warmup = 25
        self.features = feats[warmup:-1]  # predict the *next* day's return
        rets = self.prices[1:] / self.prices[:-1] - 1.0
        self.next_returns = rets[warmup:]
        n = self.features.shape[0]
        split = int(n * train_fraction)
        self._train = slice(0, split)
        self._test = slice(split, n)
        self.n_features = self.features.shape[1]
        self.rows = hidden
        self.cols = self.n_features + 1
        n_weights = self.rows * self.cols + hidden + 1
        self.spec = RealVectorSpec(n_weights, -3.0, 3.0)
        self.maximize = True

    # -- network ------------------------------------------------------------------------
    def _positions(self, genome: np.ndarray, span: slice) -> np.ndarray:
        W = genome[: self.rows * self.cols].reshape(self.rows, self.cols)
        rest = genome[self.rows * self.cols :]
        v, b_out = rest[: self.hidden], rest[self.hidden]
        X = self.features[span]
        h = np.tanh(X @ W[:, :-1].T + W[:, -1])
        return np.tanh(h @ v + b_out)  # position in [-1, 1]

    def _strategy_return(self, genome: np.ndarray, span: slice) -> float:
        pos = self._positions(genome, span)
        rets = self.next_returns[span]
        turnover = np.abs(np.diff(pos, prepend=0.0))
        daily = pos * rets - self.transaction_cost * turnover
        return float(np.exp(np.log1p(np.clip(daily, -0.99, None)).sum()) - 1.0)

    def buy_and_hold(self, span: slice | None = None) -> float:
        span = span if span is not None else self._train
        rets = self.next_returns[span]
        return float(np.exp(np.log1p(rets).sum()) - 1.0)

    # -- Problem interface ---------------------------------------------------------------
    def evaluate(self, genome: np.ndarray) -> float:
        return self._strategy_return(genome, self._train)

    def out_of_sample(self, genome: np.ndarray) -> TradingOutcome:
        """Honest held-out comparison against buy-and-hold."""
        return TradingOutcome(
            strategy_return=self._strategy_return(genome, self._test),
            buy_and_hold_return=self.buy_and_hold(self._test),
        )
