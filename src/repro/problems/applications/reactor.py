"""Nuclear reactor core design optimisation (Pereira & Lapa 2003).

"The optimization problem consisted of adjusting several reactor cell
parameters, such as dimensions, enrichment and materials, in order to
minimize the average peak-factor in a three-enrichment-zone reactor,
considering the restrictions on the average thermal flux, criticality and
sub-moderation."

Substitution: a one-group, one-dimensional slab-reactor *diffusion solver*
(finite differences + inverse power iteration) computes the flux shape and
effective multiplication factor k_eff for a 3-zone core.  It is a genuine
neutronics eigenvalue computation — tiny, but with the same objective
structure the original code had: flatter flux ↔ lower peaking factor, with
criticality and moderation constraints penalised.

Genome (normalised to [0, 1] per gene):
    [enrich_1, enrich_2, enrich_3, width_1, width_2, moderation]
Zone 3's width is the remainder of the core.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from ...core.genome import RealVectorSpec
from ...core.problem import Problem

__all__ = ["ReactorCoreDesign", "CoreSolution"]


@dataclass
class CoreSolution:
    """Full diffusion solution for one design."""

    k_eff: float
    flux: np.ndarray
    power: np.ndarray
    peaking_factor: float
    mean_flux: float


class ReactorCoreDesign(Problem):
    """Minimise power peaking factor subject to criticality & moderation.

    Fitness (minimised) = peaking + w_k·|k_eff − 1| + w_m·moderation-violation
    + w_f·flux-shortfall.  A perfectly flat critical core would score ~1.
    """

    #: physical ranges
    ENRICH_RANGE = (0.015, 0.05)    # U-235 fraction per zone
    MODERATION_RANGE = (1.0, 3.0)   # moderator/fuel ratio
    MIN_ZONE_FRACTION = 0.15        # no zone thinner than 15% of the core

    def __init__(
        self,
        *,
        core_length: float = 300.0,   # cm
        mesh_points: int = 60,
        target_mean_flux: float = 1.0,
        criticality_weight: float = 20.0,
        moderation_weight: float = 5.0,
        flux_weight: float = 2.0,
    ) -> None:
        if mesh_points < 12:
            raise ValueError(f"mesh_points must be >= 12, got {mesh_points}")
        self.core_length = core_length
        self.n = mesh_points
        self.h = core_length / (mesh_points + 1)
        self.target_mean_flux = target_mean_flux
        self.criticality_weight = criticality_weight
        self.moderation_weight = moderation_weight
        self.flux_weight = flux_weight
        self.spec = RealVectorSpec(6, 0.0, 1.0)
        self.maximize = False

    # -- decoding -----------------------------------------------------------------------
    def decode(self, genome: np.ndarray) -> dict[str, np.ndarray | float]:
        e_lo, e_hi = self.ENRICH_RANGE
        enrich = e_lo + np.asarray(genome[:3], dtype=float) * (e_hi - e_lo)
        # zone widths: map (w1, w2) to a simplex respecting minimum fractions
        f_min = self.MIN_ZONE_FRACTION
        free = 1.0 - 3 * f_min
        a = float(genome[3]) * free
        b = float(genome[4]) * (free - a)
        widths = np.array([f_min + a, f_min + b, f_min + (free - a - b)])
        m_lo, m_hi = self.MODERATION_RANGE
        moderation = m_lo + float(genome[5]) * (m_hi - m_lo)
        return {"enrichment": enrich, "widths": widths, "moderation": moderation}

    # -- cross sections -------------------------------------------------------------------
    def _materials(
        self, enrich: np.ndarray, moderation: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-zone (D, Σ_a, νΣ_f) from enrichment & moderator ratio.

        Linearised one-group constants: fission and absorption grow with
        enrichment; moderation trades absorption for slowing-down, with an
        *under-moderated* optimum (the sub-moderation restriction).
        """
        nu_sigma_f = 0.005 + 0.30 * enrich           # cm^-1
        sigma_a = 0.0105 + 0.11 * enrich + 0.0012 * (moderation - 2.0) ** 2
        d = np.full_like(enrich, 1.30) / np.sqrt(moderation / 2.0)
        return d, sigma_a, nu_sigma_f

    def _zone_of_mesh(self, widths: np.ndarray) -> np.ndarray:
        """Zone index (0/1/2) of each interior mesh point."""
        x = (np.arange(1, self.n + 1)) * self.h / self.core_length
        bounds = np.cumsum(widths)
        return np.searchsorted(bounds, x, side="right").clip(0, 2)

    # -- diffusion solve ---------------------------------------------------------------------
    def solve(self, genome: np.ndarray, *, tol: float = 1e-8, max_iter: int = 200) -> CoreSolution:
        """Inverse power iteration on the one-group diffusion operator."""
        params = self.decode(genome)
        d_z, sa_z, nsf_z = self._materials(params["enrichment"], params["moderation"])
        zones = self._zone_of_mesh(params["widths"])
        d = d_z[zones]
        sa = sa_z[zones]
        nsf = nsf_z[zones]
        h2 = self.h * self.h
        # build -d/dx (D d/dx) + Σa with harmonic-mean interface diffusion
        main = np.empty(self.n)
        lower = np.empty(self.n - 1)
        upper = np.empty(self.n - 1)
        d_ext = np.concatenate([[d[0]], d, [d[-1]]])
        for i in range(self.n):
            d_w = 2.0 * d_ext[i] * d_ext[i + 1] / (d_ext[i] + d_ext[i + 1])
            d_e = 2.0 * d_ext[i + 1] * d_ext[i + 2] / (d_ext[i + 1] + d_ext[i + 2])
            main[i] = (d_w + d_e) / h2 + sa[i]
            if i > 0:
                lower[i - 1] = -d_w / h2
            if i < self.n - 1:
                upper[i] = -d_e / h2
        A = np.diag(main) + np.diag(lower, -1) + np.diag(upper, 1)
        lu = lu_factor(A)
        flux = np.ones(self.n)
        k = 1.0
        for _ in range(max_iter):
            source = nsf * flux
            new_flux = lu_solve(lu, source / k)
            k_new = k * float(np.sum(nsf * new_flux) / np.sum(nsf * flux))
            new_flux /= np.abs(new_flux).max()
            if abs(k_new - k) < tol:
                k = k_new
                flux = new_flux
                break
            k, flux = k_new, new_flux
        flux = np.abs(flux)
        # normalise to the target mean flux (power level is a free scaling)
        mean = float(flux.mean())
        if mean > 0:
            flux = flux * (self.target_mean_flux / mean)
        power = nsf * flux
        mean_power = float(power.mean())
        peaking = float(power.max() / mean_power) if mean_power > 0 else float("inf")
        return CoreSolution(
            k_eff=float(k),
            flux=flux,
            power=power,
            peaking_factor=peaking,
            mean_flux=float(flux.mean()),
        )

    # -- Problem interface -------------------------------------------------------------------
    def evaluate(self, genome: np.ndarray) -> float:
        sol = self.solve(genome)
        params = self.decode(genome)
        penalty = self.criticality_weight * abs(sol.k_eff - 1.0)
        # sub-moderation restriction: stay below moderation 2.5 (penalise over)
        over = max(0.0, params["moderation"] - 2.5)
        penalty += self.moderation_weight * over**2
        shortfall = max(0.0, self.target_mean_flux - sol.mean_flux)
        penalty += self.flux_weight * shortfall
        return sol.peaking_factor + penalty
