"""Model-based spectral estimation of Doppler signals (Solano et al. 2000).

"an approach to implement, in real-time, a parametric spectral estimator
method using genetic algorithms … to find the optimum set of parameters
for the adaptive filter that minimises the error function for Doppler
ultrasound signals."

Substitution: the Doppler ultrasound return is synthesised as an
autoregressive (AR) process — the standard parametric model for Doppler
spectra — with known ground-truth coefficients.  The GA searches AR filter
coefficients minimising the one-step prediction error over the recorded
window; success is recovering a spectrum close to the truth.
"""

from __future__ import annotations

import numpy as np

from ...core.genome import RealVectorSpec
from ...core.problem import Problem
from ...core.rng import ensure_rng

__all__ = ["synthetic_doppler", "DopplerSpectralEstimation", "ar_spectrum"]


def synthetic_doppler(
    n_samples: int = 512,
    ar_coeffs: np.ndarray | None = None,
    *,
    noise: float = 0.05,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate an AR Doppler-like signal; returns (signal, true_coeffs).

    The default truth is a stable AR(4) with two resonances — a plausible
    two-component blood-flow spectrum.
    """
    rng = ensure_rng(seed)
    if ar_coeffs is None:
        # poles at radius .92/.85, angles ~0.6 and ~1.9 rad
        p1, a1 = 0.92, 0.6
        p2, a2 = 0.85, 1.9
        poly = np.poly(
            [
                p1 * np.exp(1j * a1),
                p1 * np.exp(-1j * a1),
                p2 * np.exp(1j * a2),
                p2 * np.exp(-1j * a2),
            ]
        ).real
        ar_coeffs = -poly[1:]  # x[t] = sum a_k x[t-k] + e
    a = np.asarray(ar_coeffs, dtype=float)
    order = a.shape[0]
    x = np.zeros(n_samples + order)
    e = rng.normal(0.0, 1.0, size=n_samples + order)
    for t in range(order, n_samples + order):
        x[t] = float(np.dot(a, x[t - order : t][::-1])) + e[t]
    signal = x[order:]
    signal = signal / signal.std()
    if noise > 0:
        signal = signal + rng.normal(0.0, noise, size=n_samples)
    return signal, a


def ar_spectrum(coeffs: np.ndarray, n_freqs: int = 256) -> np.ndarray:
    """Power spectral density of an AR model (unit innovation variance)."""
    a = np.asarray(coeffs, dtype=float)
    w = np.linspace(0.0, np.pi, n_freqs)
    k = np.arange(1, a.shape[0] + 1)
    denom = np.abs(1.0 - np.exp(-1j * np.outer(w, k)) @ a) ** 2
    return 1.0 / np.maximum(denom, 1e-12)


class DopplerSpectralEstimation(Problem):
    """Fit AR(order) coefficients to a Doppler window by prediction error.

    Fitness (minimised): mean squared one-step prediction error, plus a
    soft stability penalty on pole radii > 1 (unstable filters are
    physically meaningless estimators).
    """

    def __init__(
        self,
        signal: np.ndarray | None = None,
        order: int = 4,
        *,
        true_coeffs: np.ndarray | None = None,
        seed: int = 0,
    ) -> None:
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if signal is None:
            signal, true_coeffs = synthetic_doppler(seed=seed)
        self.signal = np.asarray(signal, dtype=float)
        if self.signal.shape[0] <= order + 8:
            raise ValueError("signal too short for the requested AR order")
        self.order = order
        self.true_coeffs = true_coeffs
        self.spec = RealVectorSpec(order, -2.0, 2.0)
        self.maximize = False
        # lag matrix: X[t] = [x[t-1] … x[t-order]]
        n = self.signal.shape[0]
        self._targets = self.signal[order:]
        self._lags = np.stack(
            [self.signal[order - k : n - k] for k in range(1, order + 1)], axis=1
        )
        if true_coeffs is not None:
            self.target = self.evaluate(np.asarray(true_coeffs)) * 1.05

    def evaluate(self, genome: np.ndarray) -> float:
        pred = self._lags @ genome
        mse = float(np.mean((self._targets - pred) ** 2))
        # stability: companion-matrix spectral radius must stay <= 1
        radius = self._spectral_radius(genome)
        penalty = 10.0 * max(0.0, radius - 1.0) ** 2
        return mse + penalty

    def _spectral_radius(self, coeffs: np.ndarray) -> float:
        order = self.order
        if order == 1:
            return abs(float(coeffs[0]))
        companion = np.zeros((order, order))
        companion[0, :] = coeffs
        companion[1:, :-1] = np.eye(order - 1)
        return float(np.abs(np.linalg.eigvals(companion)).max())

    def spectrum_error(self, genome: np.ndarray) -> float:
        """Log-spectral distance to the true model (if known)."""
        if self.true_coeffs is None:
            raise ValueError("instance has no ground-truth coefficients")
        s_true = ar_spectrum(self.true_coeffs)
        s_est = ar_spectrum(genome)
        return float(np.sqrt(np.mean((np.log(s_true) - np.log(s_est)) ** 2)))

    def least_squares_solution(self) -> np.ndarray:
        """Closed-form Yule-Walker/LS fit — the classical comparator the
        original paper's GA was racing in real time."""
        sol, *_ = np.linalg.lstsq(self._lags, self._targets, rcond=None)
        return sol
