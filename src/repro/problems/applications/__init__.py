"""Application workloads from the survey's §4, on synthetic substrates.

Each module documents its substitution (what the cited paper used → what
we generate → why the fitness landscape structure is preserved); the
mapping table lives in DESIGN.md.
"""

from .camera import CameraPlacement
from .doppler import DopplerSpectralEstimation, ar_spectrum, synthetic_doppler
from .feature_selection import FeatureSelection, SyntheticClassification
from .image_registration import (
    ImageRegistration,
    TwoPhaseResult,
    synthetic_scene,
    two_phase_register,
)
from .rule_mining import Rule, RuleDataset, RuleMining
from .reactor import CoreSolution, ReactorCoreDesign
from .stock import (
    StockPrediction,
    TradingOutcome,
    synthetic_prices,
    technical_indicators,
)
from .wing import TransonicWingDesign

__all__ = [
    "CameraPlacement",
    "DopplerSpectralEstimation",
    "synthetic_doppler",
    "ar_spectrum",
    "FeatureSelection",
    "SyntheticClassification",
    "ImageRegistration",
    "TwoPhaseResult",
    "synthetic_scene",
    "two_phase_register",
    "ReactorCoreDesign",
    "CoreSolution",
    "StockPrediction",
    "TradingOutcome",
    "synthetic_prices",
    "technical_indicators",
    "TransonicWingDesign",
    "RuleMining",
    "RuleDataset",
    "Rule",
]
