"""Multiobjective problems and Pareto utilities.

Substrate for the Specialized Island Model experiment (E8): Xiao &
Armstrong's SIM divides an EA into subEAs, "each responsible for optimizing
the subset of objective functions in the initial problem" — which requires
(a) problems exposing an objective *vector* and (b) scalarising adapters so
a plain GA engine can run on any objective subset.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..core.genome import GenomeSpec, RealVectorSpec
from ..core.problem import Problem

__all__ = [
    "MultiObjectiveProblem",
    "ScalarizedObjective",
    "dominates",
    "pareto_front",
    "hypervolume_2d",
    "SchafferF2",
    "FonsecaFleming",
    "ZDT1",
    "ZDT2",
    "ZDT3",
]


class MultiObjectiveProblem(abc.ABC):
    """A problem with ``n_objectives`` simultaneous minimisation goals."""

    spec: GenomeSpec
    n_objectives: int

    @abc.abstractmethod
    def evaluate_objectives(self, genome: np.ndarray) -> np.ndarray:
        """Objective vector (all minimised) for one genome."""

    @property
    def name(self) -> str:
        return type(self).__name__


class ScalarizedObjective(Problem):
    """Weighted-sum scalarisation of a :class:`MultiObjectiveProblem`.

    A subEA in the specialized island model optimises
    ``ScalarizedObjective(mo, weights)`` where ``weights`` selects its
    objective subset (e.g. ``[1, 0]`` = objective 0 only, ``[0.5, 0.5]`` =
    the full aggregate).
    """

    def __init__(self, mo: MultiObjectiveProblem, weights: Sequence[float]) -> None:
        w = np.asarray(weights, dtype=float)
        if w.shape != (mo.n_objectives,):
            raise ValueError(
                f"weights shape {w.shape} does not match {mo.n_objectives} objectives"
            )
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative and sum to > 0")
        self.mo = mo
        self.weights = w / w.sum()
        self.spec = mo.spec
        self.maximize = False

    def evaluate(self, genome: np.ndarray) -> float:
        return float(np.dot(self.weights, self.mo.evaluate_objectives(genome)))

    @property
    def name(self) -> str:
        return f"Scalarized({self.mo.name}, w={np.round(self.weights, 3).tolist()})"


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Pareto dominance for minimisation: ``a`` at least as good everywhere,
    strictly better somewhere."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b) and np.any(a < b))


def pareto_front(points: np.ndarray) -> np.ndarray:
    """Indices of non-dominated rows of ``points`` (minimisation)."""
    pts = np.asarray(points, dtype=float)
    n = pts.shape[0]
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            continue
        # anything dominated by i is dropped
        dominated = np.all(pts >= pts[i], axis=1) & np.any(pts > pts[i], axis=1)
        keep &= ~dominated
        keep[i] = True
    return np.flatnonzero(keep)


def hypervolume_2d(points: np.ndarray, reference: Sequence[float]) -> float:
    """Hypervolume (area dominated) of a 2-objective front w.r.t. ``reference``.

    Standard quality indicator for comparing SIM scenarios: larger is better.
    """
    pts = np.asarray(points, dtype=float)
    ref = np.asarray(reference, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError("hypervolume_2d requires (n, 2) points")
    front = pts[pareto_front(pts)]
    # clip to reference box and sort by first objective
    front = front[np.all(front <= ref, axis=1)]
    if front.shape[0] == 0:
        return 0.0
    front = front[np.argsort(front[:, 0])]
    hv = 0.0
    prev_f2 = ref[1]
    for f1, f2 in front:
        if f2 < prev_f2:
            hv += (ref[0] - f1) * (prev_f2 - f2)
            prev_f2 = f2
    return float(hv)


class SchafferF2(MultiObjectiveProblem):
    """Schaffer's classic 1-D bi-objective: f1 = x², f2 = (x-2)²."""

    n_objectives = 2

    def __init__(self) -> None:
        self.spec = RealVectorSpec(1, -10.0, 10.0)

    def evaluate_objectives(self, genome: np.ndarray) -> np.ndarray:
        x = float(genome[0])
        return np.array([x * x, (x - 2.0) ** 2])


class FonsecaFleming(MultiObjectiveProblem):
    """Fonseca–Fleming bi-objective with a concave Pareto front."""

    n_objectives = 2

    def __init__(self, dims: int = 3) -> None:
        self.spec = RealVectorSpec(dims, -4.0, 4.0)
        self._shift = 1.0 / np.sqrt(dims)

    def evaluate_objectives(self, genome: np.ndarray) -> np.ndarray:
        x = genome
        f1 = 1.0 - np.exp(-np.sum((x - self._shift) ** 2))
        f2 = 1.0 - np.exp(-np.sum((x + self._shift) ** 2))
        return np.array([f1, f2])


class _ZDT(MultiObjectiveProblem):
    """Shared ZDT scaffolding (Zitzler–Deb–Thiele test suite)."""

    n_objectives = 2

    def __init__(self, dims: int = 30) -> None:
        if dims < 2:
            raise ValueError(f"ZDT needs >= 2 dims, got {dims}")
        self.spec = RealVectorSpec(dims, 0.0, 1.0)

    def _g(self, x: np.ndarray) -> float:
        return 1.0 + 9.0 * float(np.mean(x[1:]))


class ZDT1(_ZDT):
    """Convex Pareto front: f2 = 1 - sqrt(f1) at g = 1."""

    def evaluate_objectives(self, genome: np.ndarray) -> np.ndarray:
        f1 = float(genome[0])
        g = self._g(genome)
        f2 = g * (1.0 - np.sqrt(f1 / g))
        return np.array([f1, f2])


class ZDT2(_ZDT):
    """Concave Pareto front: f2 = 1 - f1² at g = 1."""

    def evaluate_objectives(self, genome: np.ndarray) -> np.ndarray:
        f1 = float(genome[0])
        g = self._g(genome)
        f2 = g * (1.0 - (f1 / g) ** 2)
        return np.array([f1, f2])


class ZDT3(_ZDT):
    """Disconnected Pareto front (sine term)."""

    def evaluate_objectives(self, genome: np.ndarray) -> np.ndarray:
        f1 = float(genome[0])
        g = self._g(genome)
        r = f1 / g
        f2 = g * (1.0 - np.sqrt(r) - r * np.sin(10.0 * np.pi * f1))
        return np.array([f1, f2])
