"""Binary-string benchmark landscapes.

The problem spectrum Alba & Troya (2000) used to study migration policies —
"easy, deceptive, multimodal, NP-Complete, and epistatic search landscapes"
— starts here: OneMax (easy), concatenated deceptive traps (deceptive),
Royal Road (plateaued), NK landscapes (epistatic, tunable ruggedness),
P-PEAKS (multimodal).
"""

from __future__ import annotations

import numpy as np

from ..core.genome import BinarySpec
from ..core.problem import Problem
from ..core.rng import ensure_rng

__all__ = [
    "OneMax",
    "ZeroMax",
    "LeadingOnes",
    "DeceptiveTrap",
    "RoyalRoad",
    "NKLandscape",
    "PPeaks",
]


class OneMax(Problem):
    """Count of ones — the canonical *easy* GA problem."""

    def __init__(self, length: int = 100) -> None:
        self.spec = BinarySpec(length)
        self.maximize = True
        self.optimum = float(length)

    def evaluate(self, genome: np.ndarray) -> float:
        return float(np.count_nonzero(genome))

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        # valid binary genomes are 0/1, so a summed integer accumulator equals
        # count_nonzero exactly and skips its bool-mask intermediate; int16
        # is exact (row sums <= L <= 32767) and measurably faster than int32
        acc = np.int16 if genomes.shape[1] <= 32767 else np.int64
        return genomes.sum(axis=1, dtype=acc).astype(float)


class ZeroMax(Problem):
    """Count of zeros — used as a *minimisation-direction* control."""

    def __init__(self, length: int = 100) -> None:
        self.spec = BinarySpec(length)
        self.maximize = False
        self.optimum = 0.0

    def evaluate(self, genome: np.ndarray) -> float:
        return float(np.count_nonzero(genome))

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        # valid binary genomes are 0/1, so a summed integer accumulator equals
        # count_nonzero exactly and skips its bool-mask intermediate; int16
        # is exact (row sums <= L <= 32767) and measurably faster than int32
        acc = np.int16 if genomes.shape[1] <= 32767 else np.int64
        return genomes.sum(axis=1, dtype=acc).astype(float)


class LeadingOnes(Problem):
    """Length of the leading all-ones prefix; strongly sequential epistasis."""

    def __init__(self, length: int = 100) -> None:
        self.spec = BinarySpec(length)
        self.maximize = True
        self.optimum = float(length)

    def evaluate(self, genome: np.ndarray) -> float:
        zeros = np.flatnonzero(genome == 0)
        return float(zeros[0]) if zeros.size else float(genome.shape[0])

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        zeros = genomes == 0
        first = np.argmax(zeros, axis=1)  # 0 for all-ones rows, fixed below
        return np.where(zeros.any(axis=1), first, genomes.shape[1]).astype(float)


class DeceptiveTrap(Problem):
    """Concatenated k-bit fully deceptive trap functions (Goldberg).

    Each block of ``k`` bits scores ``k`` when all ones, else
    ``k - 1 - ones`` — so the gradient points *away* from the optimum.
    This is the workload for Cantú-Paz-style deme sizing (E6) and the
    punctuated-equilibria demonstration (E10): single panmictic populations
    get trapped; migrating demes recombine complementary blocks.
    """

    def __init__(self, blocks: int = 10, k: int = 4) -> None:
        if k < 2:
            raise ValueError(f"trap block size must be >= 2, got {k}")
        if blocks < 1:
            raise ValueError(f"need at least one block, got {blocks}")
        self.blocks = blocks
        self.k = k
        self.spec = BinarySpec(blocks * k)
        self.maximize = True
        self.optimum = float(blocks * k)

    def evaluate(self, genome: np.ndarray) -> float:
        ones = genome.reshape(self.blocks, self.k).sum(axis=1)
        scores = np.where(ones == self.k, float(self.k), self.k - 1.0 - ones)
        return float(scores.sum())

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        ones = genomes.reshape(len(genomes), self.blocks, self.k).sum(axis=2)
        scores = np.where(ones == self.k, float(self.k), self.k - 1.0 - ones)
        return scores.sum(axis=1)


class RoyalRoad(Problem):
    """Mitchell/Forrest/Holland Royal Road R1: reward complete schemata only."""

    def __init__(self, blocks: int = 8, block_size: int = 8) -> None:
        if blocks < 1 or block_size < 1:
            raise ValueError("blocks and block_size must be positive")
        self.blocks = blocks
        self.block_size = block_size
        self.spec = BinarySpec(blocks * block_size)
        self.maximize = True
        self.optimum = float(blocks * block_size)

    def evaluate(self, genome: np.ndarray) -> float:
        complete = genome.reshape(self.blocks, self.block_size).all(axis=1)
        return float(np.count_nonzero(complete) * self.block_size)

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        complete = genomes.reshape(len(genomes), self.blocks, self.block_size).all(axis=2)
        return (complete.sum(axis=1) * self.block_size).astype(float)


class NKLandscape(Problem):
    """Kauffman NK landscape: tunably *epistatic* fitness.

    Gene ``i`` interacts with ``K`` random other genes; each locus has a
    random contribution table.  ``K = 0`` is additive (easy); increasing
    ``K`` raises ruggedness.  Instances are deterministic given ``seed``.
    ``optimum`` is computed exactly for small ``n`` via exhaustive search
    (``n <= 20``), else left unknown.
    """

    def __init__(self, n: int = 20, k: int = 2, seed: int = 0, exact_optimum: bool | None = None) -> None:
        if not 0 <= k < n:
            raise ValueError(f"need 0 <= K < N, got N={n}, K={k}")
        self.n = n
        self.k = k
        self.spec = BinarySpec(n)
        self.maximize = True
        rng = ensure_rng(seed)
        # neighbours[i] = the K loci (besides i) feeding locus i's table
        self.neighbors = np.empty((n, k), dtype=np.int64)
        for i in range(n):
            choices = np.setdiff1d(np.arange(n), [i])
            self.neighbors[i] = rng.choice(choices, size=k, replace=False)
        # tables[i][pattern] with pattern = bits of (x_i, x_neighbors)
        self.tables = rng.random((n, 2 ** (k + 1)))
        self._powers = 2 ** np.arange(k + 1)[::-1]
        if exact_optimum is None:
            exact_optimum = n <= 16
        self.optimum = self._exhaustive_optimum() if exact_optimum else None

    def evaluate(self, genome: np.ndarray) -> float:
        g = np.asarray(genome, dtype=np.int64)
        # bit patterns per locus: own bit then neighbour bits, MSB-first
        own = g[:, None]
        nbr = g[self.neighbors]
        patterns = np.concatenate([own, nbr], axis=1) @ self._powers
        return float(self.tables[np.arange(self.n), patterns].mean())

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        g = np.asarray(genomes, dtype=np.int64)
        own = g[:, :, None]
        nbr = g[:, self.neighbors]  # (batch, n, k)
        patterns = np.concatenate([own, nbr], axis=2) @ self._powers
        return self.tables[np.arange(self.n)[None, :], patterns].mean(axis=1)

    def _exhaustive_optimum(self) -> float:
        """Vectorised exhaustive search over all 2^n strings (n <= ~16)."""
        count = 2 ** self.n
        codes = np.arange(count, dtype=np.int64)
        bits = (codes[:, None] >> np.arange(self.n)[None, :]) & 1  # (2^n, n)
        own = bits[:, :, None]
        nbr = bits[:, self.neighbors]  # (2^n, n, k)
        patterns = np.concatenate([own, nbr], axis=2) @ self._powers  # (2^n, n)
        contrib = self.tables[np.arange(self.n)[None, :], patterns]
        return float(contrib.mean(axis=1).max())


class PPeaks(Problem):
    """P-PEAKS multimodal generator (Kennedy & Spears; used by Alba & Troya).

    ``p`` random bit strings are peaks; the fitness of ``x`` is the maximal
    proximity (in normalised Hamming similarity) to any peak.  Many global
    optima, heavily multimodal.
    """

    def __init__(self, p: int = 100, length: int = 100, seed: int = 0) -> None:
        if p < 1:
            raise ValueError(f"need at least one peak, got {p}")
        self.spec = BinarySpec(length)
        self.maximize = True
        self.optimum = 1.0
        rng = ensure_rng(seed)
        self.peaks = rng.integers(0, 2, size=(p, length), dtype=np.int8)

    def evaluate(self, genome: np.ndarray) -> float:
        same = (self.peaks == genome[None, :]).sum(axis=1)
        return float(same.max() / self.spec.length)

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        # (batch, peaks, length) agreement counts; exact integer arithmetic
        same = (genomes[:, None, :] == self.peaks[None, :, :]).sum(axis=2)
        return same.max(axis=1) / self.spec.length
