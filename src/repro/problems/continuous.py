"""Continuous (real-vector) benchmark functions.

The classic numerical-function-optimisation suite the PGA-as-function-
optimizer lineage (Mühlenbein 1991, Tanese 1989) evaluated on: sphere,
Rastrigin, Ackley, Griewank, Schwefel, Rosenbrock.  All are formulated as
*minimisation* with known optimum 0 at a known point, matching the usual
benchmark conventions.
"""

from __future__ import annotations

import numpy as np

from ..core.genome import RealVectorSpec
from ..core.problem import Problem

__all__ = [
    "Sphere",
    "Rastrigin",
    "Ackley",
    "Griewank",
    "Schwefel",
    "Rosenbrock",
    "Weierstrass",
]


class _ContinuousBenchmark(Problem):
    """Shared scaffolding: box-bounded minimisation with optimum 0."""

    maximize = False
    optimum = 0.0

    def __init__(self, dims: int, lower: float, upper: float, target: float = 1e-4) -> None:
        self.spec = RealVectorSpec(dims, lower, upper)
        self.target = target


class Sphere(_ContinuousBenchmark):
    """f(x) = sum x_i^2 — unimodal, separable; the *easy* continuous case."""

    def __init__(self, dims: int = 30, target: float = 1e-4) -> None:
        super().__init__(dims, -5.12, 5.12, target)

    def evaluate(self, genome: np.ndarray) -> float:
        return float(np.sum(genome * genome))

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        return np.sum(genomes * genomes, axis=1)


class Rastrigin(_ContinuousBenchmark):
    """Highly multimodal with a regular lattice of local minima."""

    def __init__(self, dims: int = 30, target: float = 1e-2) -> None:
        super().__init__(dims, -5.12, 5.12, target)

    def evaluate(self, genome: np.ndarray) -> float:
        x = genome
        return float(10.0 * x.size + np.sum(x * x - 10.0 * np.cos(2.0 * np.pi * x)))

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        x = genomes
        return 10.0 * x.shape[1] + np.sum(
            x * x - 10.0 * np.cos(2.0 * np.pi * x), axis=1
        )


class Ackley(_ContinuousBenchmark):
    """Nearly flat outer region, single deep funnel at the origin."""

    def __init__(self, dims: int = 30, target: float = 1e-2) -> None:
        super().__init__(dims, -32.768, 32.768, target)

    def evaluate(self, genome: np.ndarray) -> float:
        x = genome
        n = x.size
        s1 = np.sqrt(np.sum(x * x) / n)
        s2 = np.sum(np.cos(2.0 * np.pi * x)) / n
        return float(20.0 + np.e - 20.0 * np.exp(-0.2 * s1) - np.exp(s2))

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        x = genomes
        n = x.shape[1]
        s1 = np.sqrt(np.sum(x * x, axis=1) / n)
        s2 = np.sum(np.cos(2.0 * np.pi * x), axis=1) / n
        return 20.0 + np.e - 20.0 * np.exp(-0.2 * s1) - np.exp(s2)


class Griewank(_ContinuousBenchmark):
    """Product term introduces weak, wide-range epistasis."""

    def __init__(self, dims: int = 30, target: float = 1e-2) -> None:
        super().__init__(dims, -600.0, 600.0, target)

    def evaluate(self, genome: np.ndarray) -> float:
        x = genome
        idx = np.arange(1, x.size + 1, dtype=float)
        return float(
            1.0 + np.sum(x * x) / 4000.0 - np.prod(np.cos(x / np.sqrt(idx)))
        )

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        x = genomes
        idx = np.arange(1, x.shape[1] + 1, dtype=float)
        return (
            1.0
            + np.sum(x * x, axis=1) / 4000.0
            - np.prod(np.cos(x / np.sqrt(idx)), axis=1)
        )


class Schwefel(_ContinuousBenchmark):
    """Deceptive: the global optimum is far from the second-best region.

    Shifted so the optimum value is 0 at x_i = 420.9687.
    """

    def __init__(self, dims: int = 30, target: float = 1e-1) -> None:
        super().__init__(dims, -500.0, 500.0, target)

    def evaluate(self, genome: np.ndarray) -> float:
        x = genome
        return float(
            418.9828872724339 * x.size - np.sum(x * np.sin(np.sqrt(np.abs(x))))
        )

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        x = genomes
        return 418.9828872724339 * x.shape[1] - np.sum(
            x * np.sin(np.sqrt(np.abs(x))), axis=1
        )


class Rosenbrock(_ContinuousBenchmark):
    """The banana valley: unimodal but ill-conditioned and non-separable."""

    def __init__(self, dims: int = 30, target: float = 1e-1) -> None:
        super().__init__(dims, -2.048, 2.048, target)

    def evaluate(self, genome: np.ndarray) -> float:
        x = genome
        return float(
            np.sum(100.0 * (x[1:] - x[:-1] ** 2) ** 2 + (1.0 - x[:-1]) ** 2)
        )

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        x = genomes
        return np.sum(
            100.0 * (x[:, 1:] - x[:, :-1] ** 2) ** 2 + (1.0 - x[:, :-1]) ** 2, axis=1
        )


class Weierstrass(_ContinuousBenchmark):
    """Continuous everywhere, differentiable nowhere; fractal ruggedness."""

    def __init__(self, dims: int = 10, a: float = 0.5, b: float = 3.0, kmax: int = 20,
                 target: float = 1e-2) -> None:
        super().__init__(dims, -0.5, 0.5, target)
        k = np.arange(kmax + 1)
        self._ak = a ** k
        self._bk = b ** k
        # constant so that f(0) = 0
        self._shift = float(np.sum(self._ak * np.cos(np.pi * self._bk)))

    def evaluate(self, genome: np.ndarray) -> float:
        x = genome[:, None]  # (n, 1) against (kmax+1,) tables
        inner = np.sum(self._ak * np.cos(2.0 * np.pi * self._bk * (x + 0.5)), axis=1)
        return float(np.sum(inner) - x.shape[0] * self._shift)

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        x = genomes[:, :, None]  # (batch, n, 1) against (kmax+1,) tables
        inner = np.sum(self._ak * np.cos(2.0 * np.pi * self._bk * (x + 0.5)), axis=2)
        return np.sum(inner, axis=1) - genomes.shape[1] * self._shift
