"""Multi-fidelity problems: one objective, several models of it.

Sefrioui & Périaux's Hierarchical GA "allowed mix of a simple and complex
models, but achieved the same quality as reached by only complex models …
three times faster".  That requires problems that expose the *same*
objective at several fidelities with different evaluation costs — high
fidelity is trustworthy and slow, low fidelity is biased/noisy and cheap.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..core.genome import GenomeSpec
from ..core.problem import Problem

__all__ = ["MultiFidelityProblem", "FidelityView"]


class MultiFidelityProblem(abc.ABC):
    """An objective computable at fidelities ``0`` (cheapest) … ``n-1`` (truth).

    Attributes
    ----------
    costs:
        Relative evaluation cost per fidelity (e.g. ``[1, 8, 64]``); used
    by experiments to charge cost-adjusted budgets.
    """

    spec: GenomeSpec
    maximize: bool = False
    costs: Sequence[float] = (1.0,)
    optimum: float | None = None
    target: float | None = None

    @property
    def n_fidelities(self) -> int:
        return len(self.costs)

    @abc.abstractmethod
    def evaluate_at(self, genome: np.ndarray, fidelity: int) -> float:
        """Objective under model ``fidelity`` (higher = more faithful)."""

    def highest_fidelity(self) -> int:
        return self.n_fidelities - 1

    def view(self, fidelity: int) -> "FidelityView":
        """A plain :class:`Problem` evaluating at one fixed fidelity."""
        return FidelityView(self, fidelity)

    @property
    def name(self) -> str:
        return type(self).__name__


class FidelityView(Problem):
    """Adapter exposing one fidelity of a multi-fidelity problem."""

    def __init__(self, mf: MultiFidelityProblem, fidelity: int) -> None:
        if not 0 <= fidelity < mf.n_fidelities:
            raise ValueError(
                f"fidelity {fidelity} out of range [0, {mf.n_fidelities})"
            )
        self.mf = mf
        self.fidelity = fidelity
        self.spec = mf.spec
        self.maximize = mf.maximize
        # success thresholds only make sense at the truth model
        if fidelity == mf.highest_fidelity():
            self.optimum = mf.optimum
            self.target = mf.target
        else:
            self.optimum = None
            self.target = None

    def evaluate(self, genome: np.ndarray) -> float:
        return self.mf.evaluate_at(genome, self.fidelity)

    @property
    def cost(self) -> float:
        """Relative cost of one evaluation at this fidelity."""
        return float(self.mf.costs[self.fidelity])

    @property
    def name(self) -> str:
        return f"{self.mf.name}@f{self.fidelity}"
