"""Population-sizing theory (the Cantú-Paz / Harik lineage).

Cantú-Paz's dissertation — the survey's flagship theory citation — builds
on the *gambler's ruin* population-sizing model (Harik, Cantú-Paz, Goldberg
& Miller 1997): a building block wins its selection tournaments like a
biased random walk, so the population needed to get a target success
probability has a closed form.  These estimators let experiments pick
principled sizes instead of folklore constants, and E6's "accurate
population sizing" claim can be checked against them.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "gamblers_ruin_size",
    "trap_signal_to_noise",
    "deme_size_for_success",
    "collateral_noise",
]


def trap_signal_to_noise(k: int) -> tuple[float, float]:
    """(signal d, per-block noise variance) of a k-bit deceptive trap.

    Signal: fitness gap between the best (all ones, k) and the competing
    attractor (all zeros, k-1) — d = 1.  Noise: variance of one block's
    fitness over uniform random strings.
    """
    if k < 2:
        raise ValueError(f"trap size must be >= 2, got {k}")
    # enumerate the block's fitness distribution over #ones ~ Binomial(k, .5)
    ones = np.arange(k + 1)
    probs = np.array([float(math.comb(k, int(o))) for o in ones]) / 2**k
    fitness = np.where(ones == k, float(k), k - 1.0 - ones)
    mean = float(np.sum(probs * fitness))
    var = float(np.sum(probs * (fitness - mean) ** 2))
    return 1.0, var


def collateral_noise(block_variance: float, n_blocks: int) -> float:
    """Std-dev of the fitness noise a single block competes against:
    sqrt((m - 1) sigma_bb^2) for m concatenated blocks."""
    if n_blocks < 1:
        raise ValueError(f"need >= 1 block, got {n_blocks}")
    if block_variance < 0:
        raise ValueError("variance must be >= 0")
    return float(np.sqrt(max(0, n_blocks - 1) * block_variance))


def gamblers_ruin_size(
    k: int,
    n_blocks: int,
    *,
    success_probability: float = 0.98,
    signal: float | None = None,
) -> int:
    """Gambler's-ruin population size for a concatenated k-trap.

    ``n = -2^(k-1) ln(alpha) sigma_bb sqrt(pi (m-1)) / d`` with
    ``alpha = 1 - P_success`` (Harik et al. 1997, eq. for the one-block
    success probability).  Returns a whole population size (rounded up,
    minimum 4).
    """
    if not 0.0 < success_probability < 1.0:
        raise ValueError("success probability must be in (0, 1)")
    d, var = trap_signal_to_noise(k)
    if signal is not None:
        d = signal
    alpha = 1.0 - success_probability
    sigma_bb = np.sqrt(var)
    m = max(2, n_blocks)
    n = -(2 ** (k - 1)) * np.log(alpha) * sigma_bb * np.sqrt(np.pi * (m - 1)) / d
    return max(4, int(np.ceil(n)))


def deme_size_for_success(
    k: int,
    n_blocks: int,
    n_demes: int,
    *,
    success_probability: float = 0.98,
) -> int:
    """Cantú-Paz's headline design rule, simplified: connected demes share
    building blocks through migration, so the *per-deme* population for the
    same overall success is roughly the panmictic requirement divided by
    the deme count, floored at a mixing-viable minimum."""
    if n_demes < 1:
        raise ValueError(f"need >= 1 deme, got {n_demes}")
    total = gamblers_ruin_size(
        k, n_blocks, success_probability=success_probability
    )
    return max(4, int(np.ceil(total / n_demes)))
