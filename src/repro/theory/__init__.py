"""Approximation theories (the survey's §6 forecast, implemented).

Closed-form models of takeover time, population sizing and parallel-machine
performance, so measured behaviour (E2, E5, E6) can be checked against
prediction — "approximations … based on a population size, problem
difficulty, topology, time bounding, parallel computer parameters".
"""

from .parallel_models import (
    island_epoch_time,
    island_speedup_model,
    masterslave_generation_time,
    masterslave_speedup_model,
    optimal_worker_count,
)
from .sizing import (
    collateral_noise,
    deme_size_for_success,
    gamblers_ruin_size,
    trap_signal_to_noise,
)
from .takeover import (
    cellular_takeover_bound,
    logistic_growth,
    panmictic_tournament_takeover,
    predicted_growth_curve,
    ring_takeover,
)

__all__ = [
    "logistic_growth",
    "panmictic_tournament_takeover",
    "cellular_takeover_bound",
    "ring_takeover",
    "predicted_growth_curve",
    "gamblers_ruin_size",
    "trap_signal_to_noise",
    "deme_size_for_success",
    "collateral_noise",
    "masterslave_generation_time",
    "optimal_worker_count",
    "masterslave_speedup_model",
    "island_epoch_time",
    "island_speedup_model",
]
