"""Analytic takeover-time models.

The survey's §6 forecast: "approximations and approximation theories based
on a population size, problem difficulty, topology, time bounding, parallel
computer parameters are among the most important and useful ones."  This
module provides the classic closed forms the selection-pressure literature
(Goldberg & Deb 1991; Sarma & De Jong; Giacobini et al.) uses, so
experiments can compare *measured* growth curves against *predicted* ones.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "logistic_growth",
    "panmictic_tournament_takeover",
    "cellular_takeover_bound",
    "ring_takeover",
    "predicted_growth_curve",
]


def logistic_growth(t: np.ndarray | float, rate: float, n: int, p0: float | None = None):
    """Goldberg–Deb logistic growth model of best-individual proportion.

    ``P(t) = 1 / (1 + (1/P0 - 1) e^{-rate t})`` — the standard panmictic
    takeover model.  ``p0`` defaults to ``1/n`` (a single seeded copy).
    """
    if n < 1:
        raise ValueError(f"population must be >= 1, got {n}")
    if rate <= 0:
        raise ValueError(f"growth rate must be positive, got {rate}")
    p0 = p0 if p0 is not None else 1.0 / n
    if not 0 < p0 <= 1:
        raise ValueError(f"p0 must be in (0, 1], got {p0}")
    t = np.asarray(t, dtype=float)
    return 1.0 / (1.0 + (1.0 / p0 - 1.0) * np.exp(-rate * t))


def panmictic_tournament_takeover(n: int, tournament: int = 2) -> float:
    """Expected takeover time (generations) of k-tournament in a panmictic
    population of ``n`` (Goldberg & Deb 1991 approximation).

    ``t* ≈ (ln n + ln ln n) / ln k`` for k >= 2.
    """
    if n < 2:
        raise ValueError(f"population must be >= 2, got {n}")
    if tournament < 2:
        raise ValueError(f"tournament size must be >= 2, got {tournament}")
    return (np.log(n) + np.log(np.log(n))) / np.log(tournament)


def cellular_takeover_bound(rows: int, cols: int, *, radius: float = 1.0) -> float:
    """Lower bound on synchronous cellular takeover: information travels at
    most ``radius`` grid steps per sweep, so takeover needs at least the
    grid's maximal toroidal Manhattan distance / radius sweeps.

    For best-wins von Neumann selection this bound is *tight* (our E5
    measurement equals it) — diffusion, not selection noise, is the clock.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    max_dist = rows // 2 + cols // 2  # toroidal Manhattan eccentricity
    return max_dist / radius


def ring_takeover(n_demes: int, migration_interval: int) -> float:
    """Epochs for the best individual to reach every deme on a
    unidirectional ring with elitist migration: one hop per migration event,
    ``n-1`` hops to cover the ring."""
    if n_demes < 1:
        raise ValueError(f"need >= 1 deme, got {n_demes}")
    if migration_interval < 1:
        raise ValueError(f"interval must be >= 1, got {migration_interval}")
    return (n_demes - 1) * migration_interval


def predicted_growth_curve(
    steps: int, rate: float, n: int, p0: float | None = None
) -> np.ndarray:
    """Convenience: the logistic model sampled at integer steps 0..steps."""
    return logistic_growth(np.arange(steps + 1), rate, n, p0)
