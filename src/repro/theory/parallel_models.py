"""Analytic performance models of the parallel machines themselves.

Closed-form predictions for the quantities the simulated cluster measures:
master-slave generation makespan and its optimal worker count (Cantú-Paz's
square-root rule), synchronous-island epoch time, and Amdahl-style speedup
with explicit communication terms.  E2/E9-style measurements can be checked
against these (tests do exactly that), giving the "theory vs experiment"
loop the survey's §6 calls for.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "masterslave_generation_time",
    "optimal_worker_count",
    "masterslave_speedup_model",
    "island_epoch_time",
    "island_speedup_model",
]


def masterslave_generation_time(
    population: int,
    workers: int,
    eval_cost: float,
    comm_cost: float,
    *,
    worker_speed: float = 1.0,
) -> float:
    """Predicted makespan of one farmed generation.

    ``T = workers * Tc + ceil(n / workers) * Tf / speed`` — each worker costs
    one round-trip set-up ``Tc`` (serialised at the master) plus its share
    of evaluations.  The classic model behind Cantú-Paz's optimal-worker
    analysis.
    """
    if population < 0 or workers < 1:
        raise ValueError("population must be >= 0 and workers >= 1")
    if eval_cost < 0 or comm_cost < 0 or worker_speed <= 0:
        raise ValueError("costs must be >= 0 and speed positive")
    share = int(np.ceil(population / workers))
    return workers * comm_cost + share * eval_cost / worker_speed


def optimal_worker_count(population: int, eval_cost: float, comm_cost: float) -> float:
    """Cantú-Paz's square-root rule: ``S* = sqrt(n Tf / Tc)``.

    Beyond this worker count the per-worker communication term dominates
    the shrinking compute share and the makespan *rises* — the E2
    saturation knee in closed form.
    """
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    if eval_cost <= 0 or comm_cost <= 0:
        raise ValueError("costs must be positive")
    return float(np.sqrt(population * eval_cost / comm_cost))


def masterslave_speedup_model(
    population: int, workers: int, eval_cost: float, comm_cost: float
) -> float:
    """Predicted speedup of the farm over 1-worker execution."""
    t1 = masterslave_generation_time(population, 1, eval_cost, comm_cost)
    tp = masterslave_generation_time(population, workers, eval_cost, comm_cost)
    return t1 / tp


def island_epoch_time(
    deme_population: int,
    eval_cost: float,
    *,
    slowest_speed: float = 1.0,
    migration_cost: float = 0.0,
) -> float:
    """Predicted barrier-synchronised island epoch time: the slowest node's
    compute plus the migration exchange."""
    if deme_population < 0:
        raise ValueError("deme population must be >= 0")
    if slowest_speed <= 0:
        raise ValueError("speed must be positive")
    return deme_population * eval_cost / slowest_speed + migration_cost


def island_speedup_model(
    total_population: int,
    n_islands: int,
    eval_cost: float,
    *,
    migration_cost: float = 0.0,
    evaluations_ratio: float = 1.0,
) -> float:
    """Predicted time-to-solution speedup of n islands over panmictic.

    ``evaluations_ratio`` is the algorithmic term: (panmictic evaluations to
    solution) / (island total evaluations to solution).  Ratios above 1 —
    common on deceptive landscapes (E3) — are exactly what makes measured
    speedup super-linear: ``S = n * evaluations_ratio`` before
    communication overhead.
    """
    if n_islands < 1:
        raise ValueError(f"need >= 1 island, got {n_islands}")
    if evaluations_ratio <= 0:
        raise ValueError("evaluations ratio must be positive")
    per_deme = max(1, total_population // n_islands)
    t_pan = total_population * eval_cost
    t_island = per_deme * eval_cost / evaluations_ratio + migration_cost
    return t_pan / t_island
