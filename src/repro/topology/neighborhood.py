"""Cellular (fine-grained) neighbourhood structures.

In a cellular GA every individual sits on a grid cell and interacts only
with a small local neighbourhood; overlapping neighbourhoods propagate good
genes by diffusion (Manderick & Spiessens 1989).  These shapes parameterise
:class:`repro.parallel.cellular.CellularGA` and the Giacobini selection-
pressure experiment (E5).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "Neighborhood",
    "VonNeumannNeighborhood",
    "MooreNeighborhood",
    "LinearNeighborhood",
    "CompactNeighborhood",
]


class Neighborhood(abc.ABC):
    """Relative offsets of a cell's neighbours on a toroidal grid."""

    @property
    @abc.abstractmethod
    def offsets(self) -> list[tuple[int, int]]:
        """(drow, dcol) offsets, excluding (0, 0)."""

    def neighbors(self, row: int, col: int, rows: int, cols: int) -> list[tuple[int, int]]:
        """Toroidally wrapped neighbour coordinates of ``(row, col)``."""
        return [((row + dr) % rows, (col + dc) % cols) for dr, dc in self.offsets]

    def neighbor_indices(self, idx: int, rows: int, cols: int) -> list[int]:
        """Flat-index version for grid stored row-major."""
        r, c = divmod(idx, cols)
        return [rr * cols + cc for rr, cc in self.neighbors(r, c, rows, cols)]

    @property
    def size(self) -> int:
        return len(self.offsets)

    @property
    def radius(self) -> float:
        """Mean displacement — the knob controlling diffusion speed."""
        d = np.asarray(self.offsets, dtype=float)
        return float(np.sqrt((d * d).sum(axis=1)).mean())

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Neighborhood", "").lower()


class VonNeumannNeighborhood(Neighborhood):
    """N/S/E/W — the classic 'linear 5' (minus centre) cGA neighbourhood."""

    @property
    def offsets(self) -> list[tuple[int, int]]:
        return [(-1, 0), (1, 0), (0, -1), (0, 1)]


class MooreNeighborhood(Neighborhood):
    """All 8 surrounding cells ('compact 9' minus centre)."""

    @property
    def offsets(self) -> list[tuple[int, int]]:
        return [
            (dr, dc)
            for dr in (-1, 0, 1)
            for dc in (-1, 0, 1)
            if (dr, dc) != (0, 0)
        ]


class LinearNeighborhood(Neighborhood):
    """L cells along each axis arm ('linear 2L+1'-style)."""

    def __init__(self, arm: int = 2) -> None:
        if arm < 1:
            raise ValueError(f"arm must be >= 1, got {arm}")
        self.arm = arm

    @property
    def offsets(self) -> list[tuple[int, int]]:
        out: list[tuple[int, int]] = []
        for d in range(1, self.arm + 1):
            out.extend([(-d, 0), (d, 0), (0, -d), (0, d)])
        return out


class CompactNeighborhood(Neighborhood):
    """All cells within Chebyshev distance ``radius`` (square block)."""

    def __init__(self, radius: int = 2) -> None:
        if radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        self.block = radius

    @property
    def offsets(self) -> list[tuple[int, int]]:
        r = self.block
        return [
            (dr, dc)
            for dr in range(-r, r + 1)
            for dc in range(-r, r + 1)
            if (dr, dc) != (0, 0)
        ]
