"""Static deme-interconnection topologies.

"Common underlying network topologies for parallel genetic algorithms have
been multi-grids (2-D), cubes, hybercube (4-D), various meshes, toruses,
pipelines, bi-directional and uni-directional rings." — survey §3.2.

A :class:`Topology` is a directed graph over deme indices ``0..n-1``:
``neighbors_out(i)`` are the demes ``i`` *sends* migrants to.  Cantú-Paz's
finding that "fully connected topologies" converge fastest (E6) is a
statement about these graphs' diameters/degrees.
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.rng import ensure_rng

__all__ = [
    "Topology",
    "RingTopology",
    "BidirectionalRingTopology",
    "CompleteTopology",
    "StarTopology",
    "GridTopology",
    "TorusTopology",
    "HypercubeTopology",
    "RandomRegularTopology",
    "IsolatedTopology",
    "PipelineTopology",
    "topology_by_name",
]


class Topology(abc.ABC):
    """Directed migration graph over ``size`` demes."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"topology size must be >= 1, got {size}")
        self.size = size

    @abc.abstractmethod
    def neighbors_out(self, i: int) -> list[int]:
        """Demes that deme ``i`` sends migrants to."""

    def neighbors_in(self, i: int) -> list[int]:
        """Demes that send migrants to deme ``i`` (derived; override for speed)."""
        return [j for j in range(self.size) if i in self.neighbors_out(j)]

    def _check(self, i: int) -> None:
        if not 0 <= i < self.size:
            raise IndexError(f"deme index {i} out of range [0, {self.size})")

    # -- graph-theoretic characteristics ---------------------------------------
    def degree(self, i: int) -> int:
        return len(self.neighbors_out(i))

    def edges(self) -> list[tuple[int, int]]:
        return [(i, j) for i in range(self.size) for j in self.neighbors_out(i)]

    def adjacency_matrix(self) -> np.ndarray:
        m = np.zeros((self.size, self.size), dtype=np.int8)
        for i, j in self.edges():
            m[i, j] = 1
        return m

    def diameter(self) -> float:
        """Longest shortest directed path (inf when not strongly connected)."""
        n = self.size
        if n == 1:
            return 0.0
        dist = np.full((n, n), np.inf)
        np.fill_diagonal(dist, 0.0)
        for i, j in self.edges():
            dist[i, j] = 1.0
        for k in range(n):  # Floyd–Warshall
            dist = np.minimum(dist, dist[:, k : k + 1] + dist[k : k + 1, :])
        off = dist[~np.eye(n, dtype=bool)]
        return float(off.max()) if off.size else 0.0

    def is_connected(self) -> bool:
        return np.isfinite(self.diameter())

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Topology", "").lower()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(size={self.size})"


class IsolatedTopology(Topology):
    """No edges at all — Cantú-Paz's impractical *isolated demes* control."""

    def neighbors_out(self, i: int) -> list[int]:
        self._check(i)
        return []

    def neighbors_in(self, i: int) -> list[int]:
        self._check(i)
        return []


class RingTopology(Topology):
    """Unidirectional ring: deme i → deme (i+1) mod n."""

    def neighbors_out(self, i: int) -> list[int]:
        self._check(i)
        if self.size == 1:
            return []
        return [(i + 1) % self.size]

    def neighbors_in(self, i: int) -> list[int]:
        self._check(i)
        if self.size == 1:
            return []
        return [(i - 1) % self.size]


class BidirectionalRingTopology(Topology):
    """Bidirectional ring: deme i ↔ both neighbours."""

    def neighbors_out(self, i: int) -> list[int]:
        self._check(i)
        if self.size == 1:
            return []
        if self.size == 2:
            return [1 - i]
        return [(i + 1) % self.size, (i - 1) % self.size]

    neighbors_in = neighbors_out


class PipelineTopology(Topology):
    """Open chain 0 → 1 → … → n-1 (the survey's 'pipeline')."""

    def neighbors_out(self, i: int) -> list[int]:
        self._check(i)
        return [i + 1] if i + 1 < self.size else []

    def neighbors_in(self, i: int) -> list[int]:
        self._check(i)
        return [i - 1] if i > 0 else []


class CompleteTopology(Topology):
    """Fully connected — Cantú-Paz's fastest-converging choice."""

    def neighbors_out(self, i: int) -> list[int]:
        self._check(i)
        return [j for j in range(self.size) if j != i]

    neighbors_in = neighbors_out


class StarTopology(Topology):
    """Hub-and-spokes: deme 0 exchanges with everyone, spokes only with 0."""

    def neighbors_out(self, i: int) -> list[int]:
        self._check(i)
        if i == 0:
            return list(range(1, self.size))
        return [0]

    neighbors_in = neighbors_out


class GridTopology(Topology):
    """2-D mesh without wraparound; size must equal rows*cols."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be positive")
        super().__init__(rows * cols)
        self.rows, self.cols = rows, cols

    def _coords(self, i: int) -> tuple[int, int]:
        return divmod(i, self.cols)

    def neighbors_out(self, i: int) -> list[int]:
        self._check(i)
        r, c = self._coords(i)
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            rr, cc = r + dr, c + dc
            if 0 <= rr < self.rows and 0 <= cc < self.cols:
                out.append(rr * self.cols + cc)
        return out

    neighbors_in = neighbors_out

    def __repr__(self) -> str:
        return f"GridTopology(rows={self.rows}, cols={self.cols})"


class TorusTopology(Topology):
    """2-D mesh with wraparound (the CRAY-T3D-style torus)."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be positive")
        super().__init__(rows * cols)
        self.rows, self.cols = rows, cols

    def neighbors_out(self, i: int) -> list[int]:
        self._check(i)
        r, c = divmod(i, self.cols)
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            rr, cc = (r + dr) % self.rows, (c + dc) % self.cols
            j = rr * self.cols + cc
            if j != i and j not in out:
                out.append(j)
        return out

    neighbors_in = neighbors_out

    def __repr__(self) -> str:
        return f"TorusTopology(rows={self.rows}, cols={self.cols})"


class HypercubeTopology(Topology):
    """d-dimensional hypercube over 2^d demes (Belding's machine)."""

    def __init__(self, dimensions: int) -> None:
        if dimensions < 0:
            raise ValueError(f"dimensions must be >= 0, got {dimensions}")
        super().__init__(2 ** dimensions)
        self.dimensions = dimensions

    def neighbors_out(self, i: int) -> list[int]:
        self._check(i)
        return [i ^ (1 << d) for d in range(self.dimensions)]

    neighbors_in = neighbors_out

    def __repr__(self) -> str:
        return f"HypercubeTopology(dimensions={self.dimensions})"


class RandomRegularTopology(Topology):
    """Random k-out-regular directed graph (deterministic given seed)."""

    def __init__(self, size: int, k: int = 2, seed: int = 0) -> None:
        super().__init__(size)
        if not 0 <= k < size:
            raise ValueError(f"need 0 <= k < size, got k={k}, size={size}")
        self.k = k
        rng = ensure_rng(seed)
        self._out: list[list[int]] = []
        for i in range(size):
            others = np.setdiff1d(np.arange(size), [i])
            self._out.append(sorted(int(x) for x in rng.choice(others, size=k, replace=False)))
        self._in: list[list[int]] = [[] for _ in range(size)]
        for i, outs in enumerate(self._out):
            for j in outs:
                self._in[j].append(i)

    def neighbors_out(self, i: int) -> list[int]:
        self._check(i)
        return list(self._out[i])

    def neighbors_in(self, i: int) -> list[int]:
        self._check(i)
        return list(self._in[i])


def topology_by_name(name: str, size: int, **kwargs) -> Topology:
    """Factory used by experiment configs ('ring', 'complete', …)."""
    name = name.lower()
    if name in ("ring", "unidirectional-ring"):
        return RingTopology(size)
    if name in ("biring", "bidirectional-ring"):
        return BidirectionalRingTopology(size)
    if name in ("complete", "full", "fully-connected"):
        return CompleteTopology(size)
    if name == "star":
        return StarTopology(size)
    if name == "pipeline":
        return PipelineTopology(size)
    if name == "isolated":
        return IsolatedTopology(size)
    if name == "grid":
        rows = kwargs.get("rows") or int(np.floor(np.sqrt(size)))
        cols = size // rows
        if rows * cols != size:
            raise ValueError(f"size {size} is not rows*cols = {rows}*{cols}")
        return GridTopology(rows, cols)
    if name == "torus":
        rows = kwargs.get("rows") or int(np.floor(np.sqrt(size)))
        cols = size // rows
        if rows * cols != size:
            raise ValueError(f"size {size} is not rows*cols = {rows}*{cols}")
        return TorusTopology(rows, cols)
    if name == "hypercube":
        d = int(np.log2(size))
        if 2 ** d != size:
            raise ValueError(f"hypercube size must be a power of 2, got {size}")
        return HypercubeTopology(d)
    if name == "random":
        return RandomRegularTopology(size, k=kwargs.get("k", 2), seed=kwargs.get("seed", 0))
    raise ValueError(f"unknown topology name: {name!r}")
