"""Dynamic (time-varying) topologies.

"Static and dynamic topologies could be used." — survey §1.1.  A dynamic
topology re-derives its edge set as a function of the migration epoch, so
long-run connectivity can exceed any single snapshot's.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import ensure_rng
from .static import Topology

__all__ = ["DynamicTopology", "RandomRewiringTopology", "ScheduleTopology"]


class DynamicTopology(Topology):
    """Base for topologies whose edges depend on an epoch counter.

    Call :meth:`advance` once per migration epoch; ``neighbors_out`` then
    reflects the current snapshot.
    """

    def __init__(self, size: int) -> None:
        super().__init__(size)
        self.epoch = 0

    def advance(self) -> None:
        self.epoch += 1


class RandomRewiringTopology(DynamicTopology):
    """Each epoch, every deme gets ``k`` fresh random out-neighbours.

    The long-run graph is complete even though each snapshot is sparse —
    the cheap trick for approximating Cantú-Paz's fully-connected advantage
    with low per-epoch link cost.
    """

    def __init__(self, size: int, k: int = 1, seed: int = 0) -> None:
        super().__init__(size)
        if not 0 <= k < size:
            raise ValueError(f"need 0 <= k < size, got k={k}")
        self.k = k
        self._rng = ensure_rng(seed)
        self._snapshot: list[list[int]] = []
        self._rewire()

    def _rewire(self) -> None:
        self._snapshot = []
        for i in range(self.size):
            others = np.setdiff1d(np.arange(self.size), [i])
            picks = self._rng.choice(others, size=self.k, replace=False)
            self._snapshot.append(sorted(int(x) for x in picks))

    def advance(self) -> None:
        super().advance()
        self._rewire()

    def neighbors_out(self, i: int) -> list[int]:
        self._check(i)
        return list(self._snapshot[i])


class ScheduleTopology(DynamicTopology):
    """Cycle through a fixed list of static topologies, one per epoch."""

    def __init__(self, phases: list[Topology]) -> None:
        if not phases:
            raise ValueError("need at least one phase topology")
        sizes = {t.size for t in phases}
        if len(sizes) != 1:
            raise ValueError(f"all phases must share one size, got {sizes}")
        super().__init__(phases[0].size)
        self.phases = list(phases)

    @property
    def current(self) -> Topology:
        return self.phases[self.epoch % len(self.phases)]

    def neighbors_out(self, i: int) -> list[int]:
        self._check(i)
        return self.current.neighbors_out(i)

    def neighbors_in(self, i: int) -> list[int]:
        self._check(i)
        return self.current.neighbors_in(i)
