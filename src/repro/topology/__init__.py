"""Deme interconnects (coarse-grained) and cell neighbourhoods (fine-grained)."""

from .dynamic import DynamicTopology, RandomRewiringTopology, ScheduleTopology
from .neighborhood import (
    CompactNeighborhood,
    LinearNeighborhood,
    MooreNeighborhood,
    Neighborhood,
    VonNeumannNeighborhood,
)
from .static import (
    BidirectionalRingTopology,
    CompleteTopology,
    GridTopology,
    HypercubeTopology,
    IsolatedTopology,
    PipelineTopology,
    RandomRegularTopology,
    RingTopology,
    StarTopology,
    Topology,
    TorusTopology,
    topology_by_name,
)

__all__ = [
    "Topology",
    "RingTopology",
    "BidirectionalRingTopology",
    "CompleteTopology",
    "StarTopology",
    "GridTopology",
    "TorusTopology",
    "HypercubeTopology",
    "RandomRegularTopology",
    "IsolatedTopology",
    "PipelineTopology",
    "topology_by_name",
    "DynamicTopology",
    "RandomRewiringTopology",
    "ScheduleTopology",
    "Neighborhood",
    "VonNeumannNeighborhood",
    "MooreNeighborhood",
    "LinearNeighborhood",
    "CompactNeighborhood",
]
