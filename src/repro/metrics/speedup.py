"""Speedup and efficiency metrics.

The survey's §1.2 gains list ("run time savings, speedup of finding
solutions … increase of computational efficiency") and the Alba (2002)
super-linear speedup discussion both hinge on precise definitions:

- *strong speedup*: serial time / parallel time for the same work;
- *speedup to solution* (the PGA-fair variant Alba advocates): time (or
  evaluations) for the 1-processor algorithm to hit the target divided by
  the p-processor algorithm's — this is the quantity that can legitimately
  exceed p, because the multi-deme search needs fewer total evaluations.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

__all__ = [
    "SpeedupPoint",
    "speedup",
    "efficiency",
    "speedup_curve",
    "amdahl_speedup",
    "classify_speedup",
]


@dataclass(frozen=True)
class SpeedupPoint:
    """One row of a speedup table."""

    workers: int
    time: float
    speedup: float
    efficiency: float

    def as_dict(self) -> dict[str, float]:
        return {
            "workers": self.workers,
            "time": self.time,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
        }


def speedup(serial_time: float, parallel_time: float) -> float:
    """S = T1 / Tp."""
    if serial_time < 0 or parallel_time <= 0:
        raise ValueError("times must be positive (serial >= 0, parallel > 0)")
    return serial_time / parallel_time


def efficiency(serial_time: float, parallel_time: float, workers: int) -> float:
    """E = S / p."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return speedup(serial_time, parallel_time) / workers


def speedup_curve(
    workers: list[int], times: list[float], *, baseline: float | None = None
) -> list[SpeedupPoint]:
    """Build a speedup table from measured times.

    ``baseline`` defaults to the time measured at ``workers == 1`` — the
    only honest T1 for a strong-speedup curve.  When no 1-worker
    measurement exists, the curve falls back to extrapolating an ideal
    ``t * w`` baseline from the smallest measured worker count (which by
    construction reports exactly-linear speedup at that point) and warns,
    so fabricated-looking numbers are never silent.
    """
    if len(workers) != len(times):
        raise ValueError("workers and times must have equal length")
    if not workers:
        return []
    order = np.argsort(workers)
    w = [workers[i] for i in order]
    t = [times[i] for i in order]
    if baseline is not None:
        base = baseline
    elif w[0] == 1:
        base = t[0]
    else:
        warnings.warn(
            f"speedup_curve has no 1-worker measurement (smallest is "
            f"{w[0]} workers); extrapolating baseline as t*w, which forces "
            f"speedup == {w[0]} at that point — measure workers=1 or pass "
            "an explicit baseline",
            stacklevel=2,
        )
        base = t[0] * w[0]
    return [
        SpeedupPoint(
            workers=wi,
            time=ti,
            speedup=speedup(base, ti),
            efficiency=efficiency(base, ti, wi),
        )
        for wi, ti in zip(w, t)
    ]


def amdahl_speedup(serial_fraction: float, workers: int) -> float:
    """Amdahl's-law prediction: 1 / (f + (1-f)/p).

    Bethke's 1976 bottleneck analysis in closed form: the serial fraction
    (the master's selection/variation work) caps master-slave speedup.
    """
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError(f"serial fraction must be in [0,1], got {serial_fraction}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / workers)


def classify_speedup(point: SpeedupPoint, tol: float = 0.05) -> str:
    """Label a speedup point: 'super-linear' / 'linear' / 'sub-linear'.

    Linear within ``tol`` relative tolerance of p.
    """
    p = point.workers
    if point.speedup > p * (1.0 + tol):
        return "super-linear"
    if point.speedup >= p * (1.0 - tol):
        return "linear"
    return "sub-linear"
