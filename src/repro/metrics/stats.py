"""Statistical comparison of stochastic optimisers.

Comparisons like E4's policy tables or E12's island-vs-sequential column
are means over few seeds; a production framework should also say whether a
difference is *significant* and how big it is.  Standard non-parametric
tooling for evolutionary computation: Mann–Whitney rank-sum (no normality
assumption), the Vargha–Delaney A12 effect size, and bootstrap confidence
intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

from ..core.rng import ensure_rng

__all__ = ["Comparison", "compare_samples", "a12_effect_size", "bootstrap_ci"]


def a12_effect_size(a: Sequence[float], b: Sequence[float]) -> float:
    """Vargha–Delaney A12: P(a > b) + 0.5 P(a = b).

    0.5 = no difference; > 0.71 conventionally 'large' (when bigger is
    better for the measure at hand).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    greater = (a[:, None] > b[None, :]).sum()
    equal = (a[:, None] == b[None, :]).sum()
    return float((greater + 0.5 * equal) / (a.size * b.size))


def bootstrap_ci(
    sample: Sequence[float],
    *,
    statistic=np.mean,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int | np.random.Generator | None = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for ``statistic``."""
    x = np.asarray(sample, dtype=float)
    if x.size == 0:
        raise ValueError("sample must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    rng = ensure_rng(seed)
    idx = rng.integers(0, x.size, size=(n_boot, x.size))
    boots = np.asarray([statistic(x[row]) for row in idx])
    lo = float(np.percentile(boots, 100 * (1 - confidence) / 2))
    hi = float(np.percentile(boots, 100 * (1 + confidence) / 2))
    return lo, hi


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing two samples of a 'bigger is better' measure."""

    mean_a: float
    mean_b: float
    median_a: float
    median_b: float
    p_value: float
    a12: float
    n_a: int
    n_b: int

    @property
    def significant(self) -> bool:
        """Conventional 5% two-sided significance."""
        return self.p_value < 0.05

    @property
    def winner(self) -> str:
        """'a', 'b' or 'tie' — by A12 direction when significant."""
        if not self.significant:
            return "tie"
        return "a" if self.a12 > 0.5 else "b"

    def summary(self) -> str:
        return (
            f"a: mean {self.mean_a:.4g} (n={self.n_a}) vs "
            f"b: mean {self.mean_b:.4g} (n={self.n_b}); "
            f"p={self.p_value:.3g}, A12={self.a12:.2f} -> {self.winner}"
        )


def compare_samples(
    a: Sequence[float], b: Sequence[float], *, maximize: bool = True
) -> Comparison:
    """Mann–Whitney comparison of two runs' outcome samples.

    ``maximize=False`` flips signs first so 'a wins' always means a is the
    better optimiser.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size < 2 or b.size < 2:
        raise ValueError("need >= 2 observations per sample")
    if not maximize:
        a, b = -a, -b
    if np.all(a == a[0]) and np.all(b == b[0]) and a[0] == b[0]:
        p = 1.0  # identical constant samples — scipy would warn
    else:
        p = float(sps.mannwhitneyu(a, b, alternative="two-sided").pvalue)
    return Comparison(
        mean_a=float(a.mean()) if maximize else float(-a.mean()),
        mean_b=float(b.mean()) if maximize else float(-b.mean()),
        median_a=float(np.median(a)) if maximize else float(-np.median(a)),
        median_b=float(np.median(b)) if maximize else float(-np.median(b)),
        p_value=p,
        a12=a12_effect_size(a, b),
        n_a=int(a.size),
        n_b=int(b.size),
    )
