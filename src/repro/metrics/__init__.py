"""Metrics: speedup/efficiency, selection pressure, diversity, efficacy."""

from .diversity import (
    between_deme_divergence,
    fitness_std,
    gene_entropy,
    mean_pairwise_distance,
    unique_fraction,
)
from .efficacy import EfficacyReport, RunOutcome, repeat_runs, summarize_runs
from .pressure import (
    GrowthCurve,
    cellular_growth_curve,
    logistic_fit_rate,
    panmictic_growth_curve,
    takeover_time,
)
from .stats import Comparison, a12_effect_size, bootstrap_ci, compare_samples
from .speedup import (
    SpeedupPoint,
    amdahl_speedup,
    classify_speedup,
    efficiency,
    speedup,
    speedup_curve,
)

__all__ = [
    "speedup",
    "efficiency",
    "speedup_curve",
    "amdahl_speedup",
    "classify_speedup",
    "SpeedupPoint",
    "GrowthCurve",
    "takeover_time",
    "cellular_growth_curve",
    "panmictic_growth_curve",
    "logistic_fit_rate",
    "mean_pairwise_distance",
    "gene_entropy",
    "fitness_std",
    "between_deme_divergence",
    "unique_fraction",
    "RunOutcome",
    "EfficacyReport",
    "summarize_runs",
    "repeat_runs",
    "Comparison",
    "compare_samples",
    "a12_effect_size",
    "bootstrap_ci",
]
