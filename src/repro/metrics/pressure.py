"""Selection pressure: takeover time and growth curves.

Giacobini, Alba & Tomassini (2003) "presented a theoretical study of the
selection pressure in asynchronous cellular … evolutionary algorithms" by
measuring *growth curves*: seed one copy of the best individual into a
population driven by selection only (no variation) and track the
proportion of copies per step.  *Takeover time* is the first step at which
the whole population is copies of the best.  Their finding, which E5
reproduces: asynchronous updating induces *higher* selection pressure
(shorter takeover) than synchronous lock-step — roughly line-sweep <
fixed-random-sweep ≈ new-random-sweep < uniform-choice < synchronous —
because in-sweep updates let fresh copies propagate within the same sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import ensure_rng
from ..topology.neighborhood import Neighborhood, VonNeumannNeighborhood

__all__ = [
    "GrowthCurve",
    "takeover_time",
    "cellular_growth_curve",
    "panmictic_growth_curve",
    "logistic_fit_rate",
]


@dataclass(frozen=True)
class GrowthCurve:
    """Proportion of best-individual copies per step."""

    proportions: tuple[float, ...]
    takeover: int | None  # step of full takeover (None = never within horizon)
    policy: str

    def __len__(self) -> int:
        return len(self.proportions)

    def area(self) -> float:
        """Area under the growth curve — higher = faster takeover."""
        return float(np.trapezoid(self.proportions))


def takeover_time(proportions: list[float], tol: float = 1e-12) -> int | None:
    """First index at which the proportion reaches 1."""
    for i, p in enumerate(proportions):
        if p >= 1.0 - tol:
            return i
    return None


def cellular_growth_curve(
    rows: int = 32,
    cols: int = 32,
    *,
    update: str = "synchronous",
    neighborhood: Neighborhood | None = None,
    max_steps: int = 200,
    seed: int | np.random.Generator | None = 0,
) -> GrowthCurve:
    """Selection-only takeover experiment on a toroidal grid.

    Fitness is binary: one random cell starts as a copy of the best
    (fitness 1), all others are fitness 0.  Each update replaces a cell by
    the best of its neighbourhood ∪ itself (deterministic local
    'best-wins' selection, the maximal-pressure variant Giacobini analyses).
    Variation is disabled, so the dynamics are pure selection.
    """
    from ..parallel.cellular import UPDATE_POLICIES  # late import avoids a cycle

    if update not in UPDATE_POLICIES:
        raise ValueError(f"unknown update policy {update!r}")
    rng = ensure_rng(seed)
    nbh = neighborhood or VonNeumannNeighborhood()
    n = rows * cols
    grid = np.zeros(n, dtype=np.int8)
    grid[int(rng.integers(0, n))] = 1
    proportions = [float(grid.mean())]
    fixed_order = rng.permutation(n)
    neighbor_cache = [
        np.asarray(nbh.neighbor_indices(i, rows, cols) + [i]) for i in range(n)
    ]

    for _ in range(max_steps):
        if update == "synchronous":
            new = grid.copy()
            for i in range(n):
                new[i] = grid[neighbor_cache[i]].max()
            grid = new
        else:
            if update == "line-sweep":
                order = np.arange(n)
            elif update == "fixed-random-sweep":
                order = fixed_order
            elif update == "new-random-sweep":
                order = rng.permutation(n)
            else:  # uniform-choice
                order = rng.integers(0, n, size=n)
            for i in order:
                grid[i] = grid[neighbor_cache[i]].max()
        proportions.append(float(grid.mean()))
        if proportions[-1] >= 1.0:
            break
    return GrowthCurve(
        proportions=tuple(proportions),
        takeover=takeover_time(proportions),
        policy=update,
    )


def panmictic_growth_curve(
    population: int = 1024,
    *,
    tournament: int = 2,
    max_steps: int = 200,
    seed: int | np.random.Generator | None = 0,
) -> GrowthCurve:
    """Takeover under panmictic binary tournament — the unstructured
    control: far steeper than any cellular variant."""
    rng = ensure_rng(seed)
    n = population
    count = 1  # copies of the best
    proportions = [count / n]
    for _ in range(max_steps):
        # expected next-generation copy count under k-tournament
        picks = rng.integers(0, n, size=(n, tournament))
        is_best = picks < count  # treat indices [0, count) as the copies
        count = int(is_best.any(axis=1).sum())
        proportions.append(count / n)
        if count >= n:
            break
    return GrowthCurve(
        proportions=tuple(proportions),
        takeover=takeover_time(proportions),
        policy="panmictic",
    )


def logistic_fit_rate(proportions: list[float] | tuple[float, ...]) -> float:
    """Crude logistic growth-rate estimate from a growth curve.

    Fits log(p / (1-p)) against step with least squares over the interior
    points; the slope is the intensity Giacobini et al. model.
    """
    p = np.asarray(proportions, dtype=float)
    mask = (p > 1e-9) & (p < 1.0 - 1e-9)
    if mask.sum() < 2:
        return float("nan")
    t = np.flatnonzero(mask).astype(float)
    y = np.log(p[mask] / (1.0 - p[mask]))
    slope = np.polyfit(t, y, 1)[0]
    return float(slope)
