"""Efficacy and evaluations-to-solution statistics over repeated runs.

The survey (footnote 2): "Efficacy means having the power to produce a
desired effect.  It is a measure that calculates the number of hits in
finding a solution of a problem."  Stochastic-algorithm comparisons need
hit rates and expected evaluations computed over many independent seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["RunOutcome", "EfficacyReport", "summarize_runs", "repeat_runs"]


@dataclass(frozen=True)
class RunOutcome:
    """Minimal record of one independent run."""

    solved: bool
    evaluations: int
    best_fitness: float
    time: float | None = None


@dataclass(frozen=True)
class EfficacyReport:
    """Aggregate over independent runs."""

    runs: int
    hits: int
    efficacy: float                 # hit rate in [0, 1]
    mean_evaluations_hit: float     # mean evaluations among successful runs
    median_evaluations_hit: float
    mean_best: float
    std_best: float
    expected_evaluations: float     # total evals / hits (inf if no hits)
    mean_time: float | None = None

    def as_dict(self) -> dict[str, float]:
        return {
            "runs": self.runs,
            "hits": self.hits,
            "efficacy": self.efficacy,
            "mean_evals_hit": self.mean_evaluations_hit,
            "median_evals_hit": self.median_evaluations_hit,
            "mean_best": self.mean_best,
            "std_best": self.std_best,
            "expected_evals": self.expected_evaluations,
        }


def summarize_runs(outcomes: Sequence[RunOutcome]) -> EfficacyReport:
    """Fold run outcomes into an efficacy report."""
    if not outcomes:
        raise ValueError("need at least one run outcome")
    hits = [o for o in outcomes if o.solved]
    bests = np.asarray([o.best_fitness for o in outcomes], dtype=float)
    hit_evals = np.asarray([o.evaluations for o in hits], dtype=float)
    total_evals = float(sum(o.evaluations for o in outcomes))
    times = [o.time for o in outcomes if o.time is not None]
    return EfficacyReport(
        runs=len(outcomes),
        hits=len(hits),
        efficacy=len(hits) / len(outcomes),
        mean_evaluations_hit=float(hit_evals.mean()) if len(hits) else float("nan"),
        median_evaluations_hit=float(np.median(hit_evals)) if len(hits) else float("nan"),
        mean_best=float(bests.mean()),
        std_best=float(bests.std()),
        expected_evaluations=(total_evals / len(hits)) if hits else float("inf"),
        mean_time=float(np.mean(times)) if times else None,
    )


def repeat_runs(
    run_fn: Callable[[int], RunOutcome],
    n_runs: int,
    *,
    base_seed: int = 0,
) -> EfficacyReport:
    """Execute ``run_fn(seed)`` for ``n_runs`` distinct seeds and summarise."""
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    outcomes = [run_fn(base_seed + i) for i in range(n_runs)]
    return summarize_runs(outcomes)
