"""Diversity measures: within populations and between demes.

The punctuated-equilibria thread (Cohoon 1987; Starkweather 1991 — E10)
claims "relatively isolated demes converge to different solutions and …
migration and recombination combine partial solutions".  Showing it needs
genotypic diversity *within* a deme and *divergence between* demes.
"""

from __future__ import annotations

import numpy as np

from ..core.population import Population

__all__ = [
    "mean_pairwise_distance",
    "gene_entropy",
    "fitness_std",
    "between_deme_divergence",
    "unique_fraction",
]


def _genome_matrix(population: Population) -> np.ndarray:
    return np.stack([ind.genome.astype(float) for ind in population])


def mean_pairwise_distance(population: Population) -> float:
    """Mean L1 distance between all member pairs (0 = fully converged)."""
    g = _genome_matrix(population)
    n = g.shape[0]
    if n < 2:
        return 0.0
    # O(n * L) trick for L1: per-gene mean absolute deviation over pairs
    total = 0.0
    for col in range(g.shape[1]):
        x = np.sort(g[:, col])
        ranks = np.arange(1, n + 1)
        # sum over pairs |xi - xj| = 2 * sum_i (i * x_i - prefix_sum)
        prefix = np.cumsum(x)
        total += float(2.0 * np.sum(ranks * x - prefix))
    pairs = n * (n - 1) / 2.0
    return total / 2.0 / pairs


def gene_entropy(population: Population) -> float:
    """Mean per-locus Shannon entropy (bits) for discrete genomes.

    1.0 = maximal diversity per binary locus, 0.0 = converged.
    """
    g = _genome_matrix(population)
    entropies = []
    for col in range(g.shape[1]):
        _, counts = np.unique(g[:, col], return_counts=True)
        p = counts / counts.sum()
        entropies.append(float(-(p * np.log2(p)).sum()))
    return float(np.mean(entropies))


def fitness_std(population: Population) -> float:
    """Phenotypic diversity: standard deviation of fitness."""
    return float(population.fitness_array().std())


def unique_fraction(population: Population) -> float:
    """Fraction of genotypically distinct members."""
    g = _genome_matrix(population)
    return float(np.unique(g, axis=0).shape[0] / g.shape[0])


def between_deme_divergence(demes: list[Population]) -> float:
    """Mean L1 distance between deme centroids.

    High values while within-deme diversity is low = the punctuated-
    equilibria signature: each deme converged, but to *different* places.
    """
    if len(demes) < 2:
        return 0.0
    centroids = np.stack([_genome_matrix(p).mean(axis=0) for p in demes])
    n = centroids.shape[0]
    dists = [
        float(np.abs(centroids[i] - centroids[j]).sum())
        for i in range(n)
        for j in range(i + 1, n)
    ]
    return float(np.mean(dists))
