"""Hard-failure injection.

Gagné et al. (2003): "As far as *hard failures* caused by the network
problems are concerned, they adjusted and extended the master-slave
model … to considerate the possibility of those failures."  We model
failures as exponential inter-arrival (MTBF) downtime intervals per node,
either permanent crashes or repairable outages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import ensure_rng

__all__ = ["FaultPlan", "sample_fault_plan"]


@dataclass(frozen=True)
class FaultPlan:
    """Per-node downtime intervals (plus network latency spikes) over a
    simulation horizon.

    ``latency_spikes`` are cluster-wide ``(start, end, factor)`` windows
    during which every message's transit time is multiplied by ``factor``
    — the soft-failure companion to hard node downtime (congestion,
    transient routing trouble on the "conventional LAN").
    """

    intervals: tuple[tuple[tuple[float, float], ...], ...]  # [node][k] = (start, end)
    latency_spikes: tuple[tuple[float, float, float], ...] = ()

    def __post_init__(self) -> None:
        for a, b, factor in self.latency_spikes:
            if b < a or factor < 1.0:
                raise ValueError(f"invalid latency spike ({a}, {b}, x{factor})")

    @property
    def n_nodes(self) -> int:
        return len(self.intervals)

    def for_node(self, node_id: int) -> list[tuple[float, float]]:
        return list(self.intervals[node_id])

    def latency_factor(self, t: float) -> float:
        """Transit-time multiplier in effect at simulated time ``t``."""
        factor = 1.0
        for a, b, f in self.latency_spikes:
            if a <= t < b:
                factor = max(factor, f)
        return factor

    def total_downtime(self, node_id: int, horizon: float) -> float:
        return sum(
            max(0.0, min(b, horizon) - min(a, horizon))
            for a, b in self.intervals[node_id]
        )

    def any_failures(self) -> bool:
        return any(len(iv) > 0 for iv in self.intervals) or len(self.latency_spikes) > 0


def sample_fault_plan(
    n_nodes: int,
    horizon: float,
    mtbf: float | None,
    *,
    repair_time: float | None = None,
    seed: int | np.random.Generator | None = 0,
    spare_node_zero: bool = True,
    spike_mtbs: float | None = None,
    spike_duration: float = 0.0,
    spike_factor: float = 10.0,
) -> FaultPlan:
    """Draw exponential failures for each node over ``[0, horizon]``.

    Parameters
    ----------
    mtbf:
        Mean time between failures per node; ``None`` disables failures.
    repair_time:
        Downtime per failure; ``None`` = permanent crash (until ``inf``).
    spare_node_zero:
        Keep node 0 (the master in master-slave farms) failure-free, as
        Gagné's model assumes a reliable master host.
    spike_mtbs:
        Mean time between cluster-wide latency spikes; ``None`` disables
        them.  Each spike lasts ``spike_duration`` seconds and multiplies
        message transit times by ``spike_factor``.
    """
    if n_nodes < 1:
        raise ValueError(f"need at least one node, got {n_nodes}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    rng = ensure_rng(seed)
    plans: list[tuple[tuple[float, float], ...]] = []
    for node in range(n_nodes):
        if mtbf is None or (spare_node_zero and node == 0):
            plans.append(())
            continue
        spans: list[tuple[float, float]] = []
        t = float(rng.exponential(mtbf))
        while t < horizon:
            if repair_time is None:
                spans.append((t, float("inf")))
                break
            end = t + repair_time
            spans.append((t, end))
            t = end + float(rng.exponential(mtbf))
        plans.append(tuple(spans))
    spikes: list[tuple[float, float, float]] = []
    if spike_mtbs is not None and spike_duration > 0:
        t = float(rng.exponential(spike_mtbs))
        while t < horizon:
            spikes.append((t, t + spike_duration, spike_factor))
            t = t + spike_duration + float(rng.exponential(spike_mtbs))
    return FaultPlan(intervals=tuple(plans), latency_spikes=tuple(spikes))
