"""Hard- and soft-failure injection.

Gagné et al. (2003): "As far as *hard failures* caused by the network
problems are concerned, they adjusted and extended the master-slave
model … to considerate the possibility of those failures."  We model
failures as exponential inter-arrival (MTBF) downtime intervals per node,
either permanent crashes or repairable outages.

The coarse-grained chapter's "conventional LAN" also misbehaves softly:
messages are delayed (latency spikes), lost or duplicated in flight, and
the network occasionally *partitions* into halves that cannot reach each
other.  All of that lives here too, so one :class:`FaultPlan` fully
describes the chaos a run was subjected to and the run stays replayable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.rng import ensure_rng

__all__ = ["FaultPlan", "Partition", "sample_fault_plan"]


@dataclass(frozen=True)
class Partition:
    """One timed network bisection.

    During ``[start, end)`` every message between a node in ``group`` and
    a node outside it is blocked (a ``{kind}-lost`` receipt is recorded);
    traffic within either side flows normally.
    """

    start: float
    end: float
    group: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"invalid partition window ({self.start}, {self.end})")
        if not self.group:
            raise ValueError("partition group must name at least one node")
        object.__setattr__(self, "group", tuple(sorted(int(n) for n in self.group)))

    def separates(self, src: int, dst: int, t: float) -> bool:
        """Whether this partition blocks ``src -> dst`` traffic at ``t``."""
        if not (self.start <= t < self.end):
            return False
        return (src in self.group) != (dst in self.group)


@dataclass(frozen=True)
class FaultPlan:
    """Per-node downtime intervals plus network misbehaviour over a
    simulation horizon.

    ``latency_spikes`` are cluster-wide ``(start, end, factor)`` windows
    during which every message's transit time is multiplied by ``factor``
    — the soft-failure companion to hard node downtime (congestion,
    transient routing trouble on the "conventional LAN").

    ``loss_rate`` / ``dup_rate`` are per-message probabilities that an
    inter-node message is lost in flight or delivered twice; ``link_faults``
    overrides them per directed link as ``(src, dst, loss, dup)``.  The
    draws are made from a generator seeded with ``link_seed`` in
    deterministic event order, so same plan + same simulation = same
    losses.  ``partitions`` are timed node-set bisections (see
    :class:`Partition`).
    """

    intervals: tuple[tuple[tuple[float, float], ...], ...]  # [node][k] = (start, end)
    latency_spikes: tuple[tuple[float, float, float], ...] = ()
    loss_rate: float = 0.0
    dup_rate: float = 0.0
    link_faults: tuple[tuple[int, int, float, float], ...] = ()
    partitions: tuple[Partition, ...] = ()
    link_seed: int = 0

    def __post_init__(self) -> None:
        for a, b, factor in self.latency_spikes:
            if b < a or factor < 1.0:
                raise ValueError(f"invalid latency spike ({a}, {b}, x{factor})")
        for rate, name in ((self.loss_rate, "loss_rate"), (self.dup_rate, "dup_rate")):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for src, dst, loss, dup in self.link_faults:
            if not (0.0 <= loss <= 1.0 and 0.0 <= dup <= 1.0):
                raise ValueError(
                    f"link ({src}->{dst}) loss/dup must be in [0, 1], got ({loss}, {dup})"
                )
        # accept plain (start, end, group) tuples straight from replay specs
        object.__setattr__(
            self,
            "partitions",
            tuple(
                p if isinstance(p, Partition) else Partition(*p)
                for p in self.partitions
            ),
        )

    @property
    def n_nodes(self) -> int:
        return len(self.intervals)

    def for_node(self, node_id: int) -> list[tuple[float, float]]:
        return list(self.intervals[node_id])

    def latency_factor(self, t: float) -> float:
        """Transit-time multiplier in effect at simulated time ``t``."""
        factor = 1.0
        for a, b, f in self.latency_spikes:
            if a <= t < b:
                factor = max(factor, f)
        return factor

    def link_rates(self, src: int, dst: int) -> tuple[float, float]:
        """(loss, dup) probabilities for the directed link ``src -> dst``."""
        for s, d, loss, dup in self.link_faults:
            if s == src and d == dst:
                return loss, dup
        return self.loss_rate, self.dup_rate

    def partitioned(self, src: int, dst: int, t: float) -> bool:
        """Whether any active partition separates ``src`` from ``dst`` at ``t``."""
        return any(p.separates(src, dst, t) for p in self.partitions)

    def has_link_faults(self) -> bool:
        """Whether any message can be lost or duplicated probabilistically."""
        return (
            self.loss_rate > 0
            or self.dup_rate > 0
            or any(loss > 0 or dup > 0 for _, _, loss, dup in self.link_faults)
        )

    def total_downtime(self, node_id: int, horizon: float) -> float:
        return sum(
            max(0.0, min(b, horizon) - min(a, horizon))
            for a, b in self.intervals[node_id]
        )

    def any_failures(self) -> bool:
        return (
            any(len(iv) > 0 for iv in self.intervals)
            or len(self.latency_spikes) > 0
            or self.has_link_faults()
            or len(self.partitions) > 0
        )


def sample_fault_plan(
    n_nodes: int,
    horizon: float,
    mtbf: float | None,
    *,
    repair_time: float | None = None,
    seed: int | np.random.Generator | None = 0,
    spare_node_zero: bool = True,
    spare_nodes: tuple[int, ...] = (),
    spike_mtbs: float | None = None,
    spike_duration: float = 0.0,
    spike_factor: float = 10.0,
    loss_rate: float = 0.0,
    dup_rate: float = 0.0,
    partition_mtbs: float | None = None,
    partition_duration: float = 0.0,
    link_seed: int | None = None,
) -> FaultPlan:
    """Draw exponential failures for each node over ``[0, horizon]``.

    Parameters
    ----------
    mtbf:
        Mean time between failures per node; ``None`` disables failures.
    repair_time:
        Downtime per failure; ``None`` = permanent crash (until ``inf``).
    spare_node_zero:
        Keep node 0 (the master in master-slave farms) failure-free, as
        Gagné's model assumes a reliable master host.
    spare_nodes:
        Additional node ids kept failure-free (e.g. a supervisor node and
        its recovery spares, which must outlive the demes they restore).
    spike_mtbs:
        Mean time between cluster-wide latency spikes; ``None`` disables
        them.  Each spike lasts ``spike_duration`` seconds and multiplies
        message transit times by ``spike_factor``.
    loss_rate, dup_rate:
        Per-message loss/duplication probabilities on every link.
    partition_mtbs:
        Mean time between network partitions; ``None`` disables them.
        Each partition lasts ``partition_duration`` seconds and splits a
        random non-trivial subset of nodes from the rest.
    link_seed:
        Seed for the in-simulation link-fault draws; defaults to the
        integer ``seed`` (or 0) so a plan is one self-contained record.
    """
    if n_nodes < 1:
        raise ValueError(f"need at least one node, got {n_nodes}")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    rng = ensure_rng(seed)
    spared = set(spare_nodes) | ({0} if spare_node_zero else set())
    plans: list[tuple[tuple[float, float], ...]] = []
    for node in range(n_nodes):
        if mtbf is None or node in spared:
            plans.append(())
            continue
        spans: list[tuple[float, float]] = []
        t = float(rng.exponential(mtbf))
        while t < horizon:
            if repair_time is None:
                spans.append((t, float("inf")))
                break
            end = t + repair_time
            spans.append((t, end))
            t = end + float(rng.exponential(mtbf))
        plans.append(tuple(spans))
    spikes: list[tuple[float, float, float]] = []
    if spike_mtbs is not None and spike_duration > 0:
        t = float(rng.exponential(spike_mtbs))
        while t < horizon:
            spikes.append((t, t + spike_duration, spike_factor))
            t = t + spike_duration + float(rng.exponential(spike_mtbs))
    partitions: list[Partition] = []
    if partition_mtbs is not None and partition_duration > 0 and n_nodes >= 2:
        t = float(rng.exponential(partition_mtbs))
        while t < horizon:
            side = int(rng.integers(1, n_nodes))
            group = tuple(int(n) for n in rng.choice(n_nodes, size=side, replace=False))
            partitions.append(Partition(t, t + partition_duration, group))
            t = t + partition_duration + float(rng.exponential(partition_mtbs))
    if link_seed is None:
        link_seed = seed if isinstance(seed, (int, np.integer)) else 0
    return FaultPlan(
        intervals=tuple(plans),
        latency_spikes=tuple(spikes),
        loss_rate=loss_rate,
        dup_rate=dup_rate,
        partitions=tuple(partitions),
        link_seed=int(link_seed),
    )
