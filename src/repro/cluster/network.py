"""Interconnect model: latency + bandwidth over a hop topology.

A postal/LogP-flavoured cost model: sending ``size`` units from node ``i``
to node ``j`` takes ``latency * hops(i, j) + size / bandwidth`` seconds.
``hops`` comes from a physical :class:`~repro.topology.static.Topology`
(the survey's grids, toruses, hypercubes, rings) or defaults to 1 for a
switched LAN ("conventional local area network", Pereira 2003).
"""

from __future__ import annotations

import numpy as np

from ..topology.static import Topology

__all__ = ["Network", "NetworkPreset", "lan_ethernet", "myrinet", "wan_internet"]


class Network:
    """Message-cost model over ``n`` nodes.

    Parameters
    ----------
    n:
        Number of nodes.
    latency:
        Per-hop start-up cost in seconds (α in the α-β model).
    bandwidth:
        Payload units per second (β⁻¹).  ``inf`` means size-free messages.
    physical:
        Optional hop topology; ``None`` = single-switch network, 1 hop
        between any pair.
    """

    def __init__(
        self,
        n: int,
        latency: float = 1e-3,
        bandwidth: float = float("inf"),
        physical: Topology | None = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"network size must be >= 1, got {n}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if physical is not None and physical.size != n:
            raise ValueError(
                f"physical topology has {physical.size} nodes, network has {n}"
            )
        self.n = n
        self.latency = latency
        self.bandwidth = bandwidth
        self.physical = physical
        self._hops = self._hop_matrix()

    def _hop_matrix(self) -> np.ndarray:
        if self.physical is None:
            m = np.ones((self.n, self.n))
            np.fill_diagonal(m, 0.0)
            return m
        # BFS distances via repeated Floyd–Warshall (sizes are small)
        dist = np.full((self.n, self.n), np.inf)
        np.fill_diagonal(dist, 0.0)
        for i, j in self.physical.edges():
            dist[i, j] = 1.0
            dist[j, i] = 1.0  # links are physically bidirectional
        for k in range(self.n):
            dist = np.minimum(dist, dist[:, k : k + 1] + dist[k : k + 1, :])
        if not np.isfinite(dist).all():
            raise ValueError("physical topology is not connected")
        return dist

    def hops(self, src: int, dst: int) -> int:
        return int(self._hops[src, dst])

    def transit_time(self, src: int, dst: int, size: float = 1.0) -> float:
        """Seconds for a ``size``-unit message from ``src`` to ``dst``."""
        if src == dst:
            return 0.0
        cost = self.latency * self._hops[src, dst]
        if np.isfinite(self.bandwidth):
            cost += size / self.bandwidth
        return float(cost)


class NetworkPreset:
    """Named parameter sets for the survey's interconnect generations."""

    def __init__(self, name: str, latency: float, bandwidth: float) -> None:
        self.name = name
        self.latency = latency
        self.bandwidth = bandwidth

    def build(self, n: int, physical: Topology | None = None) -> Network:
        return Network(n, self.latency, self.bandwidth, physical)


def lan_ethernet() -> NetworkPreset:
    """100 Mb Ethernet LAN: ~0.5 ms latency, ~10 MB/s effective."""
    return NetworkPreset("ethernet-lan", latency=5e-4, bandwidth=1e7)


def myrinet() -> NetworkPreset:
    """Myrinet cluster fabric: ~10 µs latency, ~200 MB/s."""
    return NetworkPreset("myrinet", latency=1e-5, bandwidth=2e8)


def wan_internet() -> NetworkPreset:
    """Internet/DREAM-style wide area: ~50 ms latency, ~0.5 MB/s."""
    return NetworkPreset("wan", latency=5e-2, bandwidth=5e5)
