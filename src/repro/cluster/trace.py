"""Execution traces of simulated-cluster runs.

Experiments (and tests) introspect what the machine did: when tasks were
dispatched, when nodes died, when migrants crossed the wire.  Logically a
trace is still a flat list of timestamped records with free-form fields —
but it is the hottest shared data structure in the repo (every timed run
of every engine streams through one), so the storage is columnar:

* event *kinds* are interned to small integers; times, kind ids and
  per-event field tuples live in parallel arrays instead of one frozen
  dataclass + dict per event;
* :class:`TraceEvent` objects are rebuilt lazily as views on access, so
  code that reads traces sees the exact old shape;
* a per-kind index list makes :meth:`Trace.of_kind` proportional to the
  matches and :meth:`Trace.count`/:meth:`Trace.kinds` O(1);
* the canonical sha256 digest (see :mod:`repro.cluster.canon`) is
  maintained *incrementally*, one canonical line per :meth:`Trace.record`,
  so ``trace_digest(trace)`` finalizes in O(1) instead of re-walking.

Retention modes bound memory and transport cost (``docs/tracing.md``):

``full``
    keep every event (the library default — post-hoc queries all work);
``compact``
    keep only :data:`COMPACT_KINDS` events (the uniform ``generation``
    progress schema) plus the digest and per-kind counts — the default
    inside sweep workers, so pool children ship summaries over the pipe
    instead of pickling full event lists;
``digest-only``
    keep nothing but the digest and counts.

In every mode the digest covers *all* events, listeners observe *all*
events, and ``count``/``kinds``/``len`` stay exact; only post-hoc event
queries (``of_kind`` on a discarded kind, ``events``, iteration) raise
:class:`TraceRetentionError`.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .canon import _FLOAT_REPRS, _NAME_ORDERS, _float_repr, _norm, canonical_line

__all__ = [
    "TraceEvent",
    "Trace",
    "TraceSummary",
    "TraceRetentionError",
    "RETENTION_MODES",
    "COMPACT_KINDS",
    "trace_retention",
    "default_retention",
]

RETENTION_MODES = ("full", "compact", "digest-only")

#: kinds kept under ``compact`` retention: the uniform per-deme progress
#: schema every engine emits (via :func:`repro.runtime.deme.emit_generation`)
#: and the one kind post-hoc consumers most often read back
COMPACT_KINDS = frozenset({"generation"})

#: how many canonical lines to buffer before one sha256 update call
_FLUSH_EVERY = 256

#: unique sentinel for the per-trace last-time identity cache ("" and None
#: are recordable times, so no recordable value may serve as "unset")
_NO_TIME = object()

_ambient_retention = "full"


def default_retention() -> str:
    """The retention mode newly constructed traces pick up ambiently."""
    return _ambient_retention


def _check_mode(mode: str) -> str:
    if mode not in RETENTION_MODES:
        raise ValueError(f"unknown trace retention {mode!r}; choose from {RETENTION_MODES}")
    return mode


@contextmanager
def trace_retention(mode: str) -> Iterator[None]:
    """Ambient retention default for every :class:`Trace` built inside.

    This is how sweep workers slim their transport without threading a
    parameter through every engine constructor: the worker enters
    ``trace_retention("compact")`` around the trial body, and any cluster
    or logical-engine trace created inside resolves the mode at
    construction time.  Traces that already exist are unaffected.
    """
    global _ambient_retention
    _check_mode(mode)
    previous = _ambient_retention
    _ambient_retention = mode
    try:
        yield
    finally:
        _ambient_retention = previous


class TraceRetentionError(RuntimeError):
    """A query needed events that the trace's retention mode discarded."""


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped record (a lazily built view over columnar storage)."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


@dataclass(frozen=True, slots=True)
class TraceSummary:
    """Bounded-size transport form of a trace: digest plus per-kind counts."""

    n_events: int
    digest: str
    counts: dict[str, int]


class Trace:
    """Append-only event log over interned columnar storage.

    Listeners registered with :meth:`attach` observe every event as it is
    recorded — the seam in-line invariant checkers
    (:class:`repro.verify.invariants.TraceChecker`) hook into, so a
    violation can surface at the moment it happens instead of post-hoc.
    Dispatch snapshots the listener list per event, so a listener may
    attach or detach others (or itself) from inside its callback without
    skipping or double-firing its neighbours.

    ``retention`` defaults to the ambient mode (see :func:`trace_retention`;
    ``full`` unless overridden).  ``retained_kinds`` customises which kinds
    ``compact`` keeps.
    """

    __slots__ = (
        "retention",
        "retained_kinds",
        "_listeners",
        "_kind_ids",      # kind -> interned id
        "_kind_names",    # id -> kind
        "_counts",        # id -> events observed (all modes, exact)
        "_total",
        "_times",         # stored events: parallel columns
        "_kind_col",
        "_names_col",     # interned field-name tuples (kwargs order)
        "_values_col",
        "_by_kind",       # id -> storage positions
        "_name_intern",
        "_sha",
        "_pending",       # canonical lines awaiting one batched sha update
        "_frozen_digest",  # set on unpickled non-full traces: digest is final
        "_events_cache",
        "_last_time",     # identity cache: sims emit event bursts at one
        "_last_tn",       # instant, reusing the same float object for `now`
    )

    def __init__(
        self,
        retention: str | None = None,
        *,
        retained_kinds: frozenset[str] | None = None,
    ) -> None:
        self.retention = _check_mode(retention if retention is not None else _ambient_retention)
        if self.retention == "full":
            self.retained_kinds: frozenset[str] | None = None  # = everything
        elif self.retention == "compact":
            self.retained_kinds = (
                COMPACT_KINDS if retained_kinds is None else frozenset(retained_kinds)
            )
        else:
            self.retained_kinds = frozenset()
        self._listeners: list[Callable[[TraceEvent], None]] = []
        self._kind_ids: dict[str, int] = {}
        self._kind_names: list[str] = []
        self._counts: list[int] = []
        self._total = 0
        self._times: list[float] = []
        self._kind_col: list[int] = []
        self._names_col: list[tuple[str, ...]] = []
        self._values_col: list[tuple[Any, ...]] = []
        self._by_kind: list[list[int]] = []
        self._name_intern: dict[tuple[str, ...], tuple[str, ...]] = {}
        self._sha = hashlib.sha256()
        self._pending: list[str] = []
        self._frozen_digest: str | None = None
        self._events_cache: list[TraceEvent] | None = None
        self._last_time: Any = _NO_TIME
        self._last_tn = ""

    # -- listeners ---------------------------------------------------------------
    def attach(self, listener: Callable[[TraceEvent], None]) -> Callable[[TraceEvent], None]:
        """Register a callable invoked with each newly recorded event."""
        self._listeners.append(listener)
        return listener

    def detach(self, listener: Callable[[TraceEvent], None]) -> None:
        self._listeners.remove(listener)

    # -- recording ---------------------------------------------------------------
    def record(self, time: float, kind: str, **fields: Any) -> None:
        if self._frozen_digest is not None:
            raise TraceRetentionError(
                f"cannot extend an unpickled {self.retention!r} trace: its "
                "incremental digest state did not survive transport "
                "(re-record into a fresh Trace, or pickle retention='full')"
            )
        kid = self._kind_ids.get(kind)
        if kid is None:
            kid = len(self._kind_names)
            self._kind_ids[kind] = kid
            self._kind_names.append(kind)
            self._counts.append(1)
            self._by_kind.append([])
        else:
            self._counts[kid] += 1
        self._total += 1
        # -- canonical digest line, assembled inline.  This duplicates
        # canon.canonical_line byte-for-byte (the golden suite pins both
        # against the legacy walker); the call/genexpr overhead of the
        # shared helper is the difference between ~250k and ~500k ev/s.
        if time is self._last_time:  # identity: -0.0/0.0/NaN can't confuse it
            tn = self._last_tn
        else:
            tt = type(time)
            if tt is float:
                if time:
                    tn = _FLOAT_REPRS.get(time)
                    if tn is None:
                        tn = _float_repr(time)
                else:
                    tn = repr(time)
            elif tt is int or tt is str or tt is bool or time is None:
                tn = repr(time)
            else:
                tn = _norm(time)
            self._last_time = time
            self._last_tn = tn
        if fields:
            names = tuple(fields)
            order = _NAME_ORDERS.get(names)
            if order is None:
                order = tuple((n + "=", n) for n in sorted(names))
                if len(_NAME_ORDERS) < 4096:
                    _NAME_ORDERS[names] = order
            parts = []
            append = parts.append
            for prefix, name in order:
                v = fields[name]
                tv = type(v)
                if tv is int:
                    append(prefix + repr(v))
                elif tv is float:
                    if v:
                        r = _FLOAT_REPRS.get(v)
                        append(prefix + (r if r is not None else _float_repr(v)))
                    else:
                        append(prefix + repr(v))
                elif tv is str or tv is bool or v is None:
                    append(prefix + repr(v))
                else:
                    append(prefix + _norm(v))
            line = f"{tn}|{kind}|{','.join(parts)}\n"
        else:
            names = ()
            line = f"{tn}|{kind}|\n"
        pending = self._pending
        pending.append(line)
        if len(pending) >= _FLUSH_EVERY:
            self._sha.update("".join(pending).encode())
            pending.clear()
        retained = self.retained_kinds
        if retained is None or (retained and kind in retained):
            self._by_kind[kid].append(len(self._times))
            self._times.append(time)
            self._kind_col.append(kid)
            interned = self._name_intern.setdefault(names, names)
            self._names_col.append(interned)
            self._values_col.append(tuple(fields.values()))
            self._events_cache = None
        if self._listeners:
            event = TraceEvent(time=time, kind=kind, fields=fields)
            # snapshot: callbacks may attach/detach listeners mid-dispatch
            for listener in tuple(self._listeners):
                listener(event)

    def generation(
        self,
        time: float,
        *,
        deme: int,
        generation: int,
        best: float | None,
        **extra: Any,
    ) -> None:
        """Record a per-deme ``generation`` progress event.

        This is the uniform schema (``deme``, ``generation``, ``best``)
        every parallel engine emits — via
        :func:`repro.runtime.deme.emit_generation` — and the streaming
        invariants of :mod:`repro.verify` consume."""
        self.record(time, "generation", deme=deme, generation=generation, best=best, **extra)

    # -- queries -----------------------------------------------------------------
    def _event_at(self, pos: int) -> TraceEvent:
        names = self._names_col[pos]
        return TraceEvent(
            time=self._times[pos],
            kind=self._kind_names[self._kind_col[pos]],
            fields=dict(zip(names, self._values_col[pos])),
        )

    def of_kind(self, kind: str) -> list[TraceEvent]:
        kid = self._kind_ids.get(kind)
        if kid is None:
            return []
        retained = self.retained_kinds
        if retained is not None and kind not in retained:
            raise TraceRetentionError(
                f"retention {self.retention!r} discarded {kind!r} events "
                f"({self._counts[kid]} recorded); use retention='full' or add "
                f"the kind to retained_kinds (count()/kinds() stay exact)"
            )
        return [self._event_at(pos) for pos in self._by_kind[kid]]

    def kinds(self) -> set[str]:
        return set(self._kind_ids)

    def count(self, kind: str) -> int:
        kid = self._kind_ids.get(kind)
        return 0 if kid is None else self._counts[kid]

    @property
    def events(self) -> list[TraceEvent]:
        """The full event list, rebuilt lazily (and cached) as views.

        Treat it as read-only: mutating the returned list never feeds the
        digest, the indexes or the listeners (lint rule 8 rejects direct
        ``.events`` mutation outside ``repro/cluster/``)."""
        if self.retained_kinds is not None:
            raise TraceRetentionError(
                f"retention {self.retention!r} discarded the full event stream; "
                "request retention='full' to iterate events "
                "(digest, count() and kinds() stay exact)"
            )
        cache = self._events_cache
        if cache is None:
            cache = self._events_cache = [self._event_at(i) for i in range(len(self._times))]
        return cache

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return self._total

    # -- digest / transport ------------------------------------------------------
    def digest_hex(self) -> str:
        """Finalize the incremental canonical digest (O(1) amortised).

        Recording may continue afterwards: the running hash is not
        consumed, so a later ``digest_hex()`` reflects the longer stream.
        """
        if self._frozen_digest is not None:
            return self._frozen_digest
        pending = self._pending
        if pending:
            self._sha.update("".join(pending).encode())
            pending.clear()
        return self._sha.hexdigest()

    def summary(self) -> TraceSummary:
        """Digest + per-kind counts — the bounded transport form."""
        return TraceSummary(
            n_events=self._total,
            digest=self.digest_hex(),
            counts={name: self._counts[kid] for name, kid in self._kind_ids.items()},
        )

    def __getstate__(self) -> dict[str, Any]:
        state = {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in (
                "_sha", "_pending", "_listeners", "_frozen_digest",
                "_last_time", "_last_tn",
            )
        }
        state["_digest"] = self.digest_hex()
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        digest = state.pop("_digest")
        for slot, value in state.items():
            object.__setattr__(self, slot, value)
        self._listeners = []  # callables don't transport; checkers re-attach
        self._pending = []
        self._sha = hashlib.sha256()
        self._last_time = _NO_TIME
        self._last_tn = ""
        if self.retained_kinds is None:
            # full trace: replay the stored events through the canonical
            # encoder so the digest can keep extending after unpickling
            lines = [
                canonical_line(
                    self._times[i],
                    self._kind_names[self._kind_col[i]],
                    dict(zip(self._names_col[i], self._values_col[i])),
                )
                for i in range(len(self._times))
            ]
            self._sha.update("".join(lines).encode())
            self._frozen_digest = None
        else:
            # compact/digest-only: the events backing the hash are gone —
            # the digest is final and record() refuses further appends
            self._frozen_digest = digest
