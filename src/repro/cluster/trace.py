"""Execution traces of simulated-cluster runs.

Experiments (and tests) introspect what the machine did: when tasks were
dispatched, when nodes died, when migrants crossed the wire.  A trace is a
flat list of timestamped records with free-form fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped record."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Trace:
    """Append-only event log.

    Listeners registered with :meth:`attach` observe every event as it is
    recorded — the seam in-line invariant checkers
    (:class:`repro.verify.invariants.TraceChecker`) hook into, so a
    violation can surface at the moment it happens instead of post-hoc.
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._listeners: list[Callable[[TraceEvent], None]] = []

    def attach(self, listener: Callable[[TraceEvent], None]) -> Callable[[TraceEvent], None]:
        """Register a callable invoked with each newly recorded event."""
        self._listeners.append(listener)
        return listener

    def detach(self, listener: Callable[[TraceEvent], None]) -> None:
        self._listeners.remove(listener)

    def record(self, time: float, kind: str, **fields: Any) -> None:
        event = TraceEvent(time=time, kind=kind, fields=fields)
        self.events.append(event)
        for listener in self._listeners:
            listener(event)

    def generation(
        self,
        time: float,
        *,
        deme: int,
        generation: int,
        best: float | None,
        **extra: Any,
    ) -> None:
        """Record a per-deme ``generation`` progress event.

        This is the uniform schema (``deme``, ``generation``, ``best``)
        every parallel engine emits — via
        :func:`repro.runtime.deme.emit_generation` — and the streaming
        invariants of :mod:`repro.verify` consume."""
        self.record(time, "generation", deme=deme, generation=generation, best=best, **extra)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def kinds(self) -> set[str]:
        return {e.kind for e in self.events}

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
