"""Discrete-event simulation kernel (generator-coroutine processes).

This is the deterministic stand-in for the paper's parallel hardware: a
minimal event-driven simulator in the style of SimPy, built from scratch so
the repository has no dependency beyond NumPy.  Processes are Python
generators that ``yield`` either a :class:`Timeout` (advance simulated
time) or an :class:`Inbox` get (wait for a message).  The
:class:`Simulator` interleaves them in strict timestamp order, with FIFO
tie-breaking, so runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from typing import Any, Callable, Generator, Iterable, Protocol

from ..obs.session import current_obs

__all__ = ["Simulator", "Timeout", "Inbox", "Process", "SimulationError", "events_dispatched"]

# process-wide count of executed events, for perf telemetry only (the sweep
# harness diffs it around a trial); never part of traces or fingerprints
_EVENTS_DISPATCHED = 0


def events_dispatched() -> int:
    """Total events executed by every Simulator in this process so far."""
    return _EVENTS_DISPATCHED


class SimulationError(RuntimeError):
    """Raised on illegal simulator usage (negative delays, stalled runs…)."""


class Timeout:
    """Yield inside a process to advance simulated time by ``duration``."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        duration = float(duration)
        # NaN compares False against everything, so `duration < 0` alone
        # would let NaN through and poison the event-heap ordering
        if not math.isfinite(duration) or duration < 0:
            raise SimulationError(f"timeout must be finite and >= 0, got {duration}")
        self.duration = duration


class Inbox:
    """Unbounded FIFO message store; ``yield inbox`` suspends until non-empty.

    ``put`` is immediate (same-timestamp delivery); network latency is
    modelled by *scheduling* the put at a later time (see
    :meth:`Simulator.put_later`).
    """

    __slots__ = ("_sim", "name", "_items", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "inbox") -> None:
        self._sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._waiters: deque["Process"] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item now, waking one waiting process (FIFO)."""
        self._items.append(item)
        if self._waiters:
            proc = self._waiters.popleft()
            self._sim._schedule_trusted(0.0, proc._resume_with_item, self)

    def _try_get(self) -> tuple[bool, Any]:
        if self._items:
            return True, self._items.popleft()
        return False, None

    def __len__(self) -> int:
        return len(self._items)


ProcessGen = Generator[Any, Any, Any]


class Process:
    """One running coroutine inside the simulator.

    Pids are allocated by the owning :class:`Simulator` (not a module-wide
    counter), so the pids — and hence trace contents and digests — of one
    simulation never depend on how many simulators ran earlier in the
    process.
    """

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str | None = None) -> None:
        self._sim = sim
        self._gen = gen
        self.pid = next(sim._pids)
        self.name = name or f"proc-{self.pid}"
        self.finished = False
        self.value: Any = None

    # -- resumption paths --------------------------------------------------------
    def _step(self, send_value: Any = None) -> None:
        if self.finished:
            return
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.value = stop.value
            return
        self._handle(yielded)

    def _handle(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            # duration was validated by the Timeout constructor
            self._sim._schedule_trusted(yielded.duration, self._step, None)
        elif isinstance(yielded, Inbox):
            ok, item = yielded._try_get()
            if ok:
                self._sim._schedule_trusted(0.0, self._step, item)
            else:
                yielded._waiters.append(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {type(yielded).__name__}"
            )

    def _resume_with_item(self, inbox: Inbox) -> None:
        """Woken by an Inbox.put; the item may have been stolen by an
        intervening consumer, in which case we re-wait."""
        ok, item = inbox._try_get()
        if ok:
            self._step(item)
        else:
            inbox._waiters.append(self)


class JitterSource(Protocol):
    """Anything with ``random() -> float`` (a seeded RNG works)."""

    def random(self) -> float: ...


class Simulator:
    """Deterministic event loop over simulated time.

    Parameters
    ----------
    tiebreak_jitter:
        Optional seeded randomness source used to perturb the ordering of
        *same-timestamp* events.  ``None`` (the default) keeps strict FIFO
        tie-breaking.  With a seeded source the run is still exactly
        reproducible, but the tie-breaking order is shuffled — the seam the
        verification fuzzer uses to flush out hidden ordering assumptions.
        Events at different timestamps are never reordered.
    """

    def __init__(self, *, tiebreak_jitter: JitterSource | None = None) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, float, int, Callable, tuple]] = []
        self._seq = itertools.count()
        self._pids = itertools.count()
        self._jitter = tiebreak_jitter
        self._processes: list[Process] = []

    # -- scheduling ------------------------------------------------------------
    def _schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        delay = float(delay)
        # guard NaN explicitly: NaN < 0 is False, and a NaN key breaks the
        # heap invariant silently (events then pop in arbitrary order)
        if not math.isfinite(delay) or delay < 0:
            raise SimulationError(f"delay must be finite and >= 0, got {delay}")
        jitter = self._jitter.random() if self._jitter is not None else 0.0
        heapq.heappush(self._heap, (self.now + delay, jitter, next(self._seq), fn, args))

    def _schedule_trusted(self, delay: float, fn: Callable, *args: Any) -> None:
        """Hot-path scheduling for delays already proven finite and >= 0
        (Timeout constructor, literal 0.0 resume paths) — skips the
        float()/isfinite re-validation of :meth:`_schedule`."""
        jitter = self._jitter.random() if self._jitter is not None else 0.0
        heapq.heappush(self._heap, (self.now + delay, jitter, next(self._seq), fn, args))

    def call_at(self, time: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        self._schedule(time - self.now, fn, *args)

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        self._schedule(delay, fn, *args)

    def put_later(self, delay: float, inbox: Inbox, item: Any) -> None:
        """Deliver ``item`` into ``inbox`` after ``delay`` (message latency)."""
        self._schedule(delay, inbox.put, item)

    # -- processes ----------------------------------------------------------------
    def process(self, gen: ProcessGen, name: str | None = None) -> Process:
        """Register and start a generator as a process at the current time."""
        proc = Process(self, gen, name)
        self._processes.append(proc)
        self._schedule(0.0, proc._step, None)
        return proc

    def inbox(self, name: str = "inbox") -> Inbox:
        return Inbox(self, name)

    # -- execution ----------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Execute events until the queue empties (or ``until`` / event cap).

        Returns the final simulated time.
        """
        global _EVENTS_DISPATCHED
        events = 0
        heap = self._heap
        pop, push = heapq.heappop, heapq.heappush
        try:
            if until is None:
                # horizon-free loop: no per-event overshoot comparison
                while heap:
                    entry = pop(heap)  # single heap access per event
                    self.now = entry[0]
                    entry[3](*entry[4])
                    events += 1
                    if events >= max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events — livelock or runaway process?"
                        )
            else:
                while heap:
                    entry = pop(heap)
                    t = entry[0]
                    if t > until:
                        push(heap, entry)  # re-push only on overshoot
                        self.now = until
                        return self.now
                    self.now = t
                    entry[3](*entry[4])
                    events += 1
                    if events >= max_events:
                        raise SimulationError(
                            f"exceeded {max_events} events — livelock or runaway process?"
                        )
        finally:
            _EVENTS_DISPATCHED += events
            # one check per run() call, not per event: the disabled-mode
            # dispatch loop stays untouched (see benchmarks' throughput floor)
            session = current_obs()
            if session is not None:
                session.metrics.counter("sim.events_dispatched").inc(events)
        return self.now

    def run_until_complete(self, procs: Iterable[Process], **kwargs: Any) -> float:
        """Run until every process in ``procs`` has finished."""
        procs = list(procs)
        final = self.run(**kwargs)
        stuck = [p.name for p in procs if not p.finished]
        if stuck:
            raise SimulationError(f"deadlock: processes never finished: {stuck}")
        return final
