"""Compute nodes of the simulated cluster.

Heterogeneity ("networks of heterogenous workstations", Gagné 2003) is a
per-node ``speed`` factor; hard failures are closed intervals of downtime
injected by :mod:`repro.cluster.faults`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Node"]


@dataclass
class Node:
    """One processor/workstation.

    Parameters
    ----------
    node_id:
        Index in the cluster.
    speed:
        Relative compute speed; work ``w`` takes ``w / speed`` seconds.
    down_intervals:
        Sorted, disjoint ``(start, end)`` spans during which the node is
        dead (``end`` may be ``inf`` for a permanent crash).
    """

    node_id: int
    speed: float = 1.0
    down_intervals: list[tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"node speed must be positive, got {self.speed}")
        for a, b in self.down_intervals:
            if b < a:
                raise ValueError(f"invalid down interval ({a}, {b})")
        # is_up/next_up_time/finish_time walk the intervals assuming they
        # are sorted and disjoint; normalise (sort, merge touching) and
        # reject genuinely overlapping spans instead of silently trusting
        spans = sorted((float(a), float(b)) for a, b in self.down_intervals)
        merged: list[tuple[float, float]] = []
        for a, b in spans:
            if merged and a < merged[-1][1]:
                raise ValueError(
                    f"overlapping down intervals ({merged[-1]}) and ({a}, {b})"
                )
            if merged and a == merged[-1][1]:
                merged[-1] = (merged[-1][0], b)
            else:
                merged.append((a, b))
        self.down_intervals[:] = merged

    def compute_time(self, work: float) -> float:
        """Seconds to perform ``work`` units of computation."""
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        return work / self.speed

    def is_up(self, t: float) -> bool:
        """Whether the node is alive at simulated time ``t``."""
        return not any(a <= t < b for a, b in self.down_intervals)

    def fails_during(self, start: float, end: float) -> bool:
        """Whether any downtime overlaps the half-open window [start, end)."""
        return any(a < end and start < b for a, b in self.down_intervals)

    def next_up_time(self, t: float) -> float:
        """Earliest time >= t at which the node is alive (inf if never)."""
        for a, b in self.down_intervals:
            if a <= t < b:
                return b
        return t

    def finish_time(self, start: float, duration: float) -> float:
        """Completion time of ``duration`` seconds of *up-time* work begun
        at ``start``, suspending (not losing) progress across downtime.

        Returns ``inf`` if a permanent crash swallows the remaining work.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        t = self.next_up_time(start)
        for a, b in self.down_intervals:
            if b <= t:
                continue
            # strict <: work completing exactly at a downtime start counts
            # as interrupted, because is_up is half-open (down at t == a)
            if t + duration < a:
                break
            # work runs [t, a), then suspends until b
            duration -= a - t
            t = b
        return t + duration
