"""Simulated parallel machine: event kernel, nodes, network, faults, traces."""

from .faults import FaultPlan, Partition, sample_fault_plan
from .heterogeneous import HeterogeneousNetwork, two_site_cluster_network
from .machine import SimulatedCluster
from .network import Network, NetworkPreset, lan_ethernet, myrinet, wan_internet
from .node import Node
from .sim import Inbox, Process, SimulationError, Simulator, Timeout
from .trace import (
    COMPACT_KINDS,
    RETENTION_MODES,
    Trace,
    TraceEvent,
    TraceRetentionError,
    TraceSummary,
    default_retention,
    trace_retention,
)

__all__ = [
    "Simulator",
    "Timeout",
    "Inbox",
    "Process",
    "SimulationError",
    "Node",
    "Network",
    "NetworkPreset",
    "HeterogeneousNetwork",
    "two_site_cluster_network",
    "lan_ethernet",
    "myrinet",
    "wan_internet",
    "FaultPlan",
    "Partition",
    "sample_fault_plan",
    "SimulatedCluster",
    "Trace",
    "TraceEvent",
    "TraceSummary",
    "TraceRetentionError",
    "RETENTION_MODES",
    "COMPACT_KINDS",
    "trace_retention",
    "default_retention",
]
