"""The simulated parallel machine: nodes + network + event loop + trace.

This is the substitution substrate documented in DESIGN.md: where the
surveyed papers ran Beowulfs, SMPs and transputer networks, we run a
deterministic discrete-event model with the same *structure* — per-node
compute speeds, per-message latency/bandwidth costs, hop topologies and
hard failures — so speedup/efficiency/robustness experiments measure the
communication-to-computation trade-offs rather than host hardware.
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence

import numpy as np

from ..topology.static import Topology
from .faults import FaultPlan
from .network import Network
from .node import Node
from .sim import Inbox, JitterSource, Simulator
from .trace import Trace

__all__ = ["SimulatedCluster"]


class SimulatedCluster:
    """A cluster of ``n`` (possibly heterogeneous, possibly failing) nodes.

    Parameters
    ----------
    n_nodes:
        Number of processors/workstations.
    speeds:
        Relative node speeds; scalar or per-node sequence.  1.0 = baseline.
    network:
        Message-cost model; default is a zero-size-cost 1-hop network with
        1 ms latency.
    fault_plan:
        Optional downtime plan (see :func:`repro.cluster.faults.sample_fault_plan`).
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        speeds: float | Sequence[float] = 1.0,
        network: Network | None = None,
        fault_plan: FaultPlan | None = None,
        physical: Topology | None = None,
        tiebreak_jitter: JitterSource | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"cluster needs >= 1 node, got {n_nodes}")
        speed_arr = np.broadcast_to(np.asarray(speeds, dtype=float), (n_nodes,))
        if fault_plan is not None and fault_plan.n_nodes != n_nodes:
            raise ValueError(
                f"fault plan covers {fault_plan.n_nodes} nodes, cluster has {n_nodes}"
            )
        self.nodes = [
            Node(
                node_id=i,
                speed=float(speed_arr[i]),
                down_intervals=(fault_plan.for_node(i) if fault_plan else []),
            )
            for i in range(n_nodes)
        ]
        self.network = network or Network(n_nodes, physical=physical)
        if self.network.n != n_nodes:
            raise ValueError(
                f"network models {self.network.n} nodes, cluster has {n_nodes}"
            )
        self.fault_plan = fault_plan
        self.sim = Simulator(tiebreak_jitter=tiebreak_jitter)
        self.trace = Trace()
        self._msg_ids = itertools.count()
        # seeded link-fault generator, consumed in deterministic event order;
        # None when the plan cannot lose/duplicate (keeps fault-free runs
        # byte-identical to before the lossy-network model existed)
        self._link_rng = (
            np.random.default_rng(fault_plan.link_seed)
            if fault_plan is not None and fault_plan.has_link_faults()
            else None
        )

    # -- convenience -----------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, i: int) -> Node:
        return self.nodes[i]

    def inbox(self, name: str) -> Inbox:
        return self.sim.inbox(name)

    def record(self, kind: str, **fields: Any) -> None:
        self.trace.record(self.sim.now, kind, **fields)

    # -- messaging ----------------------------------------------------------------
    def transit_time(self, src: int, dst: int, size: float = 1.0) -> float:
        """Current transit time from ``src`` to ``dst``, including any
        latency spike the fault plan has in effect right now."""
        transit = self.network.transit_time(src, dst, size)
        if self.fault_plan is not None:
            transit *= self.fault_plan.latency_factor(self.sim.now)
        return transit

    def send(
        self,
        src: int,
        dst: int,
        inbox: Inbox,
        payload: Any,
        *,
        size: float = 1.0,
        kind: str = "msg",
    ) -> float:
        """Queue delivery of ``payload`` into ``inbox`` after network transit.

        Returns the transit time.  A dead node cannot send: if ``src`` is
        down right now the message never enters the network and a
        ``{kind}-send-while-dead`` trace event is recorded instead (the
        ``no-send-while-dead`` invariant flags it — well-behaved drivers
        suspend while their node is down).  In flight, the fault plan may
        lose the message (``{kind}-lost``, reason ``"loss"``), block it at
        an active partition cut (``{kind}-lost``, reason ``"partition"``)
        or deliver it twice (the extra copy receipted as ``{kind}-dup``);
        a message arriving at a *dead* destination node is dropped.  Every
        send is therefore paired with exactly one ``{kind}-recv``,
        ``{kind}-drop`` or ``{kind}-lost`` receipt carrying the same
        ``mid`` — the ledger the message-conservation invariant audits.
        """
        transit = self.transit_time(src, dst, size)
        mid = next(self._msg_ids)
        if not self.nodes[src].is_up(self.sim.now):
            self.record(f"{kind}-send-while-dead", mid=mid, src=src, dst=dst)
            return transit
        self.record(kind, mid=mid, src=src, dst=dst, size=size, transit=transit)
        plan = self.fault_plan
        if plan is not None and src != dst:
            if plan.partitioned(src, dst, self.sim.now):
                self.record(f"{kind}-lost", mid=mid, src=src, dst=dst, reason="partition")
                return transit
            if self._link_rng is not None:
                loss, dup = plan.link_rates(src, dst)
                if loss > 0 and self._link_rng.random() < loss:
                    self.record(f"{kind}-lost", mid=mid, src=src, dst=dst, reason="loss")
                    return transit
                if dup > 0 and self._link_rng.random() < dup:
                    self.sim.call_later(
                        transit, self._deliver_dup, mid, src, dst, inbox, payload, kind
                    )
        self.sim.call_later(transit, self._deliver, mid, src, dst, inbox, payload, kind)
        return transit

    def _deliver(
        self, mid: int, src: int, dst: int, inbox: Inbox, payload: Any, kind: str
    ) -> None:
        if self.nodes[dst].is_up(self.sim.now):
            inbox.put(payload)
            self.record(f"{kind}-recv", mid=mid, src=src, dst=dst)
        else:
            self.record(f"{kind}-drop", mid=mid, src=src, dst=dst)

    def _deliver_dup(
        self, mid: int, src: int, dst: int, inbox: Inbox, payload: Any, kind: str
    ) -> None:
        """Deliver the duplicated copy of an already-receipted message."""
        delivered = self.nodes[dst].is_up(self.sim.now)
        if delivered:
            inbox.put(payload)
        self.record(f"{kind}-dup", mid=mid, src=src, dst=dst, delivered=delivered)

    # -- compute ------------------------------------------------------------------
    def compute_time(self, node_id: int, work: float) -> float:
        """Seconds node ``node_id`` needs for ``work`` units."""
        return self.nodes[node_id].compute_time(work)

    def run(self, **kwargs: Any) -> float:
        """Drive the event loop to completion; returns final simulated time."""
        return self.sim.run(**kwargs)
