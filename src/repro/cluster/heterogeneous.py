"""Heterogeneous multi-site networks (Alba, Nebro & Troya 2002).

"implemented a distributed PGA in Java that run at the same time on
different machines linked by different kinds of communication networks.
This algorithm benefited from the computational resources offered by
modern LANs and by the Internet."

A :class:`HeterogeneousNetwork` partitions nodes into *sites*: messages
inside a site pay that site's LAN parameters; messages between sites pay
the WAN parameters — the LAN+Internet composition the paper ran on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .network import Network, NetworkPreset, lan_ethernet, wan_internet

__all__ = ["HeterogeneousNetwork", "two_site_cluster_network"]


class HeterogeneousNetwork(Network):
    """Per-site LAN parameters plus a WAN between sites.

    Parameters
    ----------
    site_of:
        Site index per node (length n).
    site_presets:
        One preset per site (local latency/bandwidth inside that site).
    wan:
        Preset used for any message crossing sites.
    """

    def __init__(
        self,
        site_of: Sequence[int],
        site_presets: Sequence[NetworkPreset],
        wan: NetworkPreset | None = None,
    ) -> None:
        site_of = [int(s) for s in site_of]
        n = len(site_of)
        n_sites = max(site_of) + 1 if site_of else 0
        if n == 0:
            raise ValueError("need at least one node")
        if sorted(set(site_of)) != list(range(n_sites)):
            raise ValueError("site ids must be contiguous 0..k-1")
        if len(site_presets) != n_sites:
            raise ValueError(
                f"{n_sites} sites but {len(site_presets)} site presets"
            )
        wan = wan or wan_internet()
        # initialise the base with the fastest parameters; transit_time is
        # overridden so the base cost fields are only defaults
        super().__init__(n, latency=wan.latency, bandwidth=wan.bandwidth)
        self.site_of = site_of
        self.site_presets = list(site_presets)
        self.wan = wan

    def transit_time(self, src: int, dst: int, size: float = 1.0) -> float:
        if src == dst:
            return 0.0
        s1, s2 = self.site_of[src], self.site_of[dst]
        if s1 == s2:
            preset = self.site_presets[s1]
        else:
            preset = self.wan
        cost = preset.latency
        if np.isfinite(preset.bandwidth):
            cost += size / preset.bandwidth
        return float(cost)

    def is_local(self, src: int, dst: int) -> bool:
        return self.site_of[src] == self.site_of[dst]


def two_site_cluster_network(
    nodes_per_site: int = 4,
    *,
    lan: NetworkPreset | None = None,
    wan: NetworkPreset | None = None,
) -> HeterogeneousNetwork:
    """The paper's canonical setup: two Ethernet LANs joined by the Internet."""
    if nodes_per_site < 1:
        raise ValueError("need >= 1 node per site")
    lan = lan or lan_ethernet()
    site_of = [0] * nodes_per_site + [1] * nodes_per_site
    return HeterogeneousNetwork(site_of, [lan, lan], wan)
