"""Canonical event serialisation shared by traces and digests.

The determinism story of this repo rests on one byte format: every trace
event canonicalises to the line ``{_norm(time)}|{kind}|{k=_norm(v),...}\\n``
(fields sorted by name, floats via ``repr`` — the shortest round-trip
form), and sha256 over the concatenated lines is the run's digest.  The
format is pinned by golden tests; changing a single byte here changes
every pinned digest in the repo.

This module owns that format so :class:`~repro.cluster.trace.Trace` can
maintain the digest *incrementally* (one :func:`canonical_line` per
``record()``) while :mod:`repro.verify.digest` keeps the legacy post-hoc
walker as a cross-check.  It lives under ``repro.cluster`` rather than
``repro.verify`` because the trace layer is imported by everything —
``verify`` importing ``cluster`` is fine, the reverse would cycle.

Fast paths (exact-type scalar dispatch, a bounded ``repr`` cache for
repeated floats) exist because canonicalisation runs once per recorded
event on the hot path; they are behaviour-preserving shortcuts through
:func:`_norm`, never a second format.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from ..core.individual import Individual

__all__ = ["canonical_line", "norm"]

_MAX_DEPTH = 12

#: bounded repr cache for non-zero floats.  Zeros are excluded on purpose:
#: ``-0.0 == 0.0`` so they would collide as dict keys, yet ``repr`` must
#: keep telling them apart.  (NaN keys never hit via equality — dicts still
#: short-circuit on identity, and the size bound caps any miss churn.)
_FLOAT_REPRS: dict[float, str] = {}
_FLOAT_CACHE_MAX = 4096


def _norm(
    value: Any,
    depth: int = 0,
    seen: set[int] | None = None,
    memo: dict[tuple[int, int], str] | None = None,
) -> str:
    """Canonical string form of ``value`` (stable across processes).

    ``memo``, when given, caches the canonical form of ``Individual`` and
    ``ndarray`` leaves keyed by ``(id(value), depth)`` for the duration of
    one walk — large-population reports reference the same genome objects
    many times, and re-stringifying them dominated fingerprint cost.  The
    depth in the key keeps the memoized output byte-identical to the
    unmemoized walk even near the depth cap.
    """
    if depth > _MAX_DEPTH:
        return "<depth>"
    if value is None or isinstance(value, bool):
        return repr(value)
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    if isinstance(value, (np.integer, int)):
        return repr(int(value))
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, np.ndarray):
        if memo is None:
            return _norm(value.tolist(), depth + 1, seen)
        key = (id(value), depth)
        out = memo.get(key)
        if out is None:
            out = _norm(value.tolist(), depth + 1, seen, memo)
            memo[key] = out
        return out
    if isinstance(value, Individual):
        # uid is a process-global counter: behaviourally meaningless, so
        # it must never enter a fingerprint
        if memo is None:
            return (
                f"Individual(genome={_norm(value.genome, depth + 1, seen)},"
                f"fitness={_norm(value.fitness, depth + 1, seen)})"
            )
        key = (id(value), depth)
        out = memo.get(key)
        if out is None:
            out = (
                f"Individual(genome={_norm(value.genome, depth + 1, seen, memo)},"
                f"fitness={_norm(value.fitness, depth + 1, seen, memo)})"
            )
            memo[key] = out
        return out
    if seen is None:
        seen = set()
    oid = id(value)
    if oid in seen:
        return "<cycle>"
    if isinstance(value, dict):
        seen.add(oid)
        items = ",".join(
            f"{_norm(k, depth + 1, seen, memo)}:{_norm(v, depth + 1, seen, memo)}"
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        )
        seen.discard(oid)
        return "{" + items + "}"
    if isinstance(value, (list, tuple, set, frozenset)):
        seen.add(oid)
        elems = list(value)
        if isinstance(value, (set, frozenset)):
            elems = sorted(elems, key=str)
        body = ",".join(_norm(v, depth + 1, seen, memo) for v in elems)
        seen.discard(oid)
        return "[" + body + "]"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        seen.add(oid)
        fields = ",".join(
            f"{f.name}={_norm(getattr(value, f.name), depth + 1, seen, memo)}"
            for f in dataclasses.fields(value)
            if f.name != "uid"
        )
        seen.discard(oid)
        return f"{type(value).__name__}({fields})"
    attrs = getattr(value, "__dict__", None)
    if isinstance(attrs, dict) and attrs:
        seen.add(oid)
        body = _norm(
            {k: v for k, v in attrs.items() if not k.startswith("_")},
            depth + 1, seen, memo,
        )
        seen.discard(oid)
        return f"{type(value).__name__}{body}"
    # opaque object: only its type is stable across processes
    return f"<{type(value).__name__}>"


#: public alias — :mod:`repro.verify.digest` re-exports this as its walker
norm = _norm


def _float_repr(value: float) -> str:
    """repr a non-zero float and (size permitting) cache it."""
    r = repr(value)
    if len(_FLOAT_REPRS) < _FLOAT_CACHE_MAX:
        _FLOAT_REPRS[value] = r
    return r


def _fast_norm(value: Any) -> str:
    """:func:`_norm` with an exact-type shortcut for the scalars that make
    up nearly every trace field.  ``bool`` is a distinct exact type from
    ``int`` (``type(True) is int`` is False), so the exact-type tests
    never misroute it past the bool/None ``repr`` branch."""
    t = type(value)
    if t is float:
        if value:  # never cache zeros: -0.0 == 0.0 but reprs differ
            r = _FLOAT_REPRS.get(value)
            return r if r is not None else _float_repr(value)
        return repr(value)
    if t is int or t is str or t is bool or value is None:
        return repr(value)
    return _norm(value)


#: field-name tuple (kwargs order) -> tuple of ("name=", name) in sorted
#: order — one sort per event *shape* instead of one per event.  Bounded:
#: shapes are as finite as call sites, but a runaway producer must not
#: grow this dict without limit.
_NAME_ORDERS: dict[tuple[str, ...], tuple[tuple[str, str], ...]] = {}
_NAME_ORDERS_MAX = 4096


def canonical_line(time: float, kind: str, fields: dict[str, Any]) -> str:
    """The canonical digest line for one event.

    Byte-identical to the legacy post-hoc walker's
    ``f"{_norm(time)}|{kind}|{','.join(f'{k}={_norm(v)}' ...)}\\n"``
    (fields sorted by name; names are unique kwargs, so sorting the
    names alone equals sorting the items).  The scalar dispatch is
    inlined per field — this runs once per recorded event on the hot
    path, and the golden-digest suite pins it against the walker.
    """
    t = type(time)
    if t is float:
        if time:
            tn = _FLOAT_REPRS.get(time)
            if tn is None:
                tn = _float_repr(time)
        else:
            tn = repr(time)
    elif t is int or t is str or t is bool or time is None:
        tn = repr(time)
    else:
        tn = _norm(time)
    if not fields:
        return tn + "|" + kind + "|\n"
    names = tuple(fields)
    order = _NAME_ORDERS.get(names)
    if order is None:
        order = tuple((n + "=", n) for n in sorted(names))
        if len(_NAME_ORDERS) < _NAME_ORDERS_MAX:
            _NAME_ORDERS[names] = order
    parts = []
    append = parts.append
    for prefix, name in order:
        v = fields[name]
        tv = type(v)
        if tv is int:
            append(prefix + repr(v))
        elif tv is float:
            if v:
                r = _FLOAT_REPRS.get(v)
                append(prefix + (r if r is not None else _float_repr(v)))
            else:
                append(prefix + repr(v))
        elif tv is str or tv is bool or v is None:
            append(prefix + repr(v))
        else:
            append(prefix + _norm(v))
    return tn + "|" + kind + "|" + ",".join(parts) + "\n"
