"""repro — a parallel genetic algorithms framework.

Library-scale reproduction of Konfršt, *Parallel Genetic Algorithms:
Advances, Computing Trends, Applications and Perspectives* (IPPS 2004):
every PGA model the survey classifies (global/master-slave, coarse-grained
island, fine-grained cellular, hierarchical multi-fidelity, specialized
island, hybrids), the migration/topology/synchrony machinery they share, a
deterministic simulated parallel machine standing in for the survey-era
clusters, the application workloads of its §4 on synthetic substrates, and
an experiment harness (E1–E12) regenerating its table and the quantitative
claims it surveys.

Quickstart::

    from repro import GAConfig, IslandModel
    from repro.problems import OneMax

    model = IslandModel(OneMax(64), n_islands=8, config=GAConfig(population_size=32), seed=0)
    result = model.run(100)
    print(result.best_fitness, result.solved)
"""

from .core import (
    BinarySpec,
    GAConfig,
    GenerationalEngine,
    GenomeSpec,
    Individual,
    IntegerVectorSpec,
    MaxEvaluations,
    MaxGenerations,
    PermutationSpec,
    Population,
    Problem,
    RealVectorSpec,
    SteadyStateEngine,
    TargetFitness,
)
from .parallel import (
    CellularGA,
    CellularIslandModel,
    HierarchicalGA,
    IslandModel,
    MasterSlaveGA,
    MasterSlaveIslandModel,
    SimulatedIslandModel,
    SimulatedMasterSlave,
    SpecializedIslandModel,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Problem",
    "GAConfig",
    "Individual",
    "Population",
    "GenomeSpec",
    "BinarySpec",
    "RealVectorSpec",
    "PermutationSpec",
    "IntegerVectorSpec",
    "GenerationalEngine",
    "SteadyStateEngine",
    "MaxGenerations",
    "MaxEvaluations",
    "TargetFitness",
    # parallel models
    "IslandModel",
    "SimulatedIslandModel",
    "MasterSlaveGA",
    "SimulatedMasterSlave",
    "CellularGA",
    "HierarchicalGA",
    "SpecializedIslandModel",
    "CellularIslandModel",
    "MasterSlaveIslandModel",
]
