"""Heartbeat supervision and checkpoint recovery for simulated islands.

Gagné et al.'s *robustness* requirement, applied to the coarse-grained
model: a deme pinned to a workstation that crashes should not silently
vanish from the ensemble.  The supervisor realises the standard recipe —

* every deme sends a small **heartbeat** to the supervisor node after
  each generation, and ships a full **checkpoint**
  (:class:`~repro.core.checkpoint.EngineSnapshot`) every few generations;
* the supervisor sweeps on a timer and declares a deme *silent* once no
  heartbeat has arrived for a **grace period**;
* a silent deme with a checkpoint is **recovered**: its snapshot is
  shipped to a spare node (paying realistic transfer time on the
  simulated network), restored, and resumed under a bumped
  ``incarnation`` number that *fences off* the old coroutine — if the
  "dead" deme was merely partitioned away and comes back, its stale
  incarnation notices and exits instead of split-braining the ensemble;
* a silent deme with no checkpoint (or no spare left) is **abandoned**
  and the migration topology is **rewired around it**, splicing its
  in-neighbours to its out-neighbours so a severed ring degrades to a
  smaller ring instead of starving.

An abandoned deme that turns out to be alive (its heartbeats resume
after a partition heals) **rejoins**: routes are rebuilt with it back in.

Everything — timers, transfers, detection — runs on the simulation
clock, so supervised runs are exactly as replayable as plain ones.  The
supervisor node and its spares must be failure-free in the fault plan
(``sample_fault_plan(spare_nodes=...)``): a recovery service that dies
with its wards models nothing useful.
"""

from __future__ import annotations

import math

from ..cluster.sim import Timeout
from ..core.checkpoint import EngineSnapshot, restore_engine, snapshot_engine
from .reliable import CallbackSink

__all__ = ["IslandSupervisor"]


class IslandSupervisor:
    """Failure detector + recovery manager for a ``SimulatedIslandModel``.

    Parameters
    ----------
    model:
        The owning island model (provides demes, inboxes, routes,
        incarnations and the cluster).
    node_id:
        The supervisor's own (failure-free) node.
    spares:
        Failure-free standby nodes consumed one per recovery.
    grace:
        Silence threshold in simulated seconds; must exceed the slowest
        deme's per-generation time or healthy demes get "recovered"
        (safe thanks to fencing, but wasteful).
    check_interval:
        Sweep period of the detector timer.
    heartbeat_payload / snapshot_payload:
        Simulated message sizes (a checkpoint is a whole population).
    """

    def __init__(
        self,
        model,
        *,
        node_id: int,
        spares: list[int],
        grace: float,
        check_interval: float,
        heartbeat_payload: float = 4.0,
        snapshot_payload: float = 1.0,
    ) -> None:
        if grace <= 0 or check_interval <= 0:
            raise ValueError(
                f"grace and check_interval must be positive, got ({grace}, {check_interval})"
            )
        self.model = model
        self.node_id = node_id
        self.spares = list(spares)
        self.grace = grace
        self.check_interval = check_interval
        self.heartbeat_payload = heartbeat_payload
        self.snapshot_payload = snapshot_payload
        self.sink = CallbackSink(self._on_message)
        self._last_seen: dict[int, float] = {}
        self._snapshots: dict[int, EngineSnapshot] = {}
        #: deme -> (spare node, incarnation) of an in-flight restore
        self._pending: dict[int, tuple[int, int]] = {}
        self.abandoned: set[int] = set()
        self.recoveries = 0
        #: deme -> open observability span for an in-flight recovery
        self._recover_spans: dict[int, object] = {}

    # -- deme-side hooks (called from deme coroutines) -------------------------
    def heartbeat(self, deme: int, incarnation: int) -> None:
        model = self.model
        model.cluster.send(
            model._deme_node[deme],
            self.node_id,
            self.sink,
            ("hb", deme, incarnation, model.demes[deme].state.generation),
            size=self.heartbeat_payload,
            kind="heartbeat",
        )

    def checkpoint(self, deme: int, incarnation: int) -> None:
        model = self.model
        snap = snapshot_engine(model.demes[deme])
        model.cluster.send(
            model._deme_node[deme],
            self.node_id,
            self.sink,
            ("ckpt", deme, incarnation, snap),
            size=self.snapshot_payload,
            kind="checkpoint",
        )

    # -- supervisor process ----------------------------------------------------
    def process(self):
        """Detector coroutine: periodic sweep until the ensemble settles."""
        model = self.model
        sim = model.cluster.sim
        for i in range(model.n_islands):
            self._last_seen[i] = sim.now  # full grace from the start
        while not model._stop and not self._settled():
            yield Timeout(self.check_interval)
            if model._stop:
                break
            now = sim.now
            for i in range(model.n_islands):
                if (
                    model._deme_done[i]
                    or i in self.abandoned
                    or now - self._last_seen[i] <= self.grace
                ):
                    continue
                self._handle_silent(i)

    def _settled(self) -> bool:
        return all(
            self.model._deme_done[i] or i in self.abandoned
            for i in range(self.model.n_islands)
        )

    # -- message handling (delivered via the sink, no coroutine) ---------------
    def _on_message(self, item) -> None:
        tag, deme, incarnation = item[0], item[1], item[2]
        if incarnation != self.model._incarnation[deme]:
            return  # stale incarnation: fenced off
        self._last_seen[deme] = self.model.cluster.sim.now
        if tag == "ckpt":
            self._snapshots[deme] = item[3]
        elif tag == "hb" and deme in self.abandoned:
            # a partitioned-away deme proved it is alive after all
            self.abandoned.discard(deme)
            self.model._rebuild_routes(self.abandoned)
            self.model.cluster.record("deme-rejoined", deme=deme)

    # -- detection and recovery ------------------------------------------------
    def _handle_silent(self, deme: int) -> None:
        model = self.model
        if deme in self._pending:
            # the restore itself may have been lost; re-ship, paced by the
            # grace period rather than every sweep
            self._last_seen[deme] = model.cluster.sim.now
            self._ship(deme)
            return
        snap = self._snapshots.get(deme)
        if snap is None:
            self._abandon(deme, reason="no-checkpoint")
            return
        spare = self._take_spare()
        if spare is None:
            self._abandon(deme, reason="no-spare")
            return
        incarnation = model._incarnation[deme] + 1
        model._incarnation[deme] = incarnation  # fence the old coroutine now
        model._deme_node[deme] = spare
        self._pending[deme] = (spare, incarnation)
        self._last_seen[deme] = model.cluster.sim.now  # clock the restore
        model.cluster.record(
            "recovery-start",
            deme=deme,
            node=spare,
            incarnation=incarnation,
            generation=snap.generation,
        )
        obs = getattr(model, "_obs", None)
        if obs is not None:
            now = model.cluster.sim.now
            stale = self._recover_spans.pop(deme, None)
            if stale is not None:
                obs.spans.end(stale, now)
            self._recover_spans[deme] = obs.spans.begin(
                "recover", t0=now, track=f"supervisor/deme-{deme}",
                deme=deme, node=spare, incarnation=incarnation,
            )
        self._ship(deme)

    def _take_spare(self) -> int | None:
        now = self.model.cluster.sim.now
        for idx, node in enumerate(self.spares):
            if self.model.cluster.node(node).is_up(now):
                return self.spares.pop(idx)
        return None

    def _ship(self, deme: int) -> None:
        """Send the checkpoint to the spare; delivery starts the new
        incarnation (the transfer pays network time and may be lost —
        the next silent sweep re-ships it)."""
        spare, incarnation = self._pending[deme]
        snap = self._snapshots[deme]
        self.model.cluster.send(
            self.node_id,
            spare,
            CallbackSink(lambda _item, d=deme: self._on_restored(d)),
            ("restore", deme, incarnation, snap),
            size=self.snapshot_payload,
            kind="restore",
        )

    def _on_restored(self, deme: int) -> None:
        model = self.model
        pending = self._pending.pop(deme, None)
        if pending is None:
            return
        spare, incarnation = pending
        if incarnation != model._incarnation[deme]:
            return
        snap = self._snapshots[deme]
        restore_engine(model.demes[deme], snap)
        self._last_seen[deme] = model.cluster.sim.now
        self.recoveries += 1
        model.cluster.record(
            "recovery",
            deme=deme,
            node=spare,
            incarnation=incarnation,
            generation=snap.generation,
        )
        obs = getattr(model, "_obs", None)
        if obs is not None:
            handle = self._recover_spans.pop(deme, None)
            if handle is not None:
                obs.spans.end(handle, model.cluster.sim.now)
        model.cluster.sim.process(
            model._deme_process(deme, incarnation=incarnation, resume=True),
            name=f"deme-{deme}-inc{incarnation}",
        )

    def _abandon(self, deme: int, reason: str) -> None:
        self.abandoned.add(deme)
        self.model._rebuild_routes(self.abandoned)
        self.model.cluster.record("deme-abandoned", deme=deme, reason=reason)
