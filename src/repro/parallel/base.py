"""The shared parallel-engine contract: one report schema, one registry.

The survey's central contribution is a *taxonomy*: global/master-slave,
island, cellular, hierarchical, hybrid and specialized models are all
instances of one family of parallel GAs.  This module is the code-level
counterpart of that claim — every engine in :mod:`repro.parallel`

* returns the same :class:`RunReport` (best individual + provenance,
  per-epoch records, timing, comms/retransmit counters, trace digest), so
  runs of *different* models are directly comparable — the uniform
  measurement substrate Harada, Alba & Luque argue distributed-PGA
  results need;
* registers itself in :data:`ENGINE_REGISTRY` together with a seeded
  *contract scenario*, so the cross-engine contract suite and the
  verification harness can exercise any engine generically.

The old per-engine result dataclasses (``IslandResult``,
``MasterSlaveReport``, ``SIMResult``, …) survive as thin deprecated
aliases of :class:`RunReport`; new code should construct and consume
``RunReport`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

import numpy as np

from ..core.individual import Individual
from ..obs.metrics import metrics_snapshot
from ..obs.session import current_obs
from ..obs.validate import check_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..cluster.trace import Trace

__all__ = [
    "EpochRecord",
    "RunReport",
    "ParallelEngine",
    "EngineInfo",
    "ENGINE_REGISTRY",
    "register_engine",
    "engine_names",
    "contract_run",
    "validate_report",
]


@dataclass
class EpochRecord:
    """Global statistics for one migration epoch."""

    epoch: int
    evaluations: int
    global_best: float
    deme_bests: list[float]
    migrants_sent: int
    migrants_accepted: int


@dataclass
class RunReport:
    """Uniform outcome schema every parallel engine returns.

    Core fields are shared by all models; anything model-specific
    (utilisation curves, hypervolumes, work-unit ledgers, …) lives in
    :attr:`extras` and remains attribute-accessible (``report.hypervolume``
    reads ``report.extras["hypervolume"]``), which is what keeps the old
    per-engine result classes thin aliases instead of real subclasses.
    """

    #: registry name of the engine that produced this report
    engine: str = ""
    #: best individual found (with provenance); None for archive-valued
    #: models (e.g. the multi-objective specialized island model)
    best: Individual | None = None
    evaluations: int = 0
    epochs: int = 0
    solved: bool = False
    stop_reason: str = ""
    deme_bests: list[float] = field(default_factory=list)
    records: list[EpochRecord] = field(repr=False, default_factory=list)
    # -- comms / resilience counters (zero where a model has no such traffic)
    migrants_sent: int = 0
    migrants_accepted: int = 0
    retransmits: int = 0
    dup_discards: int = 0
    recoveries: int = 0
    abandoned_demes: int = 0
    redispatches: int = 0
    lost_chunks: int = 0
    # -- timing (simulated drivers only)
    sim_time: float | None = None
    #: per-deme completion times (simulated drivers); 0.0 = never finished
    finish_times: list[float] = field(default_factory=list)
    #: canonical sha256 of the run's trace (None when the run was untraced)
    trace_digest: str | None = None
    #: model-specific measurements, attribute-accessible
    extras: dict[str, Any] = field(default_factory=dict)
    #: namespaced counter/gauge snapshot under the stable
    #: ``repro-obs-metrics/v1`` schema (see :mod:`repro.obs.metrics`);
    #: a pure function of the other fields, filled in by ``_report``
    metrics: dict[str, Any] = field(default_factory=dict)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        extras = self.__dict__.get("extras")
        if extras is not None and name in extras:
            return extras[name]
        raise AttributeError(
            f"{type(self).__name__!s} has no field or extra {name!r}"
        )

    # -- derived measurements --------------------------------------------------
    @property
    def best_fitness(self) -> float:
        if self.best is not None:
            return self.best.require_fitness()
        if "best_fitness" in self.extras:
            return float(self.extras["best_fitness"])
        raise ValueError("report has neither a best individual nor a best_fitness extra")

    @property
    def mean_makespan(self) -> float:
        spans = self.extras.get("generation_makespans", [])
        return float(np.mean(spans)) if spans else 0.0

    @property
    def mean_utilisation(self) -> float:
        util = self.extras.get("utilisation", [])
        return float(np.mean(util)) if util else 0.0

    @property
    def comm_fraction(self) -> float:
        total = self.extras.get("compute_time", 0.0) + self.extras.get("comm_time", 0.0)
        return self.extras.get("comm_time", 0.0) / total if total > 0 else 0.0

    @property
    def archive_size(self) -> int:
        objs = self.extras.get("archive_objectives")
        return 0 if objs is None else int(np.asarray(objs).shape[0])


class ParallelEngine:
    """Contract every parallel model implements.

    Subclasses (or duck-typed engines) provide

    * ``classification`` — the taxonomy coordinates
      (:class:`~repro.parallel.classification.ModelClassification`);
    * ``engine_name`` — the registry name stamped into reports
      (set by :func:`register_engine`);
    * ``run(...) -> RunReport`` — one standardized deme lifecycle
      (setup → step → exchange → record → terminate) driven by the
      shared runtime (:mod:`repro.runtime.deme`).
    """

    engine_name: str = ""

    def run(self, *args: Any, **kwargs: Any) -> RunReport:  # pragma: no cover
        raise NotImplementedError

    def _report(self, **fields: Any) -> RunReport:
        """Construct a :class:`RunReport` stamped with this engine's name
        and, when the engine is traced, the canonical trace digest.

        The digest is the trace's incrementally maintained sha256
        (:meth:`repro.cluster.trace.Trace.digest_hex` finalizes in O(1)),
        so reporting cost no longer grows with trace length — and it is
        exact under every retention mode, including the ``compact`` one
        sweep workers run under."""
        trace = self._report_trace()
        if trace is not None and "trace_digest" not in fields:
            from ..verify.digest import trace_digest

            fields["trace_digest"] = trace_digest(trace)
        report = RunReport(engine=self.engine_name, **fields)
        if not report.metrics:
            report.metrics = metrics_snapshot(report)
        session = current_obs()
        if session is not None:
            session.note_run(report)
        return report

    def _report_trace(self) -> "Trace | None":
        """The trace this engine emitted into, if any."""
        cluster = getattr(self, "cluster", None)
        if cluster is not None:
            return cluster.trace
        return getattr(self, "trace", None)


@dataclass(frozen=True)
class EngineInfo:
    """One registry entry: the engine class plus its contract scenario."""

    name: str
    cls: type
    #: seeded small standard run: ``contract(seed) -> (Trace | None, RunReport)``
    contract: Callable[[int], tuple["Trace | None", RunReport]] | None = None
    #: invariant rule names applicable to the engine's trace (see
    #: :mod:`repro.verify.invariants`); None = the always-safe default set
    rules: tuple[str, ...] | None = None
    #: conserved message kinds on the engine's wire (message-conservation)
    conserved_kinds: tuple[str, ...] = ()


#: name -> EngineInfo, populated as engine modules import
ENGINE_REGISTRY: dict[str, EngineInfo] = {}


def register_engine(
    name: str,
    cls: type,
    *,
    contract: Callable[[int], tuple["Trace | None", RunReport]] | None = None,
    rules: tuple[str, ...] | None = None,
    conserved_kinds: tuple[str, ...] = (),
) -> type:
    """Register ``cls`` under ``name`` and stamp ``cls.engine_name``.

    ``contract`` builds and runs a small fully seeded scenario — the
    cross-engine contract suite uses it to assert that every engine
    returns a schema-valid, deterministic, invariant-clean report.
    """
    cls.engine_name = name
    ENGINE_REGISTRY[name] = EngineInfo(
        name=name, cls=cls, contract=contract, rules=rules,
        conserved_kinds=conserved_kinds,
    )
    return cls


def engine_names() -> list[str]:
    """Registered engine names (import :mod:`repro.parallel` to populate)."""
    return sorted(ENGINE_REGISTRY)


def contract_run(name: str, seed: int = 0) -> tuple["Trace | None", RunReport]:
    """Execute engine ``name``'s registered contract scenario."""
    info = ENGINE_REGISTRY.get(name)
    if info is None:
        from ..spec.registry import suggest  # deferred: spec imports engines

        raise KeyError(
            f"unknown engine {name!r}{suggest(name, ENGINE_REGISTRY)}; "
            f"choose from {engine_names()}"
        )
    if info.contract is None:
        raise ValueError(f"engine {name!r} registered no contract scenario")
    return info.contract(seed)


def validate_report(report: RunReport, *, engine: str | None = None) -> list[str]:
    """Schema check: return a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(report, RunReport):
        return [f"expected RunReport, got {type(report).__name__}"]
    if not report.engine:
        problems.append("report.engine is empty")
    if engine is not None and report.engine != engine:
        problems.append(f"report.engine {report.engine!r} != registered {engine!r}")
    if report.best is not None and not report.best.evaluated:
        problems.append("report.best has no fitness")
    if (
        report.best is None
        and "best_fitness" not in report.extras
        and "archive_objectives" not in report.extras
    ):
        problems.append(
            "report has neither best, extras['best_fitness'] nor an archive"
        )
    if report.evaluations < 0:
        problems.append(f"negative evaluations {report.evaluations}")
    if report.epochs < 0:
        problems.append(f"negative epochs {report.epochs}")
    if not report.stop_reason:
        problems.append("report.stop_reason is empty")
    for counter in (
        "migrants_sent", "migrants_accepted", "retransmits", "dup_discards",
        "recoveries", "abandoned_demes", "redispatches", "lost_chunks",
    ):
        if getattr(report, counter) < 0:
            problems.append(f"negative counter {counter}")
    if report.migrants_accepted > report.migrants_sent:
        problems.append(
            f"accepted {report.migrants_accepted} migrants > sent {report.migrants_sent}"
        )
    if report.sim_time is not None and report.sim_time < 0:
        problems.append(f"negative sim_time {report.sim_time}")
    if report.trace_digest is not None and (
        len(report.trace_digest) != 64
        or any(c not in "0123456789abcdef" for c in report.trace_digest)
    ):
        problems.append(f"trace_digest is not a sha256 hex string: {report.trace_digest!r}")
    for rec in report.records:
        if not isinstance(rec, EpochRecord):
            problems.append(f"records contain non-EpochRecord {type(rec).__name__}")
            break
    if not report.metrics:
        problems.append("report.metrics snapshot is missing")
    else:
        problems.extend(f"metrics: {p}" for p in check_metrics(report.metrics))
        expected = metrics_snapshot(report)
        if report.metrics != expected:
            problems.append(
                "report.metrics disagrees with metrics_snapshot(report) — "
                "the snapshot must stay a pure function of the report"
            )
    return problems
