"""Parallel GA models: the survey's full taxonomy.

- global / master-slave  → :class:`MasterSlaveGA`, :class:`SimulatedMasterSlave`
- coarse-grained (island) → :class:`IslandModel`, :class:`SimulatedIslandModel`
- fine-grained (cellular) → :class:`CellularGA`
- hierarchical multi-fidelity → :class:`HierarchicalGA`
- specialized island model → :class:`SpecializedIslandModel`
- hybrids → :class:`CellularIslandModel`, :class:`MasterSlaveIslandModel`
"""

from .async_master_slave import AsyncMasterSlaveReport, SimulatedAsyncMasterSlave
from .cellular import UPDATE_POLICIES, CellularGA, CellularResult
from .cellular_distributed import DistributedCellularGA, DistributedCellularReport
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)
from .hierarchical import HierarchicalGA, HierarchicalResult
from .hybrid import CellularIslandModel, HybridResult, MasterSlaveIslandModel
from .island import (
    EpochRecord,
    IslandModel,
    IslandResult,
    SimulatedIslandModel,
    engine_class_by_name,
)
from .pool import PooledEvolution, PoolResult
from .master_slave import MasterSlaveGA, MasterSlaveReport, SimulatedMasterSlave
from .specialized import (
    SIMResult,
    SIMScenario,
    SpecializedIslandModel,
    standard_scenarios,
)

__all__ = [
    "GrainModel",
    "WalkStrategy",
    "ParallelismKind",
    "ProgrammingModel",
    "ModelClassification",
    "IslandModel",
    "SimulatedIslandModel",
    "IslandResult",
    "EpochRecord",
    "engine_class_by_name",
    "MasterSlaveGA",
    "SimulatedMasterSlave",
    "MasterSlaveReport",
    "CellularGA",
    "CellularResult",
    "UPDATE_POLICIES",
    "HierarchicalGA",
    "HierarchicalResult",
    "SpecializedIslandModel",
    "SIMScenario",
    "SIMResult",
    "standard_scenarios",
    "CellularIslandModel",
    "MasterSlaveIslandModel",
    "HybridResult",
    "PooledEvolution",
    "PoolResult",
    "DistributedCellularGA",
    "DistributedCellularReport",
    "SimulatedAsyncMasterSlave",
    "AsyncMasterSlaveReport",
]
