"""Parallel GA models: the survey's full taxonomy.

- global / master-slave  → :class:`MasterSlaveGA`, :class:`SimulatedMasterSlave`
- coarse-grained (island) → :class:`IslandModel`, :class:`SimulatedIslandModel`
- fine-grained (cellular) → :class:`CellularGA`
- hierarchical multi-fidelity → :class:`HierarchicalGA`
- specialized island model → :class:`SpecializedIslandModel`
- hybrids → :class:`CellularIslandModel`, :class:`MasterSlaveIslandModel`,
  :class:`SimulatedMasterSlaveIslandModel`

Every engine returns the shared :class:`RunReport` schema and registers
itself (with a seeded contract scenario) in :data:`ENGINE_REGISTRY` — see
:mod:`repro.parallel.base`.
"""

from .async_master_slave import AsyncMasterSlaveReport, SimulatedAsyncMasterSlave
from .base import (
    ENGINE_REGISTRY,
    EngineInfo,
    ParallelEngine,
    RunReport,
    contract_run,
    engine_names,
    register_engine,
    validate_report,
)
from .cellular import UPDATE_POLICIES, CellularGA, CellularResult
from .cellular_distributed import DistributedCellularGA, DistributedCellularReport
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)
from .hierarchical import HierarchicalGA, HierarchicalResult
from .hybrid import (
    CellularIslandModel,
    HybridResult,
    MasterSlaveIslandModel,
    SimulatedMasterSlaveIslandModel,
)
from .island import (
    EpochRecord,
    IslandModel,
    IslandResult,
    SimulatedIslandModel,
    engine_class_by_name,
)
from .pool import PooledEvolution, PoolResult
from .master_slave import MasterSlaveGA, MasterSlaveReport, SimulatedMasterSlave
from .specialized import (
    SIMResult,
    SIMScenario,
    SimulatedSpecializedIslandModel,
    SpecializedIslandModel,
    standard_scenarios,
)

__all__ = [
    "RunReport",
    "ParallelEngine",
    "EngineInfo",
    "ENGINE_REGISTRY",
    "register_engine",
    "engine_names",
    "contract_run",
    "validate_report",
    "GrainModel",
    "WalkStrategy",
    "ParallelismKind",
    "ProgrammingModel",
    "ModelClassification",
    "IslandModel",
    "SimulatedIslandModel",
    "IslandResult",
    "EpochRecord",
    "engine_class_by_name",
    "MasterSlaveGA",
    "SimulatedMasterSlave",
    "MasterSlaveReport",
    "CellularGA",
    "CellularResult",
    "UPDATE_POLICIES",
    "HierarchicalGA",
    "HierarchicalResult",
    "SpecializedIslandModel",
    "SimulatedSpecializedIslandModel",
    "SIMScenario",
    "SIMResult",
    "standard_scenarios",
    "CellularIslandModel",
    "MasterSlaveIslandModel",
    "SimulatedMasterSlaveIslandModel",
    "HybridResult",
    "PooledEvolution",
    "PoolResult",
    "DistributedCellularGA",
    "DistributedCellularReport",
    "SimulatedAsyncMasterSlave",
    "AsyncMasterSlaveReport",
]
