"""Reliable migration transport over the lossy simulated network.

The plain island driver fires migrants at its neighbours and forgets
them; on the "conventional LAN" of the coarse-grained chapter that means
lost parcels simply never arrive, duplicated parcels are applied twice
and a mid-run partition starves every cross-cut edge.  This module adds
the classic end-to-end remedy on top of :class:`~repro.cluster.machine.
SimulatedCluster`'s unreliable ``send``:

* per-directed-edge **sequence numbers** on every parcel,
* receiver **acks** for every parcel that arrives (including duplicates),
* sender-side **timeout + exponential-backoff retransmission** until the
  ack lands or a retry budget is exhausted,
* receiver-side **dedup** keyed by ``(src, dst, seq)``.

Together: *at-least-once delivery* on the wire, *exactly-once
application* of migrants — the property the ``exactly-once-application``
trace invariant audits.  All timers run on the simulation clock, so a
run with a given fault plan and seed is exactly replayable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

from ..cluster.machine import SimulatedCluster
from ..cluster.sim import Inbox

__all__ = ["CallbackSink", "ChannelStats", "ReliableChannel"]


class CallbackSink:
    """Inbox-compatible delivery target that invokes a callback instead of
    queueing.  Control traffic (acks, heartbeats, checkpoints) is handled
    the moment it arrives — no coroutine blocks on it — while still riding
    :meth:`SimulatedCluster.send` so it pays transit and appears in the
    message-conservation ledger."""

    def __init__(self, fn: Callable[[Any], None]) -> None:
        self._fn = fn

    def put(self, item: Any) -> None:
        self._fn(item)


@dataclass
class ChannelStats:
    """Counters the reliable channel accumulates over one run."""

    sent: int = 0          # distinct parcels handed to the channel
    retransmits: int = 0   # extra wire transmissions beyond the first
    acks: int = 0          # acks that closed an open parcel
    dup_discards: int = 0  # receiver-side duplicate parcels discarded
    abandoned: int = 0     # parcels given up (retry budget / dead sender)


class ReliableChannel:
    """At-least-once parcel delivery with exactly-once application.

    Parameters
    ----------
    cluster:
        The simulated machine whose (lossy) ``send`` carries the traffic.
    node_of:
        ``deme index -> node id`` mapping, consulted at every
        (re)transmission so supervised recovery can move a deme to a
        spare node mid-run.
    inbox_of:
        ``deme index -> Inbox`` for parcel delivery.
    is_stopped:
        Polled by retransmit timers; once true the channel stops
        retransmitting so a finished run's event queue can drain.
    is_done:
        ``deme index -> bool``: whether that deme has finished its run.
        A finished deme never drains its inbox again, so parcels to it
        are dropped instead of retried (they would only churn the event
        queue until the retry budget ran out).
    ack_payload:
        Simulated size of an ack message.
    rto_factor:
        Retransmit timeout = ``rto_factor x`` the expected round trip at
        transmission time, doubled (``backoff``) per retry.
    min_rto:
        Floor on the retransmit timeout.  The wire round trip ignores
        *application* delay — a deme only drains its inbox between
        generations — so callers should set this to a couple of
        generation times or every parcel in a busy deme's inbox gets
        spuriously retransmitted.
    max_retransmits:
        Retry budget per parcel before the sender gives up (the receiver
        may be permanently dead; at-least-once cannot beat that).
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        *,
        node_of: Callable[[int], int],
        inbox_of: Callable[[int], Inbox],
        is_stopped: Callable[[], bool] = lambda: False,
        is_done: Callable[[int], bool] = lambda d: False,
        kind: str = "migration",
        ack_payload: float = 8.0,
        rto_factor: float = 3.0,
        min_rto: float = 0.0,
        backoff: float = 2.0,
        max_retransmits: int = 8,
    ) -> None:
        if rto_factor <= 0 or backoff < 1.0:
            raise ValueError(
                f"need rto_factor > 0 and backoff >= 1, got ({rto_factor}, {backoff})"
            )
        if max_retransmits < 0:
            raise ValueError(f"max_retransmits must be >= 0, got {max_retransmits}")
        self.cluster = cluster
        self.kind = kind
        self.ack_kind = f"{kind}-ack"
        self.ack_payload = ack_payload
        self.rto_factor = rto_factor
        self.min_rto = min_rto
        self.backoff = backoff
        self.max_retransmits = max_retransmits
        self._node_of = node_of
        self._inbox_of = inbox_of
        self._stopped = is_stopped
        self._done = is_done
        self._ack_sink = CallbackSink(self._on_ack)
        self._next_seq: dict[tuple[int, int], int] = {}
        #: (src, dst, seq) -> (payload, size) awaiting an ack
        self._unacked: dict[tuple[int, int, int], tuple[Any, float]] = {}
        #: (src, dst, seq) triples already applied at the receiver
        self._applied: set[tuple[int, int, int]] = set()
        self.stats = ChannelStats()

    # -- sender side -----------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any, size: float) -> None:
        """Hand one parcel to the channel; it is delivered (and applied)
        at most once, retransmitting as needed."""
        seq = self._next_seq.get((src, dst), 0)
        self._next_seq[(src, dst)] = seq + 1
        self._unacked[(src, dst, seq)] = (payload, size)
        self.stats.sent += 1
        self._transmit(src, dst, seq, attempt=0)

    def _transmit(self, src: int, dst: int, seq: int, attempt: int) -> None:
        payload, size = self._unacked[(src, dst, seq)]
        src_node, dst_node = self._node_of(src), self._node_of(dst)
        self.cluster.send(
            src_node,
            dst_node,
            self._inbox_of(dst),
            (self.kind, src, seq, payload),
            size=size,
            kind=self.kind,
        )
        round_trip = self.cluster.transit_time(
            src_node, dst_node, size
        ) + self.cluster.transit_time(dst_node, src_node, self.ack_payload)
        rto = max(round_trip * self.rto_factor, self.min_rto, 1e-9) * (
            self.backoff**attempt
        )
        self.cluster.sim.call_later(rto, self._check, src, dst, seq, attempt)

    def _check(self, src: int, dst: int, seq: int, attempt: int) -> None:
        """Retransmit timer: fire again unless acked / stopped / exhausted."""
        key = (src, dst, seq)
        if key not in self._unacked or self._stopped():
            return
        if self._done(dst):
            # the receiver finished its run; nobody will ever drain this
            # parcel, so retrying cannot converge — drop it quietly
            del self._unacked[key]
            return
        if attempt >= self.max_retransmits:
            del self._unacked[key]
            self.stats.abandoned += 1
            self.cluster.record(
                f"{self.kind}-abandoned", src=src, dst=dst, seq=seq
            )
            return
        node = self.cluster.node(self._node_of(src))
        now = self.cluster.sim.now
        if not node.is_up(now):
            # a dead node cannot transmit; wait out a repairable outage,
            # give up on a permanent crash (a supervisor-recovered
            # incarnation re-emigrates with fresh sequence numbers)
            wake = node.next_up_time(now)
            if math.isinf(wake):
                del self._unacked[key]
                self.stats.abandoned += 1
                self.cluster.record(
                    f"{self.kind}-abandoned", src=src, dst=dst, seq=seq
                )
                return
            self.cluster.sim.call_later(wake - now, self._check, src, dst, seq, attempt)
            return
        self.stats.retransmits += 1
        self._transmit(src, dst, seq, attempt + 1)

    def _on_ack(self, item: Any) -> None:
        _, src, dst, seq = item
        if self._unacked.pop((src, dst, seq), None) is not None:
            self.stats.acks += 1

    # -- receiver side ---------------------------------------------------------
    def on_parcel(self, dst: int, item: Any) -> Any | None:
        """Process a parcel drained from deme ``dst``'s inbox.

        Always acks (the previous ack may have been lost — re-acking is
        what makes retransmission converge); returns the payload exactly
        once per ``(src, dst, seq)`` and ``None`` for duplicates.
        """
        _, src, seq, payload = item
        src_node, dst_node = self._node_of(src), self._node_of(dst)
        self.cluster.send(
            dst_node,
            src_node,
            self._ack_sink,
            (self.ack_kind, src, dst, seq),
            size=self.ack_payload,
            kind=self.ack_kind,
        )
        key = (src, dst, seq)
        if key in self._applied:
            self.stats.dup_discards += 1
            self.cluster.record(
                f"{self.kind}-dedup", src=src, dst=dst, seq=seq
            )
            return None
        self._applied.add(key)
        return payload
