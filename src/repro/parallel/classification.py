"""The survey's PGA taxonomy, as data.

"parallel genetic algorithms can be divided into *global*, *fine-grained*,
*coarse-grained* and *hybrid* models.  The classifications are also based
on a walk strategy (single, multiple) and on the type of (parallel)
computing machinery used." — survey §1.2.

Every model class in :mod:`repro.parallel` carries a
:class:`ModelClassification` so the experiment harness can regenerate a
taxonomy table mechanically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "GrainModel",
    "WalkStrategy",
    "ParallelismKind",
    "ProgrammingModel",
    "ModelClassification",
]


class GrainModel(enum.Enum):
    """The four-way model split of the survey's classifications."""

    GLOBAL = "global"            # single panmictic population, parallel evaluation
    COARSE_GRAINED = "coarse"    # few large demes (island model)
    FINE_GRAINED = "fine"        # one individual per cell (cellular model)
    HYBRID = "hybrid"            # compositions of the above


class WalkStrategy(enum.Enum):
    """Single vs multiple concurrent search threads through problem space."""

    SINGLE = "single"
    MULTIPLE = "multiple"


class ParallelismKind(enum.Enum):
    """Data vs control parallelism (survey §1.2, after Freitas)."""

    DATA = "data"        # same procedure over partitioned data (fitness farm)
    CONTROL = "control"  # different concurrent procedures (independent demes)
    HYBRID = "hybrid"


class ProgrammingModel(enum.Enum):
    """Centralised (master-slave) vs distributed (message exchange) — §3.3."""

    CENTRALIZED = "centralized"
    DISTRIBUTED = "distributed"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class ModelClassification:
    """Where one PGA model sits in the survey's taxonomy."""

    grain: GrainModel
    walk: WalkStrategy
    parallelism: ParallelismKind
    programming: ProgrammingModel

    def as_row(self) -> dict[str, str]:
        return {
            "grain": self.grain.value,
            "walk": self.walk.value,
            "parallelism": self.parallelism.value,
            "programming": self.programming.value,
        }
