"""Hierarchical Genetic Algorithm (Sefrioui & Périaux 2000).

"HGAs with multi-layered hierarchical topology and multiple models for
optimization problems.  The architecture allowed mix of a simple and
complex models, but it achieved the same quality as reached by only complex
models … three times faster" (survey §2).

The architecture is a tree of demes.  The single top deme refines with the
*most faithful* (most expensive) model; lower layers explore with
progressively cheaper models.  Periodically the best solutions migrate *up*
one layer (re-evaluated under the destination's model, since fitnesses from
different fidelities are not comparable) and random solutions migrate
*down* to keep exploration stocked with diversity.

Cost accounting is in *work units* (evaluations × fidelity cost), which is
how the "same quality, ~3x faster" claim is measured in E7.
"""

from __future__ import annotations

from ..cluster.trace import Trace
from ..core.config import GAConfig
from ..core.engine import GenerationalEngine
from ..core.individual import Individual
from ..core.rng import spawn_rngs
from ..problems.multifidelity import MultiFidelityProblem
from ..runtime.deme import EpochLoop, emit_generation
from .base import ParallelEngine, RunReport, register_engine
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)

__all__ = ["HierarchicalGA", "HierarchicalResult"]


#: deprecated alias — every engine now returns the shared report schema
HierarchicalResult = RunReport


class HierarchicalGA(EpochLoop, ParallelEngine):
    """Tree of demes over a multi-fidelity objective.

    Parameters
    ----------
    problem:
        A :class:`~repro.problems.multifidelity.MultiFidelityProblem`;
        layer ``l`` (0 = top) uses fidelity ``n_fidelities - 1 - l`` (the
        top layer gets the truth model).  With more layers than fidelities
        the deepest layers share the cheapest model.
    layers:
        Number of tree levels.
    branching:
        Children per node; layer ``l`` holds ``branching**l`` demes.
    migration_interval:
        Epochs between up/down exchanges.
    up_count / down_count:
        Migrants promoted per child per exchange / demoted per child.
    """

    classification = ModelClassification(
        grain=GrainModel.HYBRID,
        walk=WalkStrategy.MULTIPLE,
        parallelism=ParallelismKind.HYBRID,
        programming=ProgrammingModel.HYBRID,
    )

    def __init__(
        self,
        problem: MultiFidelityProblem,
        config: GAConfig | None = None,
        *,
        layers: int = 3,
        branching: int = 2,
        migration_interval: int = 5,
        up_count: int = 2,
        down_count: int = 1,
        seed: int | None = None,
        trace: Trace | None = None,
    ) -> None:
        if layers < 1:
            raise ValueError(f"need >= 1 layer, got {layers}")
        if branching < 1:
            raise ValueError(f"branching must be >= 1, got {branching}")
        if migration_interval < 1:
            raise ValueError(f"migration_interval must be >= 1, got {migration_interval}")
        self.problem = problem
        self.layers = layers
        self.branching = branching
        self.migration_interval = migration_interval
        self.up_count = up_count
        self.down_count = down_count
        cfg = (config or GAConfig()).resolved_for(problem.spec)

        # layer l gets fidelity max(0, highest - l)
        top = problem.highest_fidelity()
        self.layer_fidelity = [max(0, top - l) for l in range(layers)]
        n_demes = sum(branching ** l for l in range(layers))
        rngs = spawn_rngs(seed, n_demes + 1)
        self.rng = rngs[-1]

        self.demes: list[list[GenerationalEngine]] = []
        k = 0
        for l in range(layers):
            layer_demes = []
            for _ in range(branching ** l):
                view = problem.view(self.layer_fidelity[l])
                layer_demes.append(GenerationalEngine(view, cfg, seed=rngs[k]))
                k += 1
            self.demes.append(layer_demes)
        self.epoch = 0
        self.trace = trace
        self.best_curve: list[float] = []
        self.work_curve: list[float] = []

    # -- structure helpers -----------------------------------------------------------
    def _children_of(self, layer: int, idx: int) -> list[int]:
        """Indices (in layer+1) of the children of deme ``idx`` in ``layer``."""
        if layer + 1 >= self.layers:
            return []
        return list(range(idx * self.branching, (idx + 1) * self.branching))

    def work_units(self) -> float:
        total = 0.0
        for l, layer in enumerate(self.demes):
            cost = float(self.problem.costs[self.layer_fidelity[l]])
            total += cost * sum(d.state.evaluations for d in layer)
        return total

    def total_evaluations(self) -> int:
        return sum(d.state.evaluations for layer in self.demes for d in layer)

    def top_best(self) -> Individual:
        return self.demes[0][0].best_so_far

    # -- evolution ----------------------------------------------------------------------
    def initialize(self) -> None:
        for layer in self.demes:
            for deme in layer:
                deme.initialize()
        self._track()

    # -- standard lifecycle (step layers, exchange up/down, track curves) --------
    def _lifecycle_initialized(self) -> bool:
        return self.demes[0][0].population is not None

    def _lifecycle_step(self) -> None:
        for layer in self.demes:
            for deme in layer:
                deme.step()

    def _lifecycle_exchange(self) -> None:
        if self.epoch % self.migration_interval == 0:
            self._exchange()

    def _lifecycle_record(self) -> None:
        self._track()

    def _exchange(self) -> None:
        """Promote bests upward (with re-evaluation), demote randoms downward."""
        for l in range(self.layers - 1, 0, -1):  # bottom-up promotion
            parent_layer = l - 1
            for p_idx, parent in enumerate(self.demes[parent_layer]):
                for c_idx in self._children_of(parent_layer, p_idx):
                    child = self.demes[l][c_idx]
                    assert child.population is not None and parent.population is not None
                    # up: child's best, re-evaluated under parent's model
                    ups = child.population.sorted()[: self.up_count]
                    for ind in ups:
                        promoted = ind.copy(origin=f"promoted:L{l}")
                        promoted.fitness = parent.problem.evaluate(promoted.genome)
                        parent.state.evaluations += 1
                        self._accept(parent, promoted)
                    # down: random members of the parent, re-evaluated cheaply
                    if self.down_count > 0 and len(parent.population) > 0:
                        idx = self.rng.choice(
                            len(parent.population), size=self.down_count, replace=False
                        )
                        for i in idx:
                            demoted = parent.population[int(i)].copy(
                                origin=f"demoted:L{parent_layer}"
                            )
                            demoted.fitness = child.problem.evaluate(demoted.genome)
                            child.state.evaluations += 1
                            self._accept(child, demoted)

    @staticmethod
    def _accept(deme: GenerationalEngine, newcomer: Individual) -> None:
        """Replace the deme's worst member if the newcomer improves on it."""
        pop = deme.population
        assert pop is not None
        worst = pop.worst()
        nf, wf = newcomer.require_fitness(), worst.require_fitness()
        improves = nf > wf if pop.maximize else nf < wf
        if improves:
            pop.replace_worst(newcomer)
            # keep the engine's best-so-far tracking honest
            bsf = deme.best_so_far.require_fitness()
            better = nf > bsf if pop.maximize else nf < bsf
            if better:
                deme._best_so_far = newcomer.copy()
                deme.state.best_fitness = nf

    def _track(self) -> None:
        self.best_curve.append(self.top_best().require_fitness())
        self.work_curve.append(self.work_units())
        # one record per deme, flattened breadth-first (top deme = 0)
        k = 0
        for layer in self.demes:
            for deme in layer:
                emit_generation(
                    self.trace,
                    float(self.epoch),
                    deme=k,
                    generation=deme.state.generation,
                    best=float(deme.best_so_far.require_fitness()),
                )
                k += 1

    def _solved(self) -> bool:
        top_view = self.demes[0][0].problem
        return top_view.is_solved(self.top_best().require_fitness())

    def run(
        self,
        max_epochs: int = 100,
        *,
        work_budget: float | None = None,
    ) -> RunReport:
        """Run until solved, ``max_epochs`` or the work budget is spent."""
        self.run_epochs(
            max_epochs,
            done=lambda: self._solved()
            or (work_budget is not None and self.work_units() >= work_budget),
        )
        solved = self._solved()
        return self._report(
            best=self.top_best().copy(),
            evaluations=self.total_evaluations(),
            epochs=self.epoch,
            solved=solved,
            stop_reason="solved" if solved else "max_epochs",
            deme_bests=[
                d.best_so_far.require_fitness() for layer in self.demes for d in layer
            ],
            extras={
                "work_units": self.work_units(),
                "best_curve": self.best_curve,
                "work_curve": self.work_curve,
            },
        )


def _hierarchical_contract(seed: int):
    from ..problems.applications import TransonicWingDesign

    trace = Trace()
    hga = HierarchicalGA(
        TransonicWingDesign(),
        GAConfig(population_size=10, elitism=1),
        layers=2,
        branching=2,
        seed=seed,
        trace=trace,
    )
    return trace, hga.run(6)


register_engine("hierarchical", HierarchicalGA, contract=_hierarchical_contract)
