"""Asynchronous (steady-state) master-slave farm.

Grefenstette (1981) "proposed four PGA types and the first three were a
sort of global PGAs.  They differed in accessing to (global) shared
memories."  The generation-free variant: the master keeps every slave busy
with exactly one individual at a time; whenever *any* evaluation returns,
the result is inserted steady-state and a fresh offspring is bred and
dispatched immediately.  No barrier — a slow slave delays only its own
individual, so heterogeneous farms stay fully utilised (the weakness of
the synchronous farm E2/E9 quantify).

:class:`SimulatedAsyncMasterSlave` measures utilisation and time on the
simulated cluster; genetics are a steady-state GA whose insertion order
depends on completion order (so, unlike the synchronous farm, the
trajectory legitimately depends on machine speeds — that *is* the model).
"""

from __future__ import annotations

import math

import numpy as np

from ..cluster.machine import SimulatedCluster
from ..core.config import GAConfig
from ..obs.session import current_obs
from ..core.individual import Individual, best_of
from ..core.problem import Problem
from ..core.rng import ensure_rng
from ..core.variation import offspring_pair
from ..runtime.deme import emit_generation
from .base import ParallelEngine, RunReport, register_engine
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)

__all__ = ["SimulatedAsyncMasterSlave", "AsyncMasterSlaveReport"]


#: deprecated alias — every engine now returns the shared report schema
AsyncMasterSlaveReport = RunReport


class SimulatedAsyncMasterSlave(ParallelEngine):
    """Continuous-dispatch steady-state farm on a simulated cluster.

    Implemented directly on the event heap (no coroutine per slave needed):
    the master tracks each slave's next completion time, always advancing
    to the earliest one — a textbook discrete-event loop.

    Parameters
    ----------
    problem, config:
        ``config.population_size`` is the shared population;
        ``config.replacement`` the steady-state insertion rule.
    cluster:
        Node 0 = master, nodes 1.. = slaves (speeds may differ, and it
        pays: fast slaves simply complete more evaluations).
    eval_cost:
        Simulated seconds per evaluation at speed 1.
    """

    classification = ModelClassification(
        grain=GrainModel.GLOBAL,
        walk=WalkStrategy.SINGLE,
        parallelism=ParallelismKind.DATA,
        programming=ProgrammingModel.CENTRALIZED,
    )

    def __init__(
        self,
        problem: Problem,
        config: GAConfig | None = None,
        *,
        cluster: SimulatedCluster,
        eval_cost: float = 1e-2,
        seed: int | None = None,
    ) -> None:
        if cluster.n_nodes < 2:
            raise ValueError("async master-slave needs >= 2 nodes")
        if eval_cost <= 0:
            raise ValueError(f"eval_cost must be positive, got {eval_cost}")
        self.problem = problem
        self.config = (config or GAConfig()).resolved_for(problem.spec)
        self.cluster = cluster
        self.eval_cost = eval_cost
        self.rng = ensure_rng(seed)
        self.population: list[Individual] = []
        self.evaluations = 0

    def _round_trip(self, slave: int, start: float) -> float:
        """Dispatch + compute + reply duration for one individual on
        ``slave``, dispatched at ``start``.

        Downtime on the slave *suspends* the evaluation until the node
        repairs (:meth:`~repro.cluster.node.Node.finish_time`); a
        permanent crash returns ``inf`` — the individual is lost and the
        slave retires from the farm.  On an always-up node this is exactly
        ``send + compute + reply``.
        """
        net = self.cluster.network
        send = net.transit_time(0, slave, 100.0)
        node = self.cluster.node(slave)
        compute_done = node.finish_time(start + send, node.compute_time(self.eval_cost))
        if math.isinf(compute_done):
            return math.inf
        reply = net.transit_time(slave, 0, 8.0)
        return (compute_done - start) + reply

    def _breed_one(self) -> Individual:
        parents = self.config.selection(self.rng, self.population, 2, self.problem.maximize)
        a, _ = offspring_pair(
            self.rng, self.config, self.problem.spec, parents[0], parents[1]
        )
        return a

    def _insert(self, child: Individual) -> None:
        from ..core.population import Population

        pop = Population(self.population, maximize=self.problem.maximize)
        self.config.replacement(self.rng, pop, child)
        self.population = pop.individuals

    def run(self, max_evaluations: int = 5_000) -> RunReport:
        if max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        # initial population evaluated up-front (charged to the farm below)
        genomes = self.problem.spec.sample_population(
            self.rng, self.config.population_size
        )
        self.population = []
        for g in genomes:
            ind = Individual(genome=g)
            ind.fitness = self.problem.evaluate(g)
            self.population.append(ind)
        self.evaluations = len(self.population)

        n_slaves = self.cluster.n_nodes - 1
        now = 0.0
        busy_until = np.zeros(n_slaves)
        busy_time = np.zeros(n_slaves)
        completions = [0] * n_slaves
        in_flight: dict[int, Individual] = {}
        obs = current_obs()

        def dispatch(s: int, child: Individual) -> None:
            """Hand ``child`` to slave ``s`` (a permanent crash retires the
            slave: ``busy_until`` goes to inf and the individual is lost)."""
            rt = self._round_trip(s + 1, now)
            busy_until[s] = now + rt
            if math.isfinite(rt):
                busy_time[s] += rt
                in_flight[s] = child
                if obs is not None:
                    # the charged round-trip [dispatch, completion]: span
                    # durations per track sum to exactly busy_time[s]
                    obs.spans.record(
                        "evaluate", now, now + rt,
                        track=f"slave-{s + 1}", node=s + 1,
                    )
            else:
                in_flight.pop(s, None)

        # prime every slave
        for s in range(n_slaves):
            dispatch(s, self._breed_one())

        solved = False
        while self.evaluations < max_evaluations and not solved and in_flight:
            s = int(np.argmin(busy_until))
            now = float(busy_until[s])
            child = in_flight[s]
            child.fitness = self.problem.evaluate(child.genome)
            self.evaluations += 1
            completions[s] += 1
            self._insert(child)
            # the loop advances its own clock (no coroutines), so trace
            # records carry `now` explicitly rather than sim.now
            emit_generation(
                self.cluster.trace, now, deme=0, generation=self.evaluations,
                best=float(self.global_best().require_fitness()),
            )
            if self.problem.is_solved(self.global_best().require_fitness()):
                solved = True
                break
            dispatch(s, self._breed_one())

        horizon = max(now, 1e-12)
        utilisation = [float(min(1.0, busy_time[s] / horizon)) for s in range(n_slaves)]
        if solved:
            stop_reason = "solved"
        elif not in_flight:
            stop_reason = "all-slaves-crashed"
        else:
            stop_reason = "max_evaluations"
        return self._report(
            best=self.global_best().copy(),
            evaluations=self.evaluations,
            epochs=sum(completions),
            solved=solved,
            stop_reason=stop_reason,
            sim_time=now,
            extras={"utilisation": utilisation, "completions": completions},
        )

    def global_best(self) -> Individual:
        return best_of(self.population, self.problem.maximize)


def _async_master_slave_contract(seed: int):
    from ..problems.binary import OneMax

    cluster = SimulatedCluster(4)
    farm = SimulatedAsyncMasterSlave(
        OneMax(24), GAConfig(population_size=16), cluster=cluster, seed=seed
    )
    return cluster.trace, farm.run(max_evaluations=200)


register_engine(
    "async-master-slave",
    SimulatedAsyncMasterSlave,
    contract=_async_master_slave_contract,
)
