"""Asynchronous (steady-state) master-slave farm.

Grefenstette (1981) "proposed four PGA types and the first three were a
sort of global PGAs.  They differed in accessing to (global) shared
memories."  The generation-free variant: the master keeps every slave busy
with exactly one individual at a time; whenever *any* evaluation returns,
the result is inserted steady-state and a fresh offspring is bred and
dispatched immediately.  No barrier — a slow slave delays only its own
individual, so heterogeneous farms stay fully utilised (the weakness of
the synchronous farm E2/E9 quantify).

:class:`SimulatedAsyncMasterSlave` measures utilisation and time on the
simulated cluster; genetics are a steady-state GA whose insertion order
depends on completion order (so, unlike the synchronous farm, the
trajectory legitimately depends on machine speeds — that *is* the model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.machine import SimulatedCluster
from ..core.config import GAConfig
from ..core.individual import Individual, best_of
from ..core.problem import Problem
from ..core.rng import ensure_rng
from ..core.variation import offspring_pair
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)

__all__ = ["SimulatedAsyncMasterSlave", "AsyncMasterSlaveReport"]


@dataclass
class AsyncMasterSlaveReport:
    """Outcome of an asynchronous farm run."""

    best: Individual
    evaluations: int
    sim_time: float
    solved: bool
    utilisation: list[float]   # busy fraction per slave
    completions: list[int]     # evaluations completed per slave

    @property
    def best_fitness(self) -> float:
        return self.best.require_fitness()

    @property
    def mean_utilisation(self) -> float:
        return float(np.mean(self.utilisation)) if self.utilisation else 0.0


class SimulatedAsyncMasterSlave:
    """Continuous-dispatch steady-state farm on a simulated cluster.

    Implemented directly on the event heap (no coroutine per slave needed):
    the master tracks each slave's next completion time, always advancing
    to the earliest one — a textbook discrete-event loop.

    Parameters
    ----------
    problem, config:
        ``config.population_size`` is the shared population;
        ``config.replacement`` the steady-state insertion rule.
    cluster:
        Node 0 = master, nodes 1.. = slaves (speeds may differ, and it
        pays: fast slaves simply complete more evaluations).
    eval_cost:
        Simulated seconds per evaluation at speed 1.
    """

    classification = ModelClassification(
        grain=GrainModel.GLOBAL,
        walk=WalkStrategy.SINGLE,
        parallelism=ParallelismKind.DATA,
        programming=ProgrammingModel.CENTRALIZED,
    )

    def __init__(
        self,
        problem: Problem,
        config: GAConfig | None = None,
        *,
        cluster: SimulatedCluster,
        eval_cost: float = 1e-2,
        seed: int | None = None,
    ) -> None:
        if cluster.n_nodes < 2:
            raise ValueError("async master-slave needs >= 2 nodes")
        if eval_cost <= 0:
            raise ValueError(f"eval_cost must be positive, got {eval_cost}")
        self.problem = problem
        self.config = (config or GAConfig()).resolved_for(problem.spec)
        self.cluster = cluster
        self.eval_cost = eval_cost
        self.rng = ensure_rng(seed)
        self.population: list[Individual] = []
        self.evaluations = 0

    def _round_trip(self, slave: int) -> float:
        """Dispatch + compute + reply time for one individual on ``slave``."""
        net = self.cluster.network
        send = net.transit_time(0, slave, 100.0)
        compute = self.cluster.node(slave).compute_time(self.eval_cost)
        reply = net.transit_time(slave, 0, 8.0)
        return send + compute + reply

    def _breed_one(self) -> Individual:
        parents = self.config.selection(self.rng, self.population, 2, self.problem.maximize)
        a, _ = offspring_pair(
            self.rng, self.config, self.problem.spec, parents[0], parents[1]
        )
        return a

    def _insert(self, child: Individual) -> None:
        from ..core.population import Population

        pop = Population(self.population, maximize=self.problem.maximize)
        self.config.replacement(self.rng, pop, child)
        self.population = pop.individuals

    def run(self, max_evaluations: int = 5_000) -> AsyncMasterSlaveReport:
        if max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        # initial population evaluated up-front (charged to the farm below)
        genomes = self.problem.spec.sample_population(
            self.rng, self.config.population_size
        )
        self.population = []
        for g in genomes:
            ind = Individual(genome=g)
            ind.fitness = self.problem.evaluate(g)
            self.population.append(ind)
        self.evaluations = len(self.population)

        n_slaves = self.cluster.n_nodes - 1
        now = 0.0
        busy_until = np.zeros(n_slaves)
        busy_time = np.zeros(n_slaves)
        completions = [0] * n_slaves
        in_flight: dict[int, Individual] = {}
        # prime every slave
        for s in range(n_slaves):
            child = self._breed_one()
            rt = self._round_trip(s + 1)
            busy_until[s] = now + rt
            busy_time[s] += rt
            in_flight[s] = child

        solved = False
        while self.evaluations < max_evaluations and not solved:
            s = int(np.argmin(busy_until))
            now = float(busy_until[s])
            child = in_flight[s]
            child.fitness = self.problem.evaluate(child.genome)
            self.evaluations += 1
            completions[s] += 1
            self._insert(child)
            # the loop advances its own clock (no coroutines), so trace
            # records carry `now` explicitly rather than sim.now
            self.cluster.trace.record(
                now, "generation", deme=0, generation=self.evaluations,
                best=float(self.global_best().require_fitness()),
            )
            if self.problem.is_solved(self.global_best().require_fitness()):
                solved = True
                break
            fresh = self._breed_one()
            rt = self._round_trip(s + 1)
            busy_until[s] = now + rt
            busy_time[s] += rt
            in_flight[s] = fresh

        horizon = max(now, 1e-12)
        utilisation = [float(min(1.0, busy_time[s] / horizon)) for s in range(n_slaves)]
        return AsyncMasterSlaveReport(
            best=self.global_best().copy(),
            evaluations=self.evaluations,
            sim_time=now,
            solved=solved,
            utilisation=utilisation,
            completions=completions,
        )

    def global_best(self) -> Individual:
        return best_of(self.population, self.problem.maximize)
