"""Fine-grained (cellular) parallel GA.

One individual per grid cell; mating is restricted to a small overlapping
neighbourhood, so good genes spread by diffusion (Manderick & Spiessens
1989; massively parallel SIMD machines held one individual per processor).

Giacobini, Alba & Tomassini (2003) studied *selection pressure* under
asynchronous cell-update policies; we implement their five canonical
orders:

- ``synchronous``      — all cells compute offspring from the *old* grid,
  the grid flips at once (SIMD lock-step).
- ``line-sweep``       — cells updated in fixed row-major order, each seeing
  earlier updates immediately.
- ``fixed-random-sweep`` — one random permutation drawn at start, reused
  every sweep.
- ``new-random-sweep``  — a fresh random permutation every sweep.
- ``uniform-choice``    — n cells drawn with replacement per sweep (some
  cells may update twice, some not at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from ..cluster.trace import Trace
from ..core.config import GAConfig
from ..core.individual import Individual, best_of
from ..core.problem import Problem
from ..core.rng import ensure_rng
from ..core.termination import EvolutionState, MaxGenerations, Termination
from ..core.variation import offspring_pair
from ..topology.neighborhood import Neighborhood, VonNeumannNeighborhood
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)

__all__ = ["CellularGA", "CellularResult", "UpdatePolicy", "UPDATE_POLICIES"]

UpdatePolicy = Literal[
    "synchronous",
    "line-sweep",
    "fixed-random-sweep",
    "new-random-sweep",
    "uniform-choice",
]

UPDATE_POLICIES: tuple[str, ...] = (
    "synchronous",
    "line-sweep",
    "fixed-random-sweep",
    "new-random-sweep",
    "uniform-choice",
)


@dataclass
class CellularResult:
    """Outcome of a cellular run."""

    best: Individual
    evaluations: int
    sweeps: int
    solved: bool
    stop_reason: str
    best_curve: list[float] = field(repr=False, default_factory=list)
    mean_curve: list[float] = field(repr=False, default_factory=list)

    @property
    def best_fitness(self) -> float:
        return self.best.require_fitness()


class CellularGA:
    """Toroidal-grid cellular GA.

    Parameters
    ----------
    problem, config:
        Standard configuration; ``config.population_size`` is ignored in
        favour of ``rows * cols``.
    rows, cols:
        Grid shape (torus).
    neighborhood:
        Mating neighbourhood (von Neumann by default, à la Giacobini).
    update:
        One of :data:`UPDATE_POLICIES`.
    replace_if_better:
        If True a cell only adopts an offspring that improves on it (the
        usual elitist cGA rule); if False the offspring always replaces.
    """

    classification = ModelClassification(
        grain=GrainModel.FINE_GRAINED,
        walk=WalkStrategy.MULTIPLE,
        parallelism=ParallelismKind.DATA,
        programming=ProgrammingModel.DISTRIBUTED,
    )

    def __init__(
        self,
        problem: Problem,
        config: GAConfig | None = None,
        *,
        rows: int = 16,
        cols: int = 16,
        neighborhood: Neighborhood | None = None,
        update: str = "synchronous",
        replace_if_better: bool = True,
        seed: int | np.random.Generator | None = None,
        trace: Trace | None = None,
    ) -> None:
        if rows < 2 or cols < 2:
            raise ValueError(f"grid must be at least 2x2, got {rows}x{cols}")
        if update not in UPDATE_POLICIES:
            raise ValueError(
                f"unknown update policy {update!r}; choose from {UPDATE_POLICIES}"
            )
        self.problem = problem
        self.config = (config or GAConfig()).resolved_for(problem.spec)
        self.rows, self.cols = rows, cols
        self.n_cells = rows * cols
        self.neighborhood = neighborhood or VonNeumannNeighborhood()
        self.update = update
        self.replace_if_better = replace_if_better
        self.rng = ensure_rng(seed)
        self.trace = trace
        self.grid: list[Individual] = []
        self.evaluations = 0
        self.sweeps = 0
        self.best_curve: list[float] = []
        self.mean_curve: list[float] = []
        self._fixed_order: np.ndarray | None = None
        self._best_so_far: Individual | None = None

    # -- setup ---------------------------------------------------------------------
    def initialize(self, individuals: Sequence[Individual] | None = None) -> None:
        if individuals is None:
            genomes = self.problem.spec.sample_population(self.rng, self.n_cells)
            individuals = [Individual(genome=g) for g in genomes]
        if len(individuals) != self.n_cells:
            raise ValueError(
                f"grid needs exactly {self.n_cells} individuals, got {len(individuals)}"
            )
        self.grid = list(individuals)
        self._evaluate_batch([ind for ind in self.grid if not ind.evaluated])
        self._track()

    def _evaluate_batch(self, individuals: Sequence[Individual]) -> None:
        """Fill in fitnesses for ``individuals`` with one stacked evaluation."""
        if not individuals:
            return
        fitnesses = self.problem.evaluate_many([ind.genome for ind in individuals])
        for ind, f in zip(individuals, fitnesses):
            ind.fitness = float(f)
        self.evaluations += len(individuals)

    # -- stepping ------------------------------------------------------------------
    def _cell_order(self) -> np.ndarray:
        n = self.n_cells
        if self.update in ("synchronous", "line-sweep"):
            return np.arange(n)
        if self.update == "fixed-random-sweep":
            if self._fixed_order is None:
                self._fixed_order = self.rng.permutation(n)
            return self._fixed_order
        if self.update == "new-random-sweep":
            return self.rng.permutation(n)
        # uniform choice: n draws with replacement
        return self.rng.integers(0, n, size=n)

    def _offspring_for_cell(
        self, idx: int, source: list[Individual], *, evaluate: bool = True
    ) -> Individual:
        """Local selection + variation for one cell.

        With ``evaluate=False`` the child is returned unevaluated; the
        synchronous sweep defers fitness to one stacked batch evaluation
        (evaluation is pure and consumes no RNG, so the trajectory is
        unchanged).
        """
        nbr_idx = self.neighborhood.neighbor_indices(idx, self.rows, self.cols)
        pool = [source[j] for j in nbr_idx] + [source[idx]]
        parents = self.config.selection(
            self.rng, pool, 2, self.problem.maximize
        )
        a, b = offspring_pair(
            self.rng,
            self.config,
            self.problem.spec,
            parents[0],
            parents[1],
            generation=self.sweeps + 1,
        )
        child = a if self.rng.random() < 0.5 else b
        if evaluate:
            child.fitness = self.problem.evaluate(child.genome)
            self.evaluations += 1
        return child

    def _maybe_replace(self, idx: int, child: Individual, target: list[Individual]) -> None:
        if not self.replace_if_better:
            target[idx] = child
            return
        incumbent = target[idx]
        cf, pf = child.require_fitness(), incumbent.require_fitness()
        improves = cf > pf if self.problem.maximize else cf < pf
        if improves:
            target[idx] = child

    def step(self) -> None:
        """One sweep: every cell position gets one update opportunity."""
        if not self.grid:
            self.initialize()
        if self.update == "synchronous":
            old = list(self.grid)  # offspring all computed against the old grid
            new = list(self.grid)
            order = self._cell_order()
            children = [
                self._offspring_for_cell(int(idx), old, evaluate=False)
                for idx in order
            ]
            self._evaluate_batch(children)  # one (n_cells, L) stacked evaluation
            for idx, child in zip(order, children):
                self._maybe_replace(int(idx), child, new)
            self.grid = new
        else:
            for idx in self._cell_order():
                child = self._offspring_for_cell(int(idx), self.grid)
                self._maybe_replace(int(idx), child, self.grid)
        self.sweeps += 1
        self._track()

    # -- monitoring -----------------------------------------------------------------
    def _track(self) -> None:
        best = best_of(self.grid, self.problem.maximize)
        if self._best_so_far is None or self.problem.is_improvement(
            best.require_fitness(), self._best_so_far.require_fitness()
        ):
            self._best_so_far = best.copy()
        f = np.asarray([ind.require_fitness() for ind in self.grid])
        self.best_curve.append(self._best_so_far.require_fitness())
        self.mean_curve.append(float(f.mean()))
        if self.trace is not None:
            self.trace.record(
                float(self.sweeps),
                "generation",
                deme=0,
                generation=self.sweeps,
                best=float(self._best_so_far.require_fitness()),
            )

    @property
    def best_so_far(self) -> Individual:
        if self._best_so_far is None:
            raise RuntimeError("cellular GA not initialised")
        return self._best_so_far

    def fitness_grid(self) -> np.ndarray:
        """Current fitnesses as a (rows, cols) array — for diffusion plots."""
        f = np.asarray([ind.require_fitness() for ind in self.grid])
        return f.reshape(self.rows, self.cols)

    def _solved(self) -> bool:
        return self._best_so_far is not None and self.problem.is_solved(
            self._best_so_far.require_fitness()
        )

    def run(self, termination: Termination | int | None = None) -> CellularResult:
        if termination is None:
            termination = MaxGenerations(100)
        elif isinstance(termination, int):
            termination = MaxGenerations(termination)
        if not self.grid:
            self.initialize()
        while not termination.should_stop(self._state()) and not self._solved():
            self.step()
        solved = self._solved()
        return CellularResult(
            best=self.best_so_far.copy(),
            evaluations=self.evaluations,
            sweeps=self.sweeps,
            solved=solved,
            stop_reason="solved" if solved else termination.reason(),
            best_curve=self.best_curve,
            mean_curve=self.mean_curve,
        )

    def _state(self) -> EvolutionState:
        return EvolutionState(
            generation=self.sweeps,
            evaluations=self.evaluations,
            best_fitness=(
                self._best_so_far.require_fitness() if self._best_so_far else None
            ),
            maximize=self.problem.maximize,
        )
