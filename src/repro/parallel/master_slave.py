"""Global (master-slave) parallel GA.

The survey's oldest lineage: Bethke (1976) analysed "the efficiency of
using the processing capacity" of exactly this model and "identified some
bottlenecks that limit the parallel efficiency of PGAs"; Grefenstette's
first three PGA types were global; Gagné et al. (2003) argued the
master-slave "was superior to the currently more popular island-model when
exploiting Beowulfs and networks of heterogenous workstations" given
*transparency, robustness and adaptivity* — which here means work-stealing
dispatch and re-dispatch of chunks lost to hard failures.

Two drivers again:

:class:`MasterSlaveGA`
    Real execution: a plain generational GA whose fitness evaluations run
    on a (thread/process/serial) executor.  Genetically identical to the
    sequential GA — data parallelism only.

:class:`SimulatedMasterSlave`
    Timed execution on a :class:`~repro.cluster.machine.SimulatedCluster`:
    the master (node 0) farms evaluation chunks to slave nodes, waits for
    replies, and — in fault-tolerant mode — re-dispatches chunks whose
    slaves died.  Produces per-generation makespans for speedup (E2) and
    robustness (E9) tables.
"""

from __future__ import annotations

from ..cluster.machine import SimulatedCluster
from ..cluster.sim import Timeout
from ..obs.session import current_obs
from ..core.config import GAConfig
from ..core.engine import GenerationalEngine
from ..core.problem import Problem
from ..core.termination import MaxGenerations, Termination
from ..runtime.deme import emit_generation
from ..runtime.executor import SerialExecutor, chunk_indices
from .base import ParallelEngine, RunReport, register_engine
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)

__all__ = ["MasterSlaveGA", "SimulatedMasterSlave", "MasterSlaveReport"]


class MasterSlaveGA(GenerationalEngine):
    """Generational GA with executor-farmed fitness evaluation.

    This *is* the sequential GA — same selection, same variation, same
    convergence in expectation — which is the defining property of the
    global model: "data parallelism is essentially sequential; only data
    manipulation is parallelized" (survey §1.2).
    """

    classification = ModelClassification(
        grain=GrainModel.GLOBAL,
        walk=WalkStrategy.SINGLE,
        parallelism=ParallelismKind.DATA,
        programming=ProgrammingModel.CENTRALIZED,
    )

    def __init__(
        self,
        problem: Problem,
        config: GAConfig | None = None,
        *,
        executor=None,
        seed=None,
        callbacks=None,
    ) -> None:
        super().__init__(
            problem,
            config,
            seed=seed,
            evaluator=executor or SerialExecutor(),
            callbacks=callbacks,
        )


#: deprecated alias — every engine now returns the shared report schema
MasterSlaveReport = RunReport


class SimulatedMasterSlave(ParallelEngine):
    """Timed master-slave farm on a simulated cluster.

    Parameters
    ----------
    cluster:
        Node 0 is the master; nodes 1..n are slaves.  Slave speeds may be
        heterogeneous and slaves may fail per the cluster's fault plan.
    eval_cost:
        Simulated seconds of work per fitness evaluation (speed-1 node).
    chunks_per_worker:
        Dispatch granularity: population is split into
        ``workers * chunks_per_worker`` chunks; finer chunks = better load
        balance on heterogeneous slaves, more messages.
    fault_tolerant:
        If True, the master re-dispatches chunks whose slave failed
        (detected by watchdog timeout) — Gagné's robustness extension, so
        every generation completes fully at the cost of extra time.
        If False, lost chunks are abandoned: the run carries on but
        ``lost_chunks`` counts the evaluations that never came back (the
        genetic results themselves are computed out-of-band; the simulation
        prices the farm, and the counter is the degradation signal E9
        reports).
    reply_timeout_factor:
        Watchdog: a chunk is declared lost after
        ``factor x`` its expected completion time.
    """

    classification = ModelClassification(
        grain=GrainModel.GLOBAL,
        walk=WalkStrategy.SINGLE,
        parallelism=ParallelismKind.DATA,
        programming=ProgrammingModel.CENTRALIZED,
    )

    def __init__(
        self,
        problem: Problem,
        config: GAConfig | None = None,
        *,
        cluster: SimulatedCluster,
        eval_cost: float = 1e-2,
        genome_payload: float = 100.0,
        chunks_per_worker: int = 1,
        fault_tolerant: bool = True,
        reply_timeout_factor: float = 3.0,
        seed: int | None = None,
    ) -> None:
        if cluster.n_nodes < 2:
            raise ValueError("master-slave needs >= 2 nodes (1 master + slaves)")
        if eval_cost <= 0:
            raise ValueError(f"eval_cost must be positive, got {eval_cost}")
        if chunks_per_worker < 1:
            raise ValueError(f"chunks_per_worker must be >= 1, got {chunks_per_worker}")
        self.problem = problem
        self.cluster = cluster
        self.eval_cost = eval_cost
        self.genome_payload = genome_payload
        self.chunks_per_worker = chunks_per_worker
        self.fault_tolerant = fault_tolerant
        self.reply_timeout_factor = reply_timeout_factor
        self.engine = GenerationalEngine(
            problem, config, seed=seed, evaluator=self  # we intercept evaluate()
        )
        self.workers = cluster.n_nodes - 1
        self.generation_makespans: list[float] = []
        self.redispatches = 0
        self.lost_chunks = 0
        self._pending_batch: list | None = None

    # -- FitnessEvaluator interface -------------------------------------------------
    def evaluate(self, problem: Problem, genomes) -> list[float]:
        """Called synchronously by the engine; performs the *real* fitness
        computation immediately and remembers the batch so the running
        simulation coroutine can charge its simulated cost."""
        fitnesses = problem.evaluate_many(genomes)
        if self._pending_batch is not None:
            self._pending_batch.append(len(genomes))
        return fitnesses

    # -- simulation ----------------------------------------------------------------
    def _farm_generation(self, n_evals: int):
        """Coroutine: simulate farming ``n_evals`` evaluations to slaves.

        The master consults its failure detector before every dispatch —
        work is only ever handed to a node that is up *right now* (the
        trace-invariant the verification subsystem enforces); a slave that
        dies mid-computation is caught by the watchdog instead.  When no
        slave is alive and nothing is in flight, the master computes the
        remaining chunks itself (Gagné's reliable-master last resort).

        Returns (via StopIteration value) the makespan of the generation.
        """
        sim = self.cluster.sim
        start = sim.now
        obs = self._obs
        frame = (
            obs.spans.begin("farm", t0=start, track="master", evals=n_evals)
            if obs is not None
            else None
        )
        master_inbox = self.cluster.inbox("master")
        spans = chunk_indices(n_evals, self.workers * self.chunks_per_worker)
        # round-robin initial assignment; work-stealing on completion
        unassigned = list(range(len(spans)))
        chunk_sizes = {c: spans[c][1] - spans[c][0] for c in unassigned}
        outstanding: dict[int, tuple[int, float]] = {}  # chunk -> (node, deadline)
        done: set[int] = set()
        idle_slaves = list(range(1, self.cluster.n_nodes))

        def dispatch(chunk: int, node_id: int) -> None:
            node = self.cluster.node(node_id)
            work = chunk_sizes[chunk] * self.eval_cost
            send_t = self.cluster.transit_time(
                0, node_id, self.genome_payload * chunk_sizes[chunk]
            )
            compute = node.compute_time(work)
            reply_t = self.cluster.transit_time(node_id, 0, 8.0 * chunk_sizes[chunk])
            finish = sim.now + send_t + compute + reply_t
            alive = not node.fails_during(sim.now, finish)
            if alive:
                sim.put_later(finish - sim.now, master_inbox, ("done", chunk, node_id))
                if obs is not None:
                    track = f"slave-{node_id}"
                    obs.spans.record(
                        "comm", sim.now, sim.now + send_t,
                        track=track, chunk=chunk, direction="send",
                    )
                    obs.spans.record(
                        "evaluate", sim.now + send_t, sim.now + send_t + compute,
                        track=track, chunk=chunk, node=node_id,
                        evals=chunk_sizes[chunk],
                    )
                    obs.spans.record(
                        "comm", sim.now + send_t + compute, finish,
                        track=track, chunk=chunk, direction="reply",
                    )
            # watchdog fires regardless; ignored if reply arrived first
            expected = finish - sim.now
            deadline = sim.now + max(expected * self.reply_timeout_factor, 1e-9)
            outstanding[chunk] = (node_id, deadline)
            sim.put_later(deadline - sim.now, master_inbox, ("watchdog", chunk, node_id))
            self.cluster.record(
                "dispatch", chunk=chunk, node=node_id, size=chunk_sizes[chunk],
                alive=alive,
            )

        def assign_pending() -> None:
            """Pair unassigned chunks with currently-live idle slaves."""
            while unassigned:
                live = [n for n in idle_slaves if self.cluster.node(n).is_up(sim.now)]
                if not live:
                    return
                target = live[0]
                idle_slaves.remove(target)
                dispatch(unassigned.pop(0), target)

        assign_pending()
        while len(done) < len(spans):
            if unassigned and not outstanding:
                # nothing in flight and no live slave took the work: the
                # (reliable) master grinds through a chunk itself
                chunk = unassigned.pop(0)
                work = chunk_sizes[chunk] * self.eval_cost
                self.cluster.record("master-compute", chunk=chunk, size=chunk_sizes[chunk])
                t0 = sim.now
                yield Timeout(self.cluster.node(0).compute_time(work))
                if obs is not None:
                    obs.spans.record(
                        "master-compute", t0, sim.now, track="master",
                        chunk=chunk, evals=chunk_sizes[chunk],
                    )
                done.add(chunk)
                assign_pending()
                continue
            msg = yield master_inbox
            kind, chunk, node_id = msg
            if kind == "done":
                if chunk in done or chunk not in outstanding:
                    continue
                done.add(chunk)
                outstanding.pop(chunk, None)
                idle_slaves.append(node_id)
                assign_pending()
            elif kind == "watchdog":
                if chunk in done or chunk not in outstanding:
                    continue
                assigned_node, deadline = outstanding[chunk]
                if assigned_node != node_id or sim.now < deadline:
                    continue  # stale watchdog from a previous dispatch
                # chunk is lost
                outstanding.pop(chunk)
                self.cluster.record("chunk-lost", chunk=chunk, node=node_id)
                if self.fault_tolerant:
                    self.redispatches += 1
                    unassigned.append(chunk)
                    assign_pending()
                else:
                    self.lost_chunks += 1
                    done.add(chunk)  # give up on these evaluations
        if frame is not None:
            obs.spans.end(frame, sim.now)
        return sim.now - start

    def _record_generation(self) -> None:
        state = self.engine.state
        emit_generation(
            self.cluster.trace,
            self.cluster.sim.now,
            deme=0,
            generation=state.generation,
            best=float(state.best_fitness) if state.best_fitness is not None else None,
        )

    def _master_process(self, termination: Termination):
        """Master coroutine: run generations until termination."""
        engine = self.engine
        # generation 0
        self._pending_batch = []
        engine.initialize()
        n0 = sum(self._pending_batch)
        self._pending_batch = None
        makespan = yield from self._farm_generation(n0)
        self.generation_makespans.append(makespan)
        self._record_generation()
        while not termination.should_stop(engine.state) and not engine._solved():
            self._pending_batch = []
            engine.step()
            n = sum(self._pending_batch)
            self._pending_batch = None
            makespan = yield from self._farm_generation(n)
            self.generation_makespans.append(makespan)
            self._record_generation()
        self._stop_reason = "solved" if engine._solved() else termination.reason()
        # trailing watchdog timers keep the event queue warm after the last
        # generation; the farm's wall time is when the master finished
        self._finish_time = self.cluster.sim.now

    def run(self, termination: Termination | int | None = None) -> RunReport:
        if termination is None:
            termination = MaxGenerations(50)
        elif isinstance(termination, int):
            termination = MaxGenerations(termination)
        self._stop_reason = "unknown"
        self._finish_time = 0.0
        self._obs = current_obs()
        proc = self.cluster.sim.process(self._master_process(termination), "master")
        self.cluster.run()
        if not proc.finished:
            raise RuntimeError("master process deadlocked")
        result = self.engine.result(stop_reason=self._stop_reason)
        return self._report(
            best=result.best,
            evaluations=result.evaluations,
            epochs=result.generations,
            solved=result.solved,
            stop_reason=self._stop_reason,
            sim_time=self._finish_time,
            redispatches=self.redispatches,
            lost_chunks=self.lost_chunks,
            extras={
                "result": result,
                "generation_makespans": self.generation_makespans,
                "workers": self.workers,
            },
        )


def _sim_master_slave_contract(seed: int):
    from ..problems.binary import OneMax

    cluster = SimulatedCluster(4)
    farm = SimulatedMasterSlave(
        OneMax(24),
        GAConfig(population_size=16, elitism=1),
        cluster=cluster,
        seed=seed,
    )
    return cluster.trace, farm.run(6)


register_engine(
    "sim-master-slave", SimulatedMasterSlave, contract=_sim_master_slave_contract
)
