"""Hybrid PGA models: compositions of the three pure grains.

"At present, hybrid parallelism approaches are also published to … employ
advantages of both streams" (survey §1.2) and "With the advent of clusters
of SMP machines, many research works implemented a hybrid model — a
centralized model within each SMP machine, but running under a distributed
model within machines in the cluster" (§3.3).

Two canonical hybrids:

:class:`CellularIslandModel`
    Coarse-grained ring of demes where each deme is itself a *cellular* GA
    (Alba & Troya's "structured-population (cellular) GAs for the islands").

:class:`MasterSlaveIslandModel`
    Island model in which each deme farms its fitness evaluations to a
    local executor — the distributed-between / centralized-within SMP
    cluster pattern.
"""

from __future__ import annotations

import math

from ..cluster.trace import Trace
from ..core.config import GAConfig
from ..core.engine import FitnessEvaluator
from ..core.individual import Individual, best_of
from ..core.problem import Problem
from ..core.rng import spawn_rngs
from ..migration.policy import MigrationPolicy
from ..migration.schedule import MigrationSchedule, PeriodicSchedule
from ..runtime.deme import EpochLoop, emit_generation
from ..topology.static import RingTopology, Topology
from .base import ParallelEngine, RunReport, register_engine
from .cellular import CellularGA
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)
from .island import IslandModel, SimulatedIslandModel

__all__ = [
    "CellularIslandModel",
    "MasterSlaveIslandModel",
    "SimulatedMasterSlaveIslandModel",
    "HybridResult",
]


#: deprecated alias — every engine now returns the shared report schema
HybridResult = RunReport


class CellularIslandModel(EpochLoop, ParallelEngine):
    """Ring (or arbitrary topology) of cellular-GA demes.

    Migration sends each deme's best cells to its neighbours, where they
    replace the worst cells — preserving the cellular structure inside each
    island while adding the island model's coarse-grained diversity.
    """

    classification = ModelClassification(
        grain=GrainModel.HYBRID,
        walk=WalkStrategy.MULTIPLE,
        parallelism=ParallelismKind.HYBRID,
        programming=ProgrammingModel.DISTRIBUTED,
    )

    def __init__(
        self,
        problem: Problem,
        n_islands: int,
        config: GAConfig | None = None,
        *,
        rows: int = 8,
        cols: int = 8,
        topology: Topology | None = None,
        policy: MigrationPolicy | None = None,
        schedule: MigrationSchedule | None = None,
        update: str = "synchronous",
        seed: int | None = None,
        trace: Trace | None = None,
    ) -> None:
        if n_islands < 1:
            raise ValueError(f"need >= 1 island, got {n_islands}")
        self.problem = problem
        self.trace = trace
        self.topology = topology or RingTopology(n_islands)
        if self.topology.size != n_islands:
            raise ValueError("topology size must equal n_islands")
        self.policy = policy or MigrationPolicy(rate=2, replacement="worst")
        self.schedule = schedule or PeriodicSchedule(5)
        rngs = spawn_rngs(seed, n_islands + 1)
        self.rng = rngs[-1]
        self.demes = [
            CellularGA(
                problem,
                config,
                rows=rows,
                cols=cols,
                update=update,
                seed=rngs[i],
            )
            for i in range(n_islands)
        ]
        self.epoch = 0

    def initialize(self) -> None:
        for deme in self.demes:
            deme.initialize()

    # -- standard lifecycle (step grids, swap best cells, record) ---------------
    def _lifecycle_initialized(self) -> bool:
        return bool(self.demes[0].grid)

    def _lifecycle_step(self) -> None:
        for deme in self.demes:
            deme.step()

    def _lifecycle_exchange(self) -> None:
        for i, deme in enumerate(self.demes):
            if self.schedule.should_migrate(i, self.epoch, self.rng):
                ranked = sorted(
                    range(deme.n_cells),
                    key=lambda c: deme.grid[c].require_fitness(),
                    reverse=self.problem.maximize,
                )
                for dst in self.topology.neighbors_out(i):
                    migrants = [deme.grid[c].copy() for c in ranked[: self.policy.rate]]
                    self._place_migrants(self.demes[dst], migrants)

    def _lifecycle_record(self) -> None:
        for i, deme in enumerate(self.demes):
            emit_generation(
                self.trace,
                float(self.epoch),
                deme=i,
                generation=deme.sweeps,
                best=float(deme.best_so_far.require_fitness()),
            )

    def _place_migrants(self, deme: CellularGA, migrants: list[Individual]) -> None:
        """Immigrants replace the destination's worst cells in place."""
        ranked = sorted(
            range(deme.n_cells),
            key=lambda c: deme.grid[c].require_fitness(),
            reverse=not self.problem.maximize,  # worst first
        )
        for cell, migrant in zip(ranked, migrants):
            deme.grid[cell] = migrant.copy(origin="migrant")

    def global_best(self) -> Individual:
        return best_of([d.best_so_far for d in self.demes], self.problem.maximize)

    def total_evaluations(self) -> int:
        return sum(d.evaluations for d in self.demes)

    def _solved(self) -> bool:
        return self.problem.is_solved(self.global_best().require_fitness())

    def run(self, epochs: int = 100) -> RunReport:
        self.run_epochs(epochs, done=self._solved)
        solved = self._solved()
        return self._report(
            best=self.global_best().copy(),
            evaluations=self.total_evaluations(),
            epochs=self.epoch,
            solved=solved,
            stop_reason="solved" if solved else "max_epochs",
            deme_bests=[d.best_so_far.require_fitness() for d in self.demes],
        )


class MasterSlaveIslandModel(IslandModel):
    """Island model whose demes farm evaluations to local executors.

    Functionally identical to :class:`~repro.parallel.island.IslandModel`
    (the genetics are unchanged); the difference is that each deme engine
    evaluates through ``executor`` — the centralized-within-distributed
    SMP-cluster composition.
    """

    classification = ModelClassification(
        grain=GrainModel.HYBRID,
        walk=WalkStrategy.MULTIPLE,
        parallelism=ParallelismKind.HYBRID,
        programming=ProgrammingModel.HYBRID,
    )

    def __init__(self, *args, executor: FitnessEvaluator | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if executor is not None:
            for deme in self.demes:
                deme.evaluator = executor


class SimulatedMasterSlaveIslandModel(SimulatedIslandModel):
    """Cluster-timed SMP hybrid: islands whose demes farm locally.

    Each deme behaves like an island of the timed driver, but its fitness
    evaluations are farmed across ``local_workers`` co-located cores (an
    SMP node), so a generation's simulated compute shrinks by that factor
    while everything on the wire — migration, reliable delivery,
    heartbeats, checkpoints, recovery — is exactly the shared runtime's.
    This is the composition payoff of the deme-runtime layer: the hybrid
    inherits every resilience capability without one line of fault code.
    """

    classification = ModelClassification(
        grain=GrainModel.HYBRID,
        walk=WalkStrategy.MULTIPLE,
        parallelism=ParallelismKind.HYBRID,
        programming=ProgrammingModel.HYBRID,
    )

    def __init__(self, *args, local_workers: int = 4, **kwargs) -> None:
        if local_workers < 1:
            raise ValueError(f"local_workers must be >= 1, got {local_workers}")
        self.local_workers = local_workers
        super().__init__(*args, **kwargs)

    def _step_work(self, i: int, evaluations: int) -> float:
        """A deme's evaluation batch runs ``local_workers``-wide: the
        simulated generation time is the longest lane's share."""
        lanes = math.ceil(evaluations / self.local_workers)
        return lanes * self.eval_cost


def _cellular_island_contract(seed: int):
    from ..problems.binary import OneMax

    trace = Trace()
    model = CellularIslandModel(
        OneMax(24), 2, GAConfig(), rows=4, cols=4, seed=seed, trace=trace
    )
    return trace, model.run(6)


def _master_slave_island_contract(seed: int):
    from ..problems.binary import OneMax

    trace = Trace()
    model = MasterSlaveIslandModel(
        OneMax(24),
        3,
        GAConfig(population_size=12, elitism=1),
        policy=MigrationPolicy(rate=1, replacement="worst-if-better"),
        seed=seed,
        trace=trace,
    )
    return trace, model.run(6)


def _sim_master_slave_island_contract(seed: int):
    from ..cluster.machine import SimulatedCluster
    from ..problems.binary import OneMax

    cluster = SimulatedCluster(3)
    model = SimulatedMasterSlaveIslandModel(
        OneMax(24),
        3,
        GAConfig(population_size=12, elitism=1),
        cluster=cluster,
        max_epochs=8,
        local_workers=4,
        policy=MigrationPolicy(rate=1, replacement="worst-if-better"),
        seed=seed,
    )
    return cluster.trace, model.run()


register_engine(
    "cellular-island", CellularIslandModel, contract=_cellular_island_contract
)
register_engine(
    "master-slave-island",
    MasterSlaveIslandModel,
    contract=_master_slave_island_contract,
)
register_engine(
    "sim-master-slave-island",
    SimulatedMasterSlaveIslandModel,
    contract=_sim_master_slave_island_contract,
    conserved_kinds=("migration",),
)
