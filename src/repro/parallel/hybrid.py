"""Hybrid PGA models: compositions of the three pure grains.

"At present, hybrid parallelism approaches are also published to … employ
advantages of both streams" (survey §1.2) and "With the advent of clusters
of SMP machines, many research works implemented a hybrid model — a
centralized model within each SMP machine, but running under a distributed
model within machines in the cluster" (§3.3).

Two canonical hybrids:

:class:`CellularIslandModel`
    Coarse-grained ring of demes where each deme is itself a *cellular* GA
    (Alba & Troya's "structured-population (cellular) GAs for the islands").

:class:`MasterSlaveIslandModel`
    Island model in which each deme farms its fitness evaluations to a
    local executor — the distributed-between / centralized-within SMP
    cluster pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.trace import Trace
from ..core.config import GAConfig
from ..core.engine import FitnessEvaluator
from ..core.individual import Individual, best_of
from ..core.problem import Problem
from ..core.rng import spawn_rngs
from ..migration.policy import MigrationPolicy
from ..migration.schedule import MigrationSchedule, PeriodicSchedule
from ..topology.static import RingTopology, Topology
from .cellular import CellularGA
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)
from .island import IslandModel

__all__ = ["CellularIslandModel", "MasterSlaveIslandModel", "HybridResult"]


@dataclass
class HybridResult:
    """Outcome of a hybrid run."""

    best: Individual
    evaluations: int
    epochs: int
    solved: bool
    deme_bests: list[float] = field(default_factory=list)

    @property
    def best_fitness(self) -> float:
        return self.best.require_fitness()


class CellularIslandModel:
    """Ring (or arbitrary topology) of cellular-GA demes.

    Migration sends each deme's best cells to its neighbours, where they
    replace the worst cells — preserving the cellular structure inside each
    island while adding the island model's coarse-grained diversity.
    """

    classification = ModelClassification(
        grain=GrainModel.HYBRID,
        walk=WalkStrategy.MULTIPLE,
        parallelism=ParallelismKind.HYBRID,
        programming=ProgrammingModel.DISTRIBUTED,
    )

    def __init__(
        self,
        problem: Problem,
        n_islands: int,
        config: GAConfig | None = None,
        *,
        rows: int = 8,
        cols: int = 8,
        topology: Topology | None = None,
        policy: MigrationPolicy | None = None,
        schedule: MigrationSchedule | None = None,
        update: str = "synchronous",
        seed: int | None = None,
        trace: Trace | None = None,
    ) -> None:
        if n_islands < 1:
            raise ValueError(f"need >= 1 island, got {n_islands}")
        self.problem = problem
        self.trace = trace
        self.topology = topology or RingTopology(n_islands)
        if self.topology.size != n_islands:
            raise ValueError("topology size must equal n_islands")
        self.policy = policy or MigrationPolicy(rate=2, replacement="worst")
        self.schedule = schedule or PeriodicSchedule(5)
        rngs = spawn_rngs(seed, n_islands + 1)
        self.rng = rngs[-1]
        self.demes = [
            CellularGA(
                problem,
                config,
                rows=rows,
                cols=cols,
                update=update,
                seed=rngs[i],
            )
            for i in range(n_islands)
        ]
        self.epoch = 0

    def initialize(self) -> None:
        for deme in self.demes:
            deme.initialize()

    def step_epoch(self) -> None:
        if not self.demes[0].grid:
            self.initialize()
        self.epoch += 1
        for deme in self.demes:
            deme.step()
        if self.trace is not None:
            for i, deme in enumerate(self.demes):
                self.trace.record(
                    float(self.epoch),
                    "generation",
                    deme=i,
                    generation=deme.sweeps,
                    best=float(deme.best_so_far.require_fitness()),
                )
        for i, deme in enumerate(self.demes):
            if self.schedule.should_migrate(i, self.epoch, self.rng):
                ranked = sorted(
                    range(deme.n_cells),
                    key=lambda c: deme.grid[c].require_fitness(),
                    reverse=self.problem.maximize,
                )
                for dst in self.topology.neighbors_out(i):
                    migrants = [deme.grid[c].copy() for c in ranked[: self.policy.rate]]
                    self._place_migrants(self.demes[dst], migrants)

    def _place_migrants(self, deme: CellularGA, migrants: list[Individual]) -> None:
        """Immigrants replace the destination's worst cells in place."""
        ranked = sorted(
            range(deme.n_cells),
            key=lambda c: deme.grid[c].require_fitness(),
            reverse=not self.problem.maximize,  # worst first
        )
        for cell, migrant in zip(ranked, migrants):
            deme.grid[cell] = migrant.copy(origin="migrant")

    def global_best(self) -> Individual:
        return best_of([d.best_so_far for d in self.demes], self.problem.maximize)

    def total_evaluations(self) -> int:
        return sum(d.evaluations for d in self.demes)

    def _solved(self) -> bool:
        return self.problem.is_solved(self.global_best().require_fitness())

    def run(self, epochs: int = 100) -> HybridResult:
        if not self.demes[0].grid:
            self.initialize()
        while self.epoch < epochs and not self._solved():
            self.step_epoch()
        return HybridResult(
            best=self.global_best().copy(),
            evaluations=self.total_evaluations(),
            epochs=self.epoch,
            solved=self._solved(),
            deme_bests=[d.best_so_far.require_fitness() for d in self.demes],
        )


class MasterSlaveIslandModel(IslandModel):
    """Island model whose demes farm evaluations to local executors.

    Functionally identical to :class:`~repro.parallel.island.IslandModel`
    (the genetics are unchanged); the difference is that each deme engine
    evaluates through ``executor`` — the centralized-within-distributed
    SMP-cluster composition.
    """

    classification = ModelClassification(
        grain=GrainModel.HYBRID,
        walk=WalkStrategy.MULTIPLE,
        parallelism=ParallelismKind.HYBRID,
        programming=ProgrammingModel.HYBRID,
    )

    def __init__(self, *args, executor: FitnessEvaluator | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if executor is not None:
            for deme in self.demes:
                deme.evaluator = executor
