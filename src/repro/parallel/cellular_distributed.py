"""Distributed fine-grained (cellular) GA on the simulated cluster.

Pelikan et al. (2002) "described an implementation of a fine-grained
parallel genetic algorithm … fully asynchronous and distributed.  Thus, it
scaled well, even for a very large number of processors.  The performance
results for up to 64 processors on an Origin2000 verified scalability
hypothesis."

The classic decomposition: the toroidal grid is cut into horizontal
*strips*, one per node; each sweep a node updates its own rows and then
exchanges *halo rows* (its top and bottom boundary rows) with its two
strip neighbours, paying network transit for them.  Computation scales as
``rows/p`` while communication stays constant per node — which is exactly
why the model "scales well" and what :class:`DistributedCellularGA`
measures (E5's scalability companion; ablation bench asserts the shape).
"""

from __future__ import annotations

import math

from ..cluster.machine import SimulatedCluster
from ..cluster.sim import SimulationError, Timeout
from ..obs.session import current_obs
from ..core.config import GAConfig
from ..core.problem import Problem
from ..runtime.deme import emit_generation
from .base import ParallelEngine, RunReport, register_engine
from .cellular import CellularGA
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)

__all__ = ["DistributedCellularGA", "DistributedCellularReport"]


#: deprecated alias — every engine now returns the shared report schema
DistributedCellularReport = RunReport


class DistributedCellularGA(ParallelEngine):
    """Strip-partitioned cellular GA timed on a simulated cluster.

    The *genetics* are exactly :class:`~repro.parallel.cellular.CellularGA`
    (one shared grid object — correctness is not distributed); the
    *timing model* charges each node ``rows_per_node x cols`` cell updates
    of compute per sweep plus two halo-row exchanges, with a barrier per
    sweep (the synchronous SIMD regime of the early fine-grained machines).

    Parameters
    ----------
    cga:
        The cellular GA to drive (its ``rows`` must be divisible across
        nodes; remainder rows go to the last node).
    cluster:
        One strip per node.
    eval_cost:
        Simulated seconds per cell update (fitness evaluation) at speed 1.
    halo_payload:
        Simulated message size per halo row.
    """

    classification = ModelClassification(
        grain=GrainModel.FINE_GRAINED,
        walk=WalkStrategy.MULTIPLE,
        parallelism=ParallelismKind.DATA,
        programming=ProgrammingModel.DISTRIBUTED,
    )

    def __init__(
        self,
        problem: Problem,
        config: GAConfig | None = None,
        *,
        rows: int = 32,
        cols: int = 32,
        cluster: SimulatedCluster,
        eval_cost: float = 1e-3,
        halo_payload: float = 256.0,
        update: str = "synchronous",
        seed: int | None = None,
    ) -> None:
        if cluster.n_nodes > rows:
            raise ValueError(
                f"{cluster.n_nodes} nodes cannot each own a strip of a "
                f"{rows}-row grid"
            )
        if eval_cost <= 0:
            raise ValueError(f"eval_cost must be positive, got {eval_cost}")
        self.cga = CellularGA(
            problem, config, rows=rows, cols=cols, update=update, seed=seed
        )
        self.cluster = cluster
        self.eval_cost = eval_cost
        self.halo_payload = halo_payload
        base = rows // cluster.n_nodes
        extra = rows - base * cluster.n_nodes
        self.strip_rows = [
            base + (1 if i < extra else 0) for i in range(cluster.n_nodes)
        ]
        self.compute_time = 0.0
        self.comm_time = 0.0
        self._obs = None
        # serialized occupancy cursor of the virtual "network" timeline
        # lane: aggregate per-sweep comm recorded back-to-back so the
        # span durations sum to exactly ``comm_time``
        self._net_cursor = 0.0

    def _sweep_cost(self) -> tuple[float, float]:
        """(barrier compute time, per-sweep aggregate comm time).

        The sweep is barrier-synchronised, so node downtime extends the
        barrier: a strip on a down node suspends until the node repairs.
        A *permanent* crash halts the whole machine — the synchronous
        SIMD regime has no strip redundancy — and raises rather than
        silently computing on a dead node.
        """
        cols = self.cga.cols
        now = self.cluster.sim.now
        per_node_compute = []
        for i in range(self.cluster.n_nodes):
            node = self.cluster.node(i)
            finish = node.finish_time(
                now, node.compute_time(self.strip_rows[i] * cols * self.eval_cost)
            )
            if math.isinf(finish):
                raise SimulationError(
                    f"node {i} crashed permanently mid-sweep; the synchronous "
                    "cellular barrier cannot complete"
                )
            per_node_compute.append(finish - now)
        obs = self._obs
        if obs is not None:
            for i, dur in enumerate(per_node_compute):
                obs.spans.record(
                    "compute", now, now + dur, track=f"node-{i}",
                    node=i, rows=self.strip_rows[i], sweep=self.cga.sweeps,
                )
        barrier = max(per_node_compute)
        comm = 0.0
        n = self.cluster.n_nodes
        if n > 1:
            for i in range(n):
                up, down = (i - 1) % n, (i + 1) % n
                comm += self.cluster.network.transit_time(i, up, self.halo_payload)
                comm += self.cluster.network.transit_time(i, down, self.halo_payload)
        self.compute_time += sum(per_node_compute)
        self.comm_time += comm
        if obs is not None and comm > 0.0:
            t0 = max(self._net_cursor, now)
            obs.spans.record(
                "comm", t0, t0 + comm, track="network", sweep=self.cga.sweeps,
            )
            self._net_cursor = t0 + comm
        # halo exchanges happen pairwise in parallel: the barrier extends by
        # the slowest single exchange, not the sum
        worst_exchange = (
            max(
                self.cluster.network.transit_time(i, (i + 1) % n, self.halo_payload)
                for i in range(n)
            )
            if n > 1
            else 0.0
        )
        return barrier, worst_exchange

    def _driver(self, max_sweeps: int):
        obs = self._obs
        sim = self.cluster.sim

        def frame(duration: float):
            if obs is not None:
                obs.spans.record(
                    "sweep", sim.now, sim.now + duration, track="machine",
                    sweep=self.cga.sweeps,
                )

        self.cga.initialize()
        init_cost, _ = self._sweep_cost()  # initial evaluation wave
        frame(init_cost)
        yield Timeout(init_cost)
        self._record_sweep()
        for _ in range(max_sweeps):
            self.cga.step()
            barrier, exchange = self._sweep_cost()
            frame(barrier + exchange)
            yield Timeout(barrier + exchange)
            self._record_sweep()
            if self.cga._solved():
                break

    def _record_sweep(self) -> None:
        emit_generation(
            self.cluster.trace,
            self.cluster.sim.now,
            deme=0,
            generation=self.cga.sweeps,
            best=float(self.cga.best_so_far.require_fitness()),
        )

    def run(self, max_sweeps: int = 100) -> RunReport:
        self._obs = current_obs()
        proc = self.cluster.sim.process(self._driver(max_sweeps), "cellular-driver")
        self.cluster.run()
        if not proc.finished:
            raise RuntimeError("distributed cellular driver stalled")
        solved = self.cga._solved()
        return self._report(
            best=self.cga.best_so_far.copy(),
            evaluations=self.cga.evaluations,
            epochs=self.cga.sweeps,
            solved=solved,
            stop_reason="solved" if solved else "max_sweeps",
            sim_time=self.cluster.sim.now,
            extras={
                "sweeps": self.cga.sweeps,
                "nodes": self.cluster.n_nodes,
                "compute_time": self.compute_time,
                "comm_time": self.comm_time,
            },
        )


def _distributed_cellular_contract(seed: int):
    from ..problems.binary import OneMax

    cluster = SimulatedCluster(4)
    dga = DistributedCellularGA(
        OneMax(24),
        GAConfig(),
        rows=8,
        cols=8,
        cluster=cluster,
        seed=seed,
    )
    return cluster.trace, dga.run(max_sweeps=6)


register_engine(
    "distributed-cellular",
    DistributedCellularGA,
    contract=_distributed_cellular_contract,
)
