"""Coarse-grained (island / distributed) parallel GA.

The model Tanese (1989) and Pettey (1987) pioneered and the survey treats
as the default PGA: "we can split the population into several
sub-populations and run them in the parallel way" with *demes*, *migration*
and a *topology* (survey §1.1).

Two drivers are provided:

:class:`IslandModel`
    Logical driver: demes advance in rounds (synchronous barrier) or with
    stale, buffered migrant delivery (asynchronous).  Measures quality and
    *evaluations to solution* — the machine-independent cost measure of the
    super-linear-speedup literature.

:class:`SimulatedIslandModel`
    Timed driver: each deme is a coroutine pinned to a node of a
    :class:`~repro.cluster.machine.SimulatedCluster`; generations cost
    simulated seconds proportional to evaluations and node speed, and
    migrants ride the simulated network.  Measures *time to solution* for
    speedup tables (E3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Type

import numpy as np

from ..cluster.machine import SimulatedCluster
from ..cluster.sim import Timeout
from ..cluster.trace import Trace
from ..core.config import GAConfig
from ..core.engine import (
    EvolutionEngine,
    GenerationalEngine,
    SteadyStateEngine,
)
from ..core.individual import Individual, best_of
from ..core.problem import Problem
from ..core.rng import spawn_rngs
from ..core.termination import EvolutionState, MaxGenerations, Termination
from ..migration.policy import MigrationPolicy, integrate_immigrants, select_migrants
from ..migration.schedule import MigrationSchedule, PeriodicSchedule
from ..migration.synchrony import MigrationBuffer, Synchrony
from ..topology.dynamic import DynamicTopology
from ..topology.static import RingTopology, Topology
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)

__all__ = ["IslandModel", "SimulatedIslandModel", "IslandResult", "EpochRecord", "engine_class_by_name"]


def engine_class_by_name(name: str) -> Type[EvolutionEngine]:
    """Resolve Alba & Troya's reproduction-loop names to engine classes.

    ``"generational"`` | ``"steady-state"`` — the cellular loop is a model
    of its own (:mod:`repro.parallel.cellular`) and plugs in via
    :class:`~repro.parallel.hybrid.CellularIslandModel`.
    """
    name = name.lower()
    if name == "generational":
        return GenerationalEngine
    if name in ("steady-state", "steadystate", "ss"):
        return SteadyStateEngine
    raise ValueError(f"unknown engine name {name!r}")


@dataclass
class EpochRecord:
    """Global statistics for one migration epoch."""

    epoch: int
    evaluations: int
    global_best: float
    deme_bests: list[float]
    migrants_sent: int
    migrants_accepted: int


@dataclass
class IslandResult:
    """Outcome of an island run."""

    best: Individual
    evaluations: int
    epochs: int
    solved: bool
    stop_reason: str
    deme_bests: list[float]
    records: list[EpochRecord] = field(repr=False, default_factory=list)
    migrants_sent: int = 0
    migrants_accepted: int = 0
    #: only set by the simulated driver
    sim_time: float | None = None

    @property
    def best_fitness(self) -> float:
        return self.best.require_fitness()


class _IslandBase:
    """Deme construction and migration bookkeeping shared by both drivers."""

    classification = ModelClassification(
        grain=GrainModel.COARSE_GRAINED,
        walk=WalkStrategy.MULTIPLE,
        parallelism=ParallelismKind.CONTROL,
        programming=ProgrammingModel.DISTRIBUTED,
    )

    def __init__(
        self,
        problem: Problem,
        n_islands: int,
        config: GAConfig | None = None,
        *,
        topology: Topology | None = None,
        policy: MigrationPolicy | None = None,
        schedule: MigrationSchedule | None = None,
        synchrony: Synchrony | None = None,
        engine: str | Type[EvolutionEngine] = "generational",
        seed: int | None = None,
        trace: Trace | None = None,
    ) -> None:
        if n_islands < 1:
            raise ValueError(f"need >= 1 island, got {n_islands}")
        self.problem = problem
        self.trace = trace
        self.n_islands = n_islands
        self.config = (config or GAConfig()).resolved_for(problem.spec)
        self.topology = topology or RingTopology(n_islands)
        if self.topology.size != n_islands:
            raise ValueError(
                f"topology size {self.topology.size} != n_islands {n_islands}"
            )
        self.policy = policy or MigrationPolicy()
        self.schedule = schedule or PeriodicSchedule(5)
        self.synchrony = synchrony or Synchrony(synchronous=True)
        engine_cls = engine_class_by_name(engine) if isinstance(engine, str) else engine
        rngs = spawn_rngs(seed, n_islands + 1)
        self.rng = rngs[-1]  # model-level randomness (schedules etc.)
        self.demes: list[EvolutionEngine] = [
            engine_cls(problem, self.config, seed=rngs[i]) for i in range(n_islands)
        ]
        self.buffers: list[MigrationBuffer] = [
            self.synchrony.make_buffer() for _ in range(n_islands)
        ]
        self.migrants_sent = 0
        self.migrants_accepted = 0
        self.records: list[EpochRecord] = []
        self.epoch = 0

    @classmethod
    def partitioned(
        cls,
        problem: Problem,
        total_population: int,
        n_islands: int,
        config: GAConfig | None = None,
        **kwargs,
    ):
        """Split one global population of ``total_population`` evenly across
        ``n_islands`` demes — the constant-total-cost setting speedup
        studies require."""
        per_deme = total_population // n_islands
        if per_deme < 2:
            raise ValueError(
                f"{total_population} individuals cannot fill {n_islands} demes "
                "with >= 2 each"
            )
        cfg = (config or GAConfig()).with_population_size(per_deme)
        return cls(problem, n_islands, cfg, **kwargs)

    # -- migration plumbing ------------------------------------------------------
    def _emigrate(self, deme_idx: int, now: int) -> None:
        """Send one parcel per outgoing link from deme ``deme_idx``."""
        targets = self.topology.neighbors_out(deme_idx)
        if not targets or self.policy.rate == 0:
            return
        deme = self.demes[deme_idx]
        assert deme.population is not None
        for dst in targets:
            migrants = select_migrants(self.rng, deme.population, self.policy)
            if not self.policy.copy:
                # emigrants genuinely leave: remove them from home deme by
                # resampling replacements (keeps deme size constant)
                for m in migrants:
                    idx = next(
                        i for i, ind in enumerate(deme.population.individuals)
                        if ind.uid == m.uid or np.array_equal(ind.genome, m.genome)
                    )
                    fresh_genome = self.problem.spec.sample(self.rng)
                    fresh = Individual(genome=fresh_genome, origin="refill")
                    fresh.fitness = self.problem.evaluate(fresh_genome)
                    deme.state.evaluations += 1
                    deme.population.individuals[idx] = fresh
            self.buffers[dst].post(migrants, source=deme_idx, sent_at=now)
            self.migrants_sent += len(migrants)

    def _immigrate(self, deme_idx: int, now: int) -> int:
        """Drain deme ``deme_idx``'s mailbox and integrate arrivals."""
        deme = self.demes[deme_idx]
        assert deme.population is not None
        accepted = 0
        for source, migrants in self.buffers[deme_idx].collect(now):
            accepted += integrate_immigrants(
                self.rng, deme.population, migrants, self.policy, source=source
            )
        self.migrants_accepted += accepted
        return accepted

    # -- global state ---------------------------------------------------------------
    def global_best(self) -> Individual:
        bests = [d.best_so_far for d in self.demes if d.population is not None]
        if not bests:
            raise RuntimeError("no deme has been initialised")
        return best_of(bests, self.problem.maximize)

    def total_evaluations(self) -> int:
        return sum(d.state.evaluations for d in self.demes)

    def deme_bests(self) -> list[float]:
        return [
            d.population.best().require_fitness()
            for d in self.demes
            if d.population is not None
        ]

    def _solved(self) -> bool:
        try:
            return self.problem.is_solved(self.global_best().require_fitness())
        except RuntimeError:
            return False

    def _record_epoch(self, sent_before: int, accepted_before: int) -> None:
        deme_bests = self.deme_bests()
        self.records.append(
            EpochRecord(
                epoch=self.epoch,
                evaluations=self.total_evaluations(),
                global_best=self.global_best().require_fitness(),
                deme_bests=deme_bests,
                migrants_sent=self.migrants_sent - sent_before,
                migrants_accepted=self.migrants_accepted - accepted_before,
            )
        )
        if self.trace is not None:
            for i, best in enumerate(deme_bests):
                self.trace.record(
                    float(self.epoch),
                    "generation",
                    deme=i,
                    generation=self.demes[i].state.generation,
                    best=float(best),
                )

    def _advance_topology(self) -> None:
        if isinstance(self.topology, DynamicTopology):
            self.topology.advance()


class IslandModel(_IslandBase):
    """Logical (untimed) island driver: rounds of step + migrate.

    In synchronous mode every deme completes generation *g* before any
    migrant from generation *g* is delivered (barrier semantics).  In
    asynchronous mode parcels carry ``synchrony.delay`` epochs of staleness
    and demes may skip steps (heterogeneous progress) via ``step_prob``.
    """

    def __init__(self, *args, step_prob: float | Sequence[float] = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        probs = np.broadcast_to(np.asarray(step_prob, dtype=float), (self.n_islands,))
        if np.any(probs <= 0) or np.any(probs > 1):
            raise ValueError("step_prob values must be in (0, 1]")
        if self.synchrony.synchronous and not np.all(probs == 1.0):
            raise ValueError("synchronous islands cannot have step_prob < 1")
        self.step_prob = probs.copy()

    def initialize(self) -> None:
        for deme in self.demes:
            deme.initialize()

    def step_epoch(self) -> None:
        """One round: each deme steps (maybe), migrates, integrates."""
        if self.demes[0].population is None:
            self.initialize()
        sent_before = self.migrants_sent
        accepted_before = self.migrants_accepted
        self.epoch += 1
        stepped = [
            self.step_prob[i] >= 1.0 or self.rng.random() < self.step_prob[i]
            for i in range(self.n_islands)
        ]
        for i, deme in enumerate(self.demes):
            if stepped[i]:
                deme.step()
        for i, deme in enumerate(self.demes):
            if stepped[i] and self.schedule.should_migrate(
                i,
                self.epoch,
                self.rng,
                stagnant_generations=deme.state.stagnant_generations,
            ):
                self._emigrate(i, now=self.epoch)
        for i in range(self.n_islands):
            self._immigrate(i, now=self.epoch)
        self._advance_topology()
        self._record_epoch(sent_before, accepted_before)

    def run(self, termination: Termination | int | None = None) -> IslandResult:
        if termination is None:
            termination = MaxGenerations(100)
        elif isinstance(termination, int):
            termination = MaxGenerations(termination)
        if self.demes[0].population is None:
            self.initialize()
        state = self._global_state()
        while not termination.should_stop(state) and not self._solved():
            self.step_epoch()
            state = self._global_state()
        solved = self._solved()
        best = self.global_best()
        return IslandResult(
            best=best.copy(),
            evaluations=self.total_evaluations(),
            epochs=self.epoch,
            solved=solved,
            stop_reason="solved" if solved else termination.reason(),
            deme_bests=self.deme_bests(),
            records=self.records,
            migrants_sent=self.migrants_sent,
            migrants_accepted=self.migrants_accepted,
        )

    def _global_state(self) -> EvolutionState:
        best = self.global_best().require_fitness() if self.epoch >= 0 else None
        return EvolutionState(
            generation=self.epoch,
            evaluations=self.total_evaluations(),
            best_fitness=best,
            maximize=self.problem.maximize,
        )


class SimulatedIslandModel(_IslandBase):
    """Cluster-timed island driver (one deme coroutine per node).

    Parameters
    ----------
    cluster:
        The simulated machine; must have >= ``n_islands`` nodes.  Deme *i*
        runs on node *i*; its generation time is
        ``evaluations_in_step * eval_cost / node.speed``.
    eval_cost:
        Simulated seconds of work per fitness evaluation on a speed-1 node.
    migration_payload:
        Simulated message size per migrant (drives bandwidth cost).
    """

    def __init__(
        self,
        problem: Problem,
        n_islands: int,
        config: GAConfig | None = None,
        *,
        cluster: SimulatedCluster | None = None,
        eval_cost: float = 1e-3,
        migration_payload: float = 100.0,
        max_epochs: int = 100,
        **kwargs,
    ) -> None:
        super().__init__(problem, n_islands, config, **kwargs)
        self.cluster = cluster or SimulatedCluster(n_islands)
        if self.cluster.n_nodes < n_islands:
            raise ValueError(
                f"cluster has {self.cluster.n_nodes} nodes for {n_islands} islands"
            )
        if eval_cost <= 0:
            raise ValueError(f"eval_cost must be positive, got {eval_cost}")
        self.eval_cost = eval_cost
        self.migration_payload = migration_payload
        self.max_epochs = max_epochs
        self._stop = False

    def _record_deme_generation(self, i: int) -> None:
        deme = self.demes[i]
        assert deme.population is not None
        self.cluster.record(
            "generation",
            deme=i,
            generation=deme.state.generation,
            best=float(deme.population.best().require_fitness()),
        )

    def _deme_process(self, i: int):
        deme = self.demes[i]
        node = self.cluster.node(i)
        inbox = self._inboxes[i]
        # initialisation costs one population evaluation
        before = deme.state.evaluations
        deme.initialize()
        yield Timeout(node.compute_time((deme.state.evaluations - before) * self.eval_cost))
        self._record_deme_generation(i)
        for epoch in range(1, self.max_epochs + 1):
            if self._stop:
                break
            before = deme.state.evaluations
            deme.step()
            spent = deme.state.evaluations - before
            yield Timeout(node.compute_time(spent * self.eval_cost))
            # drain any migrants that arrived while computing
            while len(inbox):
                source, migrants = (yield inbox)
                self.migrants_accepted += integrate_immigrants(
                    self.rng, deme.population, migrants, self.policy, source=source
                )
            self._record_deme_generation(i)
            if self.schedule.should_migrate(
                i, epoch, self.rng,
                stagnant_generations=deme.state.stagnant_generations,
            ):
                for dst in self.topology.neighbors_out(i):
                    migrants = select_migrants(self.rng, deme.population, self.policy)
                    if migrants:
                        self.cluster.send(
                            i,
                            dst,
                            self._inboxes[dst],
                            (i, migrants),
                            size=self.migration_payload * len(migrants),
                            kind="migration",
                        )
                        self.migrants_sent += len(migrants)
            if self.problem.is_solved(deme.population.best().require_fitness()):
                self._stop = True
                break
        self._finish_times[i] = self.cluster.sim.now

    def run(self) -> IslandResult:
        """Simulate until some deme solves the problem or epochs exhaust."""
        self._inboxes = [self.cluster.inbox(f"deme-{i}") for i in range(self.n_islands)]
        self._finish_times = [0.0] * self.n_islands
        procs = [
            self.cluster.sim.process(self._deme_process(i), name=f"deme-{i}")
            for i in range(self.n_islands)
        ]
        self.cluster.run()
        solved = self._solved()
        best = self.global_best()
        return IslandResult(
            best=best.copy(),
            evaluations=self.total_evaluations(),
            epochs=max(d.state.generation for d in self.demes),
            solved=solved,
            stop_reason="solved" if solved else "max_epochs",
            deme_bests=self.deme_bests(),
            records=self.records,
            migrants_sent=self.migrants_sent,
            migrants_accepted=self.migrants_accepted,
            sim_time=self.cluster.sim.now,
        )
