"""Coarse-grained (island / distributed) parallel GA.

The model Tanese (1989) and Pettey (1987) pioneered and the survey treats
as the default PGA: "we can split the population into several
sub-populations and run them in the parallel way" with *demes*, *migration*
and a *topology* (survey §1.1).

Two drivers are provided:

:class:`IslandModel`
    Logical driver: demes advance in rounds (synchronous barrier) or with
    stale, buffered migrant delivery (asynchronous).  Measures quality and
    *evaluations to solution* — the machine-independent cost measure of the
    super-linear-speedup literature.

:class:`SimulatedIslandModel`
    Timed driver: each deme is a coroutine pinned to a node of a
    :class:`~repro.cluster.machine.SimulatedCluster`; generations cost
    simulated seconds proportional to evaluations and node speed, and
    migrants ride the simulated network.  Measures *time to solution* for
    speedup tables (E3).  The timed machinery itself lives in
    :class:`~repro.runtime.deme.TimedDemeRuntime` — the island model is
    its reference tenant, not its owner.
"""

from __future__ import annotations

from typing import Sequence, Type

import numpy as np

from ..cluster.machine import SimulatedCluster
from ..cluster.trace import Trace
from ..core.config import GAConfig
from ..core.engine import (
    EvolutionEngine,
    GenerationalEngine,
    SteadyStateEngine,
)
from ..core.individual import Individual, best_of
from ..core.problem import Problem
from ..core.rng import spawn_rngs
from ..core.termination import EvolutionState, MaxGenerations, Termination
from ..migration.policy import MigrationPolicy, integrate_immigrants, select_migrants
from ..migration.schedule import MigrationSchedule, PeriodicSchedule
from ..migration.synchrony import MigrationBuffer, Synchrony
from ..runtime.deme import (
    EpochLoop,
    RuntimeCapabilities,
    TimedDemeRuntime,
    emit_generation,
)
from ..topology.dynamic import DynamicTopology
from ..topology.static import RingTopology, Topology
from .base import EpochRecord, ParallelEngine, RunReport, register_engine
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)

__all__ = ["IslandModel", "SimulatedIslandModel", "IslandResult", "EpochRecord", "engine_class_by_name"]

#: deprecated alias — every engine now returns the shared report schema
IslandResult = RunReport


def engine_class_by_name(name: str) -> Type[EvolutionEngine]:
    """Resolve Alba & Troya's reproduction-loop names to engine classes.

    ``"generational"`` | ``"steady-state"`` — the cellular loop is a model
    of its own (:mod:`repro.parallel.cellular`) and plugs in via
    :class:`~repro.parallel.hybrid.CellularIslandModel`.
    """
    name = name.lower()
    if name == "generational":
        return GenerationalEngine
    if name in ("steady-state", "steadystate", "ss"):
        return SteadyStateEngine
    raise ValueError(f"unknown engine name {name!r}")


class _IslandBase(ParallelEngine):
    """Deme construction and migration bookkeeping shared by both drivers."""

    classification = ModelClassification(
        grain=GrainModel.COARSE_GRAINED,
        walk=WalkStrategy.MULTIPLE,
        parallelism=ParallelismKind.CONTROL,
        programming=ProgrammingModel.DISTRIBUTED,
    )

    def __init__(
        self,
        problem: Problem,
        n_islands: int,
        config: GAConfig | None = None,
        *,
        topology: Topology | None = None,
        policy: MigrationPolicy | None = None,
        schedule: MigrationSchedule | None = None,
        synchrony: Synchrony | None = None,
        engine: str | Type[EvolutionEngine] = "generational",
        seed: int | None = None,
        trace: Trace | None = None,
    ) -> None:
        if n_islands < 1:
            raise ValueError(f"need >= 1 island, got {n_islands}")
        self.problem = problem
        self.trace = trace
        self.n_islands = n_islands
        self.config = (config or GAConfig()).resolved_for(problem.spec)
        self.topology = topology or RingTopology(n_islands)
        if self.topology.size != n_islands:
            raise ValueError(
                f"topology size {self.topology.size} != n_islands {n_islands}"
            )
        self.policy = policy or MigrationPolicy()
        self.schedule = schedule or PeriodicSchedule(5)
        self.synchrony = synchrony or Synchrony(synchronous=True)
        engine_cls = engine_class_by_name(engine) if isinstance(engine, str) else engine
        rngs = spawn_rngs(seed, n_islands + 1)
        self.rng = rngs[-1]  # model-level randomness (schedules etc.)
        self.demes: list[EvolutionEngine] = [
            engine_cls(problem, self.config, seed=rngs[i]) for i in range(n_islands)
        ]
        self.buffers: list[MigrationBuffer] = [
            self.synchrony.make_buffer() for _ in range(n_islands)
        ]
        self.migrants_sent = 0
        self.migrants_accepted = 0
        self.records: list[EpochRecord] = []
        self.epoch = 0

    @classmethod
    def partitioned(
        cls,
        problem: Problem,
        total_population: int,
        n_islands: int,
        config: GAConfig | None = None,
        **kwargs,
    ):
        """Split one global population of ``total_population`` evenly across
        ``n_islands`` demes — the constant-total-cost setting speedup
        studies require."""
        per_deme = total_population // n_islands
        if per_deme < 2:
            raise ValueError(
                f"{total_population} individuals cannot fill {n_islands} demes "
                "with >= 2 each"
            )
        cfg = (config or GAConfig()).with_population_size(per_deme)
        return cls(problem, n_islands, cfg, **kwargs)

    # -- migration plumbing ------------------------------------------------------
    def _emigrate(self, deme_idx: int, now: int) -> None:
        """Send one parcel per outgoing link from deme ``deme_idx``."""
        targets = self.topology.neighbors_out(deme_idx)
        if not targets or self.policy.rate == 0:
            return
        deme = self.demes[deme_idx]
        assert deme.population is not None
        for dst in targets:
            migrants = select_migrants(self.rng, deme.population, self.policy)
            if not self.policy.copy:
                # emigrants genuinely leave: remove them from home deme by
                # resampling replacements (keeps deme size constant)
                for m in migrants:
                    idx = next(
                        i for i, ind in enumerate(deme.population.individuals)
                        if ind.uid == m.uid or np.array_equal(ind.genome, m.genome)
                    )
                    fresh_genome = self.problem.spec.sample(self.rng)
                    fresh = Individual(genome=fresh_genome, origin="refill")
                    fresh.fitness = self.problem.evaluate(fresh_genome)
                    deme.state.evaluations += 1
                    deme.population.individuals[idx] = fresh
            self.buffers[dst].post(migrants, source=deme_idx, sent_at=now)
            self.migrants_sent += len(migrants)

    def _immigrate(self, deme_idx: int, now: int) -> int:
        """Drain deme ``deme_idx``'s mailbox and integrate arrivals."""
        deme = self.demes[deme_idx]
        assert deme.population is not None
        accepted = 0
        for source, migrants in self.buffers[deme_idx].collect(now):
            accepted += integrate_immigrants(
                self.rng, deme.population, migrants, self.policy, source=source
            )
        self.migrants_accepted += accepted
        return accepted

    # -- global state ---------------------------------------------------------------
    def global_best(self) -> Individual:
        bests = [d.best_so_far for d in self.demes if d.population is not None]
        if not bests:
            raise RuntimeError("no deme has been initialised")
        return best_of(bests, self.problem.maximize)

    def total_evaluations(self) -> int:
        return sum(d.state.evaluations for d in self.demes)

    def deme_bests(self) -> list[float]:
        return [
            d.population.best().require_fitness()
            for d in self.demes
            if d.population is not None
        ]

    def _solved(self) -> bool:
        try:
            return self.problem.is_solved(self.global_best().require_fitness())
        except RuntimeError:
            return False

    def _record_epoch(self, sent_before: int, accepted_before: int) -> None:
        deme_bests = self.deme_bests()
        self.records.append(
            EpochRecord(
                epoch=self.epoch,
                evaluations=self.total_evaluations(),
                global_best=self.global_best().require_fitness(),
                deme_bests=deme_bests,
                migrants_sent=self.migrants_sent - sent_before,
                migrants_accepted=self.migrants_accepted - accepted_before,
            )
        )
        for i, best in enumerate(deme_bests):
            emit_generation(
                self.trace,
                float(self.epoch),
                deme=i,
                generation=self.demes[i].state.generation,
                best=float(best),
            )

    def _advance_topology(self) -> None:
        if isinstance(self.topology, DynamicTopology):
            self.topology.advance()


class IslandModel(EpochLoop, _IslandBase):
    """Logical (untimed) island driver: rounds of step + migrate.

    In synchronous mode every deme completes generation *g* before any
    migrant from generation *g* is delivered (barrier semantics).  In
    asynchronous mode parcels carry ``synchrony.delay`` epochs of staleness
    and demes may skip steps (heterogeneous progress) via ``step_prob``.
    """

    def __init__(self, *args, step_prob: float | Sequence[float] = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        probs = np.broadcast_to(np.asarray(step_prob, dtype=float), (self.n_islands,))
        if np.any(probs <= 0) or np.any(probs > 1):
            raise ValueError("step_prob values must be in (0, 1]")
        if self.synchrony.synchronous and not np.all(probs == 1.0):
            raise ValueError("synchronous islands cannot have step_prob < 1")
        self.step_prob = probs.copy()

    def initialize(self) -> None:
        for deme in self.demes:
            deme.initialize()

    # -- standard lifecycle (one round: step, migrate, integrate, record) --------
    def _lifecycle_initialized(self) -> bool:
        return self.demes[0].population is not None

    def _lifecycle_begin(self) -> None:
        self._sent_before = self.migrants_sent
        self._accepted_before = self.migrants_accepted

    def _lifecycle_step(self) -> None:
        self._stepped = [
            self.step_prob[i] >= 1.0 or self.rng.random() < self.step_prob[i]
            for i in range(self.n_islands)
        ]
        for i, deme in enumerate(self.demes):
            if self._stepped[i]:
                deme.step()

    def _lifecycle_exchange(self) -> None:
        for i, deme in enumerate(self.demes):
            if self._stepped[i] and self.schedule.should_migrate(
                i,
                self.epoch,
                self.rng,
                stagnant_generations=deme.state.stagnant_generations,
            ):
                self._emigrate(i, now=self.epoch)
        for i in range(self.n_islands):
            self._immigrate(i, now=self.epoch)
        self._advance_topology()

    def _lifecycle_record(self) -> None:
        self._record_epoch(self._sent_before, self._accepted_before)

    def run(self, termination: Termination | int | None = None) -> RunReport:
        if termination is None:
            termination = MaxGenerations(100)
        elif isinstance(termination, int):
            termination = MaxGenerations(termination)
        self.run_epochs(
            done=lambda: termination.should_stop(self._global_state()) or self._solved()
        )
        solved = self._solved()
        best = self.global_best()
        return self._report(
            best=best.copy(),
            evaluations=self.total_evaluations(),
            epochs=self.epoch,
            solved=solved,
            stop_reason="solved" if solved else termination.reason(),
            deme_bests=self.deme_bests(),
            records=self.records,
            migrants_sent=self.migrants_sent,
            migrants_accepted=self.migrants_accepted,
        )

    def _global_state(self) -> EvolutionState:
        best = self.global_best().require_fitness() if self.epoch >= 0 else None
        return EvolutionState(
            generation=self.epoch,
            evaluations=self.total_evaluations(),
            best_fitness=best,
            maximize=self.problem.maximize,
        )


class SimulatedIslandModel(TimedDemeRuntime, _IslandBase):
    """Cluster-timed island driver (one deme coroutine per node).

    Parameters
    ----------
    cluster:
        The simulated machine; must have >= ``n_islands`` nodes.  Deme *i*
        starts on node *i*; its generation time is
        ``evaluations_in_step * eval_cost / node.speed``, and downtime on
        the node *suspends* the computation until the node repairs (a
        permanent crash silences the deme for good).
    eval_cost:
        Simulated seconds of work per fitness evaluation on a speed-1 node.
    migration_payload:
        Simulated message size per migrant (drives bandwidth cost).
    stop_when_any_solves:
        Default True: the whole ensemble stops once any deme reaches the
        optimum (time-to-first-solution studies).  False: each deme runs
        until *it* solves or epochs exhaust (ensemble-resilience studies,
        where the question is how many demes deliver).
    reliable_migration:
        Opt-in :class:`~repro.parallel.reliable.ReliableChannel` transport
        for migrants: sequence numbers, acks, backoff retransmission and
        receiver dedup — at-least-once delivery, exactly-once application.
        Off by default; the default wire behaviour (and trace) is exactly
        the fire-and-forget driver's.
    supervised:
        Opt-in heartbeat supervision and checkpoint recovery (see
        :class:`~repro.parallel.supervisor.IslandSupervisor`).  Requires a
        cluster with at least ``n_islands + 1`` nodes: node ``n_islands``
        hosts the supervisor and any nodes beyond it are recovery spares.
    checkpoint_every:
        Generations between checkpoint shipments when supervised.
    heartbeat_grace:
        Silence threshold before the supervisor intervenes; default is
        ten expected generation times.
    """

    def __init__(
        self,
        problem: Problem,
        n_islands: int,
        config: GAConfig | None = None,
        *,
        cluster: SimulatedCluster | None = None,
        eval_cost: float = 1e-3,
        migration_payload: float = 100.0,
        max_epochs: int = 100,
        stop_when_any_solves: bool = True,
        reliable_migration: bool = False,
        rto_factor: float = 3.0,
        max_retransmits: int = 8,
        supervised: bool = False,
        checkpoint_every: int = 5,
        heartbeat_grace: float | None = None,
        **kwargs,
    ) -> None:
        super().__init__(problem, n_islands, config, **kwargs)
        self._init_timed_runtime(
            cluster or SimulatedCluster(n_islands),
            eval_cost=eval_cost,
            migration_payload=migration_payload,
            max_epochs=max_epochs,
            stop_when_any_solves=stop_when_any_solves,
            capabilities=RuntimeCapabilities(
                reliable=reliable_migration,
                rto_factor=rto_factor,
                max_retransmits=max_retransmits,
                supervised=supervised,
                checkpoint_every=checkpoint_every,
                heartbeat_grace=heartbeat_grace,
            ),
        )

    def run(self) -> RunReport:
        """Simulate until some deme solves the problem or epochs exhaust."""
        self._setup_runtime()
        self.cluster.run()
        solved = self._solved()
        best = self.global_best()
        return self._report(
            best=best.copy(),
            evaluations=self.total_evaluations(),
            epochs=max(d.state.generation for d in self.demes),
            solved=solved,
            stop_reason="solved" if solved else "max_epochs",
            deme_bests=self.deme_bests(),
            records=self.records,
            migrants_sent=self.migrants_sent,
            migrants_accepted=self.migrants_accepted,
            **self._runtime_report_fields(),
        )


def _island_contract(seed: int):
    from ..problems.binary import OneMax

    trace = Trace()
    model = IslandModel(
        OneMax(24),
        3,
        GAConfig(population_size=12, elitism=1),
        policy=MigrationPolicy(rate=1, replacement="worst-if-better"),
        seed=seed,
        trace=trace,
    )
    return trace, model.run(8)


def _sim_island_contract(seed: int):
    from ..problems.binary import OneMax

    cluster = SimulatedCluster(3)
    model = SimulatedIslandModel(
        OneMax(24),
        3,
        GAConfig(population_size=12, elitism=1),
        cluster=cluster,
        max_epochs=8,
        policy=MigrationPolicy(rate=1, replacement="worst-if-better"),
        seed=seed,
    )
    return cluster.trace, model.run()


register_engine("island", IslandModel, contract=_island_contract)
register_engine(
    "sim-island",
    SimulatedIslandModel,
    contract=_sim_island_contract,
    conserved_kinds=("migration",),
)
