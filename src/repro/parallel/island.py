"""Coarse-grained (island / distributed) parallel GA.

The model Tanese (1989) and Pettey (1987) pioneered and the survey treats
as the default PGA: "we can split the population into several
sub-populations and run them in the parallel way" with *demes*, *migration*
and a *topology* (survey §1.1).

Two drivers are provided:

:class:`IslandModel`
    Logical driver: demes advance in rounds (synchronous barrier) or with
    stale, buffered migrant delivery (asynchronous).  Measures quality and
    *evaluations to solution* — the machine-independent cost measure of the
    super-linear-speedup literature.

:class:`SimulatedIslandModel`
    Timed driver: each deme is a coroutine pinned to a node of a
    :class:`~repro.cluster.machine.SimulatedCluster`; generations cost
    simulated seconds proportional to evaluations and node speed, and
    migrants ride the simulated network.  Measures *time to solution* for
    speedup tables (E3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Type

import numpy as np

from ..cluster.machine import SimulatedCluster
from ..cluster.sim import Timeout
from ..cluster.trace import Trace
from ..core.config import GAConfig
from ..core.engine import (
    EvolutionEngine,
    GenerationalEngine,
    SteadyStateEngine,
)
from ..core.individual import Individual, best_of
from ..core.problem import Problem
from ..core.rng import spawn_rngs
from ..core.termination import EvolutionState, MaxGenerations, Termination
from ..migration.policy import MigrationPolicy, integrate_immigrants, select_migrants
from ..migration.schedule import MigrationSchedule, PeriodicSchedule
from ..migration.synchrony import MigrationBuffer, Synchrony
from ..topology.dynamic import DynamicTopology
from ..topology.static import RingTopology, Topology
from .reliable import ReliableChannel
from .supervisor import IslandSupervisor
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)

__all__ = ["IslandModel", "SimulatedIslandModel", "IslandResult", "EpochRecord", "engine_class_by_name"]


def engine_class_by_name(name: str) -> Type[EvolutionEngine]:
    """Resolve Alba & Troya's reproduction-loop names to engine classes.

    ``"generational"`` | ``"steady-state"`` — the cellular loop is a model
    of its own (:mod:`repro.parallel.cellular`) and plugs in via
    :class:`~repro.parallel.hybrid.CellularIslandModel`.
    """
    name = name.lower()
    if name == "generational":
        return GenerationalEngine
    if name in ("steady-state", "steadystate", "ss"):
        return SteadyStateEngine
    raise ValueError(f"unknown engine name {name!r}")


@dataclass
class EpochRecord:
    """Global statistics for one migration epoch."""

    epoch: int
    evaluations: int
    global_best: float
    deme_bests: list[float]
    migrants_sent: int
    migrants_accepted: int


@dataclass
class IslandResult:
    """Outcome of an island run."""

    best: Individual
    evaluations: int
    epochs: int
    solved: bool
    stop_reason: str
    deme_bests: list[float]
    records: list[EpochRecord] = field(repr=False, default_factory=list)
    migrants_sent: int = 0
    migrants_accepted: int = 0
    #: only set by the simulated driver
    sim_time: float | None = None
    #: reliable-migration channel counters (simulated driver, opt-in)
    retransmits: int = 0
    dup_discards: int = 0
    #: supervision counters (simulated driver, opt-in)
    recoveries: int = 0
    abandoned_demes: int = 0
    #: per-deme completion times (simulated driver); 0.0 = never finished
    finish_times: list[float] = field(default_factory=list)

    @property
    def best_fitness(self) -> float:
        return self.best.require_fitness()


class _IslandBase:
    """Deme construction and migration bookkeeping shared by both drivers."""

    classification = ModelClassification(
        grain=GrainModel.COARSE_GRAINED,
        walk=WalkStrategy.MULTIPLE,
        parallelism=ParallelismKind.CONTROL,
        programming=ProgrammingModel.DISTRIBUTED,
    )

    def __init__(
        self,
        problem: Problem,
        n_islands: int,
        config: GAConfig | None = None,
        *,
        topology: Topology | None = None,
        policy: MigrationPolicy | None = None,
        schedule: MigrationSchedule | None = None,
        synchrony: Synchrony | None = None,
        engine: str | Type[EvolutionEngine] = "generational",
        seed: int | None = None,
        trace: Trace | None = None,
    ) -> None:
        if n_islands < 1:
            raise ValueError(f"need >= 1 island, got {n_islands}")
        self.problem = problem
        self.trace = trace
        self.n_islands = n_islands
        self.config = (config or GAConfig()).resolved_for(problem.spec)
        self.topology = topology or RingTopology(n_islands)
        if self.topology.size != n_islands:
            raise ValueError(
                f"topology size {self.topology.size} != n_islands {n_islands}"
            )
        self.policy = policy or MigrationPolicy()
        self.schedule = schedule or PeriodicSchedule(5)
        self.synchrony = synchrony or Synchrony(synchronous=True)
        engine_cls = engine_class_by_name(engine) if isinstance(engine, str) else engine
        rngs = spawn_rngs(seed, n_islands + 1)
        self.rng = rngs[-1]  # model-level randomness (schedules etc.)
        self.demes: list[EvolutionEngine] = [
            engine_cls(problem, self.config, seed=rngs[i]) for i in range(n_islands)
        ]
        self.buffers: list[MigrationBuffer] = [
            self.synchrony.make_buffer() for _ in range(n_islands)
        ]
        self.migrants_sent = 0
        self.migrants_accepted = 0
        self.records: list[EpochRecord] = []
        self.epoch = 0

    @classmethod
    def partitioned(
        cls,
        problem: Problem,
        total_population: int,
        n_islands: int,
        config: GAConfig | None = None,
        **kwargs,
    ):
        """Split one global population of ``total_population`` evenly across
        ``n_islands`` demes — the constant-total-cost setting speedup
        studies require."""
        per_deme = total_population // n_islands
        if per_deme < 2:
            raise ValueError(
                f"{total_population} individuals cannot fill {n_islands} demes "
                "with >= 2 each"
            )
        cfg = (config or GAConfig()).with_population_size(per_deme)
        return cls(problem, n_islands, cfg, **kwargs)

    # -- migration plumbing ------------------------------------------------------
    def _emigrate(self, deme_idx: int, now: int) -> None:
        """Send one parcel per outgoing link from deme ``deme_idx``."""
        targets = self.topology.neighbors_out(deme_idx)
        if not targets or self.policy.rate == 0:
            return
        deme = self.demes[deme_idx]
        assert deme.population is not None
        for dst in targets:
            migrants = select_migrants(self.rng, deme.population, self.policy)
            if not self.policy.copy:
                # emigrants genuinely leave: remove them from home deme by
                # resampling replacements (keeps deme size constant)
                for m in migrants:
                    idx = next(
                        i for i, ind in enumerate(deme.population.individuals)
                        if ind.uid == m.uid or np.array_equal(ind.genome, m.genome)
                    )
                    fresh_genome = self.problem.spec.sample(self.rng)
                    fresh = Individual(genome=fresh_genome, origin="refill")
                    fresh.fitness = self.problem.evaluate(fresh_genome)
                    deme.state.evaluations += 1
                    deme.population.individuals[idx] = fresh
            self.buffers[dst].post(migrants, source=deme_idx, sent_at=now)
            self.migrants_sent += len(migrants)

    def _immigrate(self, deme_idx: int, now: int) -> int:
        """Drain deme ``deme_idx``'s mailbox and integrate arrivals."""
        deme = self.demes[deme_idx]
        assert deme.population is not None
        accepted = 0
        for source, migrants in self.buffers[deme_idx].collect(now):
            accepted += integrate_immigrants(
                self.rng, deme.population, migrants, self.policy, source=source
            )
        self.migrants_accepted += accepted
        return accepted

    # -- global state ---------------------------------------------------------------
    def global_best(self) -> Individual:
        bests = [d.best_so_far for d in self.demes if d.population is not None]
        if not bests:
            raise RuntimeError("no deme has been initialised")
        return best_of(bests, self.problem.maximize)

    def total_evaluations(self) -> int:
        return sum(d.state.evaluations for d in self.demes)

    def deme_bests(self) -> list[float]:
        return [
            d.population.best().require_fitness()
            for d in self.demes
            if d.population is not None
        ]

    def _solved(self) -> bool:
        try:
            return self.problem.is_solved(self.global_best().require_fitness())
        except RuntimeError:
            return False

    def _record_epoch(self, sent_before: int, accepted_before: int) -> None:
        deme_bests = self.deme_bests()
        self.records.append(
            EpochRecord(
                epoch=self.epoch,
                evaluations=self.total_evaluations(),
                global_best=self.global_best().require_fitness(),
                deme_bests=deme_bests,
                migrants_sent=self.migrants_sent - sent_before,
                migrants_accepted=self.migrants_accepted - accepted_before,
            )
        )
        if self.trace is not None:
            for i, best in enumerate(deme_bests):
                self.trace.record(
                    float(self.epoch),
                    "generation",
                    deme=i,
                    generation=self.demes[i].state.generation,
                    best=float(best),
                )

    def _advance_topology(self) -> None:
        if isinstance(self.topology, DynamicTopology):
            self.topology.advance()


class IslandModel(_IslandBase):
    """Logical (untimed) island driver: rounds of step + migrate.

    In synchronous mode every deme completes generation *g* before any
    migrant from generation *g* is delivered (barrier semantics).  In
    asynchronous mode parcels carry ``synchrony.delay`` epochs of staleness
    and demes may skip steps (heterogeneous progress) via ``step_prob``.
    """

    def __init__(self, *args, step_prob: float | Sequence[float] = 1.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        probs = np.broadcast_to(np.asarray(step_prob, dtype=float), (self.n_islands,))
        if np.any(probs <= 0) or np.any(probs > 1):
            raise ValueError("step_prob values must be in (0, 1]")
        if self.synchrony.synchronous and not np.all(probs == 1.0):
            raise ValueError("synchronous islands cannot have step_prob < 1")
        self.step_prob = probs.copy()

    def initialize(self) -> None:
        for deme in self.demes:
            deme.initialize()

    def step_epoch(self) -> None:
        """One round: each deme steps (maybe), migrates, integrates."""
        if self.demes[0].population is None:
            self.initialize()
        sent_before = self.migrants_sent
        accepted_before = self.migrants_accepted
        self.epoch += 1
        stepped = [
            self.step_prob[i] >= 1.0 or self.rng.random() < self.step_prob[i]
            for i in range(self.n_islands)
        ]
        for i, deme in enumerate(self.demes):
            if stepped[i]:
                deme.step()
        for i, deme in enumerate(self.demes):
            if stepped[i] and self.schedule.should_migrate(
                i,
                self.epoch,
                self.rng,
                stagnant_generations=deme.state.stagnant_generations,
            ):
                self._emigrate(i, now=self.epoch)
        for i in range(self.n_islands):
            self._immigrate(i, now=self.epoch)
        self._advance_topology()
        self._record_epoch(sent_before, accepted_before)

    def run(self, termination: Termination | int | None = None) -> IslandResult:
        if termination is None:
            termination = MaxGenerations(100)
        elif isinstance(termination, int):
            termination = MaxGenerations(termination)
        if self.demes[0].population is None:
            self.initialize()
        state = self._global_state()
        while not termination.should_stop(state) and not self._solved():
            self.step_epoch()
            state = self._global_state()
        solved = self._solved()
        best = self.global_best()
        return IslandResult(
            best=best.copy(),
            evaluations=self.total_evaluations(),
            epochs=self.epoch,
            solved=solved,
            stop_reason="solved" if solved else termination.reason(),
            deme_bests=self.deme_bests(),
            records=self.records,
            migrants_sent=self.migrants_sent,
            migrants_accepted=self.migrants_accepted,
        )

    def _global_state(self) -> EvolutionState:
        best = self.global_best().require_fitness() if self.epoch >= 0 else None
        return EvolutionState(
            generation=self.epoch,
            evaluations=self.total_evaluations(),
            best_fitness=best,
            maximize=self.problem.maximize,
        )


class SimulatedIslandModel(_IslandBase):
    """Cluster-timed island driver (one deme coroutine per node).

    Parameters
    ----------
    cluster:
        The simulated machine; must have >= ``n_islands`` nodes.  Deme *i*
        starts on node *i*; its generation time is
        ``evaluations_in_step * eval_cost / node.speed``, and downtime on
        the node *suspends* the computation until the node repairs (a
        permanent crash silences the deme for good).
    eval_cost:
        Simulated seconds of work per fitness evaluation on a speed-1 node.
    migration_payload:
        Simulated message size per migrant (drives bandwidth cost).
    stop_when_any_solves:
        Default True: the whole ensemble stops once any deme reaches the
        optimum (time-to-first-solution studies).  False: each deme runs
        until *it* solves or epochs exhaust (ensemble-resilience studies,
        where the question is how many demes deliver).
    reliable_migration:
        Opt-in :class:`~repro.parallel.reliable.ReliableChannel` transport
        for migrants: sequence numbers, acks, backoff retransmission and
        receiver dedup — at-least-once delivery, exactly-once application.
        Off by default; the default wire behaviour (and trace) is exactly
        the fire-and-forget driver's.
    supervised:
        Opt-in heartbeat supervision and checkpoint recovery (see
        :class:`~repro.parallel.supervisor.IslandSupervisor`).  Requires a
        cluster with at least ``n_islands + 1`` nodes: node ``n_islands``
        hosts the supervisor and any nodes beyond it are recovery spares.
    checkpoint_every:
        Generations between checkpoint shipments when supervised.
    heartbeat_grace:
        Silence threshold before the supervisor intervenes; default is
        ten expected generation times.
    """

    def __init__(
        self,
        problem: Problem,
        n_islands: int,
        config: GAConfig | None = None,
        *,
        cluster: SimulatedCluster | None = None,
        eval_cost: float = 1e-3,
        migration_payload: float = 100.0,
        max_epochs: int = 100,
        stop_when_any_solves: bool = True,
        reliable_migration: bool = False,
        rto_factor: float = 3.0,
        max_retransmits: int = 8,
        supervised: bool = False,
        checkpoint_every: int = 5,
        heartbeat_grace: float | None = None,
        **kwargs,
    ) -> None:
        super().__init__(problem, n_islands, config, **kwargs)
        self.cluster = cluster or SimulatedCluster(n_islands)
        if self.cluster.n_nodes < n_islands:
            raise ValueError(
                f"cluster has {self.cluster.n_nodes} nodes for {n_islands} islands"
            )
        if eval_cost <= 0:
            raise ValueError(f"eval_cost must be positive, got {eval_cost}")
        if supervised and self.cluster.n_nodes < n_islands + 1:
            raise ValueError(
                "supervision needs a dedicated supervisor node: cluster has "
                f"{self.cluster.n_nodes} nodes for {n_islands} islands + supervisor"
            )
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.eval_cost = eval_cost
        self.migration_payload = migration_payload
        self.max_epochs = max_epochs
        self.stop_when_any_solves = stop_when_any_solves
        self.reliable_migration = reliable_migration
        self.rto_factor = rto_factor
        self.max_retransmits = max_retransmits
        self.supervised = supervised
        self.checkpoint_every = checkpoint_every
        if heartbeat_grace is None:
            heartbeat_grace = 10.0 * self.config.population_size * eval_cost
        self.heartbeat_grace = heartbeat_grace
        self._stop = False
        self._channel: ReliableChannel | None = None
        self._supervisor: IslandSupervisor | None = None
        # deme placement / liveness bookkeeping (rebuilt by run())
        self._deme_node = list(range(n_islands))
        self._incarnation = [0] * n_islands
        self._deme_done = [False] * n_islands
        self._deme_crashed = [False] * n_islands
        self._routes: list[list[int]] = [
            list(self.topology.neighbors_out(i)) for i in range(n_islands)
        ]

    # -- routing -----------------------------------------------------------------
    def _route_targets(self, i: int) -> list[int]:
        """Current outgoing migration targets of deme ``i``.

        Unsupervised runs read the topology directly (exact legacy
        behaviour); supervised runs read the supervisor-maintained route
        overlay, which splices around abandoned demes.
        """
        if self.supervised:
            return self._routes[i]
        return list(self.topology.neighbors_out(i))

    def _rebuild_routes(self, abandoned: set[int]) -> None:
        """Rewire the migration overlay around ``abandoned`` demes: each
        deme's dead out-neighbours are transitively replaced by *their*
        out-neighbours, so a severed ring contracts to a smaller ring."""
        for j in range(self.n_islands):
            if j in abandoned:
                self._routes[j] = []
                continue
            targets: list[int] = []
            seen = {j}
            frontier = list(self.topology.neighbors_out(j))
            while frontier:
                d = frontier.pop(0)
                if d in seen:
                    continue
                seen.add(d)
                if d in abandoned:
                    frontier.extend(self.topology.neighbors_out(d))
                else:
                    targets.append(d)
            self._routes[j] = targets

    # -- deme lifecycle -----------------------------------------------------------
    def _record_deme_generation(self, i: int, incarnation: int = 0) -> None:
        deme = self.demes[i]
        assert deme.population is not None
        extra = {"incarnation": incarnation} if self.supervised else {}
        self.cluster.record(
            "generation",
            deme=i,
            generation=deme.state.generation,
            best=float(deme.population.best().require_fitness()),
            **extra,
        )

    def _busy(self, i: int, incarnation: int, work: float):
        """Charge ``work`` units of compute on deme ``i``'s current node,
        suspending (not losing) progress across repairable downtime.

        Returns True if the deme may carry on; False if the node crashed
        permanently mid-computation or a supervisor recovery fenced this
        incarnation off while it was suspended.
        """
        node = self.cluster.node(self._deme_node[i])
        now = self.cluster.sim.now
        finish = node.finish_time(now, node.compute_time(work))
        if math.isinf(finish):
            self._deme_crashed[i] = True
            return False
        yield Timeout(finish - now)
        return self._incarnation[i] == incarnation

    def _after_generation(self, i: int, incarnation: int) -> None:
        self._record_deme_generation(i, incarnation)
        if self._supervisor is not None:
            self._supervisor.heartbeat(i, incarnation)
            if self.demes[i].state.generation % self.checkpoint_every == 0:
                self._supervisor.checkpoint(i, incarnation)

    def _apply_parcel(self, i: int, item) -> None:
        deme = self.demes[i]
        if self._channel is not None:
            _, src, seq, _ = item
            migrants = self._channel.on_parcel(i, item)
            if migrants is None:
                return  # duplicate, discarded
            self.cluster.record(
                "migrant-apply", src=src, dst=i, seq=seq, count=len(migrants)
            )
        else:
            src, migrants = item
        self.migrants_accepted += integrate_immigrants(
            self.rng, deme.population, migrants, self.policy, source=src
        )

    def _send_migrants(self, i: int) -> None:
        deme = self.demes[i]
        for dst in self._route_targets(i):
            migrants = select_migrants(self.rng, deme.population, self.policy)
            if not migrants:
                continue
            size = self.migration_payload * len(migrants)
            if self._channel is not None:
                self._channel.send(i, dst, migrants, size)
            else:
                self.cluster.send(
                    self._deme_node[i],
                    self._deme_node[dst],
                    self._inboxes[dst],
                    (i, migrants),
                    size=size,
                    kind="migration",
                )
            self.migrants_sent += len(migrants)

    def _deme_process(self, i: int, incarnation: int = 0, resume: bool = False):
        deme = self.demes[i]
        inbox = self._inboxes[i]
        if resume:
            # restored from a checkpoint on a spare: announce liveness,
            # then pick the evolution up where the snapshot left it
            self._after_generation(i, incarnation)
        else:
            # initialisation costs one population evaluation
            before = deme.state.evaluations
            deme.initialize()
            alive = yield from self._busy(
                i, incarnation, (deme.state.evaluations - before) * self.eval_cost
            )
            if not alive:
                return
            self._after_generation(i, incarnation)
        while deme.state.generation < self.max_epochs and not self._stop:
            before = deme.state.evaluations
            deme.step()
            epoch = deme.state.generation
            alive = yield from self._busy(
                i, incarnation, (deme.state.evaluations - before) * self.eval_cost
            )
            if not alive:
                return
            # drain any migrants that arrived while computing
            while len(inbox):
                item = (yield inbox)
                if self._incarnation[i] != incarnation:
                    return
                self._apply_parcel(i, item)
            self._after_generation(i, incarnation)
            if self.schedule.should_migrate(
                i, epoch, self.rng,
                stagnant_generations=deme.state.stagnant_generations,
            ):
                self._send_migrants(i)
            if self.problem.is_solved(deme.population.best().require_fitness()):
                if self.stop_when_any_solves:
                    self._stop = True
                break
        if self._incarnation[i] == incarnation:
            self._deme_done[i] = True
            self._finish_times[i] = self.cluster.sim.now

    def run(self) -> IslandResult:
        """Simulate until some deme solves the problem or epochs exhaust."""
        n = self.n_islands
        self._inboxes = [self.cluster.inbox(f"deme-{i}") for i in range(n)]
        self._finish_times = [0.0] * n
        self._deme_node = list(range(n))
        self._incarnation = [0] * n
        self._deme_done = [False] * n
        self._deme_crashed = [False] * n
        self._routes = [list(self.topology.neighbors_out(i)) for i in range(n)]
        if self.reliable_migration:
            self._channel = ReliableChannel(
                self.cluster,
                node_of=lambda d: self._deme_node[d],
                inbox_of=lambda d: self._inboxes[d],
                is_stopped=lambda: self._stop,
                is_done=lambda d: self._deme_done[d],
                rto_factor=self.rto_factor,
                # a receiver only drains its inbox between generations, so
                # the timeout must cover that application delay too
                min_rto=2.0 * self.config.population_size * self.eval_cost,
                max_retransmits=self.max_retransmits,
            )
        if self.supervised:
            self._supervisor = IslandSupervisor(
                self,
                node_id=n,
                spares=list(range(n + 1, self.cluster.n_nodes)),
                grace=self.heartbeat_grace,
                check_interval=self.heartbeat_grace / 4.0,
                snapshot_payload=self.migration_payload
                * self.config.population_size,
            )
            self.cluster.sim.process(self._supervisor.process(), name="supervisor")
        procs = [
            self.cluster.sim.process(self._deme_process(i), name=f"deme-{i}")
            for i in range(n)
        ]
        self.cluster.run()
        solved = self._solved()
        best = self.global_best()
        plain = self._channel is None and self._supervisor is None
        return IslandResult(
            best=best.copy(),
            evaluations=self.total_evaluations(),
            epochs=max(d.state.generation for d in self.demes),
            solved=solved,
            stop_reason="solved" if solved else "max_epochs",
            deme_bests=self.deme_bests(),
            records=self.records,
            migrants_sent=self.migrants_sent,
            migrants_accepted=self.migrants_accepted,
            # trailing retransmit/sweep timers outlive the work itself, so
            # protected runs report the last deme completion as wall time
            sim_time=self.cluster.sim.now if plain else max(self._finish_times),
            retransmits=self._channel.stats.retransmits if self._channel else 0,
            dup_discards=self._channel.stats.dup_discards if self._channel else 0,
            recoveries=self._supervisor.recoveries if self._supervisor else 0,
            abandoned_demes=len(self._supervisor.abandoned) if self._supervisor else 0,
            finish_times=list(self._finish_times),
        )
