"""Specialized Island Model (Xiao & Armstrong 2003).

"a new model of parallel evolutionary algorithms … derived from the island
model, in which an EA is divided into several subEAs that exchange
individuals among themselves.  In SIM, each subEA is responsible for
optimizing the subset of objective functions in the initial problem.  Seven
scenarios of the model with a different number of subEAs, communication
topology and specialization are tested and the results are compared."
(survey §2)

Each subEA here is a deme whose engine optimises one *weighted subset* of a
:class:`~repro.problems.multiobjective.MultiObjectiveProblem`'s objectives.
Every individual ever evaluated is also scored on the full objective vector
and folded into a global non-dominated archive; scenario quality is the
archive's hypervolume.  The classic seven scenarios are provided as
:func:`standard_scenarios`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cluster.machine import SimulatedCluster
from ..cluster.trace import Trace
from ..core.config import GAConfig
from ..core.engine import GenerationalEngine
from ..core.individual import Individual
from ..core.rng import spawn_rngs
from ..migration.policy import MigrationPolicy, integrate_immigrants, select_migrants
from ..migration.schedule import PeriodicSchedule
from ..problems.multiobjective import (
    MultiObjectiveProblem,
    ScalarizedObjective,
    hypervolume_2d,
    pareto_front,
)
from ..runtime.deme import (
    EpochLoop,
    RuntimeCapabilities,
    TimedDemeRuntime,
    emit_generation,
)
from ..topology.static import CompleteTopology, RingTopology, Topology
from .base import ParallelEngine, RunReport, register_engine
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)

__all__ = [
    "SpecializedIslandModel",
    "SimulatedSpecializedIslandModel",
    "SIMScenario",
    "SIMResult",
    "standard_scenarios",
]


@dataclass(frozen=True)
class SIMScenario:
    """One SIM configuration: subEA count, weights per subEA, topology name.

    ``weights`` holds one weight vector per subEA; a one-hot vector means
    that subEA is fully specialised to a single objective, a uniform vector
    means it optimises the whole aggregate (no specialisation).
    """

    name: str
    weights: tuple[tuple[float, ...], ...]
    topology: str = "complete"
    migration_interval: int = 5

    @property
    def n_subeas(self) -> int:
        return len(self.weights)


def standard_scenarios(n_objectives: int = 2) -> list[SIMScenario]:
    """The seven comparison scenarios (two-objective formulation).

    S1: 1 subEA, aggregate only (the non-specialised control = plain GA).
    S2: 2 subEAs, both aggregate (island model, no specialisation).
    S3: 2 subEAs, one per objective, ring.
    S4: 2 subEAs, one per objective, complete.
    S5: 3 subEAs: one per objective + one aggregate, ring.
    S6: 3 subEAs: one per objective + one aggregate, complete.
    S7: 4 subEAs: objective specialists + two mixed weightings, complete.
    """
    if n_objectives != 2:
        raise NotImplementedError("standard scenarios are defined for 2 objectives")
    o1, o2 = (1.0, 0.0), (0.0, 1.0)
    half = (0.5, 0.5)
    return [
        SIMScenario("S1-aggregate", (half,)),
        SIMScenario("S2-island-no-spec", (half, half)),
        SIMScenario("S3-spec-ring", (o1, o2), topology="ring"),
        SIMScenario("S4-spec-complete", (o1, o2), topology="complete"),
        SIMScenario("S5-spec+agg-ring", (o1, o2, half), topology="ring"),
        SIMScenario("S6-spec+agg-complete", (o1, o2, half), topology="complete"),
        SIMScenario(
            "S7-four-mixed",
            (o1, o2, (0.75, 0.25), (0.25, 0.75)),
            topology="complete",
        ),
    ]


#: deprecated alias — every engine now returns the shared report schema
SIMResult = RunReport


class SpecializedIslandModel(EpochLoop, ParallelEngine):
    """SIM driver over a 2+-objective problem.

    Parameters
    ----------
    problem:
        The multiobjective problem.
    scenario:
        SubEA weights/topology/migration configuration.
    config:
        Per-subEA GA configuration.
    hv_reference:
        Reference point for hypervolume (2-objective only); defaults to the
        per-objective maxima observed in the archive plus 10%.
    """

    classification = ModelClassification(
        grain=GrainModel.COARSE_GRAINED,
        walk=WalkStrategy.MULTIPLE,
        parallelism=ParallelismKind.CONTROL,
        programming=ProgrammingModel.DISTRIBUTED,
    )

    def __init__(
        self,
        problem: MultiObjectiveProblem,
        scenario: SIMScenario,
        config: GAConfig | None = None,
        *,
        policy: MigrationPolicy | None = None,
        hv_reference: Sequence[float] | None = None,
        archive_capacity: int = 200,
        seed: int | None = None,
        trace: Trace | None = None,
    ) -> None:
        self.problem = problem
        self.scenario = scenario
        self.policy = policy or MigrationPolicy(rate=2, selection="best", replacement="worst")
        self.hv_reference = None if hv_reference is None else np.asarray(hv_reference, float)
        self.archive_capacity = archive_capacity
        n = scenario.n_subeas
        self.topology: Topology = (
            CompleteTopology(n) if scenario.topology == "complete" else RingTopology(n)
        )
        rngs = spawn_rngs(seed, n + 1)
        self.rng = rngs[-1]
        cfg = config or GAConfig()
        self.subeas: list[GenerationalEngine] = []
        for i, w in enumerate(scenario.weights):
            sub_problem = ScalarizedObjective(problem, w)
            sub_cfg = cfg.resolved_for(sub_problem.spec)
            self.subeas.append(GenerationalEngine(sub_problem, sub_cfg, seed=rngs[i]))
        self.epoch = 0
        self.trace = trace
        self._archive: list[tuple[np.ndarray, np.ndarray]] = []  # (genome, objectives)

    # -- archive ---------------------------------------------------------------------
    def _archive_population(self, individuals: Sequence[Individual]) -> None:
        for ind in individuals:
            objs = self.problem.evaluate_objectives(ind.genome)
            self._archive.append((ind.genome.copy(), objs))
        self._prune_archive()

    def _prune_archive(self) -> None:
        if not self._archive:
            return
        objs = np.stack([o for _, o in self._archive])
        keep = pareto_front(objs)
        self._archive = [self._archive[i] for i in keep]
        if len(self._archive) > self.archive_capacity:
            # thin uniformly along the first objective to cap memory
            order = np.argsort([o[0] for _, o in self._archive])
            idx = np.linspace(0, len(order) - 1, self.archive_capacity).astype(int)
            self._archive = [self._archive[order[i]] for i in idx]

    # -- evolution --------------------------------------------------------------------
    def initialize(self) -> None:
        for sub in self.subeas:
            sub.initialize()
            self._archive_population(sub.population.individuals)

    # -- standard lifecycle (step + archive, migrate, record) --------------------
    def _lifecycle_initialized(self) -> bool:
        return self.subeas[0].population is not None

    def _lifecycle_step(self) -> None:
        for sub in self.subeas:
            sub.step()
            self._archive_population(sub.population.individuals)

    def _lifecycle_exchange(self) -> None:
        if self.epoch % self.scenario.migration_interval == 0:
            self._migrate()

    def _lifecycle_record(self) -> None:
        for i, sub in enumerate(self.subeas):
            emit_generation(
                self.trace,
                float(self.epoch),
                deme=i,
                generation=sub.state.generation,
                best=float(sub.best_so_far.require_fitness()),
            )

    def _migrate(self) -> None:
        """Exchange individuals between subEAs, re-scalarising on arrival.

        An immigrant's fitness under the destination's weights differs from
        its fitness at home, so it is re-evaluated (counted on the
        destination subEA's meter).
        """
        parcels: list[tuple[int, int, list[Individual]]] = []
        for i, sub in enumerate(self.subeas):
            for dst in self.topology.neighbors_out(i):
                migrants = select_migrants(self.rng, sub.population, self.policy)
                parcels.append((i, dst, migrants))
        for src, dst, migrants in parcels:
            dst_sub = self.subeas[dst]
            for m in migrants:
                m.fitness = dst_sub.problem.evaluate(m.genome)
                dst_sub.state.evaluations += 1
            integrate_immigrants(
                self.rng, dst_sub.population, migrants, self.policy, source=src
            )

    def total_evaluations(self) -> int:
        return sum(s.state.evaluations for s in self.subeas)

    def _archive_summary(self) -> tuple[np.ndarray, float]:
        """The non-dominated front and its hypervolume."""
        objs = (
            np.stack([o for _, o in self._archive])
            if self._archive
            else np.empty((0, self.problem.n_objectives))
        )
        ref = self.hv_reference
        if ref is None and objs.shape[0] and objs.shape[1] == 2:
            ref = objs.max(axis=0) * 1.1 + 1e-9
        hv = (
            hypervolume_2d(objs, ref)
            if ref is not None and objs.shape[1] == 2 and objs.shape[0]
            else float("nan")
        )
        return objs, hv

    def _sim_report(self, **fields) -> RunReport:
        """Assemble the archive-valued report both SIM drivers share."""
        objs, hv = self._archive_summary()
        return self._report(
            best=None,
            evaluations=self.total_evaluations(),
            solved=False,
            extras={
                "scenario": self.scenario,
                "archive_objectives": objs,
                "hypervolume": hv,
                "archive_genomes": [g for g, _ in self._archive],
            },
            **fields,
        )

    def run(self, epochs: int = 50) -> RunReport:
        self.run_epochs(epochs)
        return self._sim_report(
            epochs=self.epoch,
            stop_reason="max_epochs",
            deme_bests=[s.best_so_far.require_fitness() for s in self.subeas],
        )


class SimulatedSpecializedIslandModel(TimedDemeRuntime, SpecializedIslandModel):
    """Cluster-timed SIM driver: one subEA coroutine per node.

    Runs the specialized island model on the shared deme runtime, so the
    subEAs stall through node downtime instead of silently computing
    (``Node.finish_time`` semantics — the gap the untimed driver cannot
    model), migrants pay network transit, and the reliable channel /
    supervision capabilities are available exactly as for islands.

    The destination subEA re-scalarises every immigrant on arrival (its
    weights differ from the sender's), which is the SIM-specific
    :meth:`_integrate_parcel` override — everything else is the runtime's.
    """

    def __init__(
        self,
        problem: MultiObjectiveProblem,
        scenario: SIMScenario,
        config: GAConfig | None = None,
        *,
        cluster: SimulatedCluster | None = None,
        eval_cost: float = 1e-3,
        migration_payload: float = 100.0,
        max_epochs: int = 50,
        reliable_migration: bool = False,
        rto_factor: float = 3.0,
        max_retransmits: int = 8,
        supervised: bool = False,
        checkpoint_every: int = 5,
        heartbeat_grace: float | None = None,
        **kwargs,
    ) -> None:
        super().__init__(problem, scenario, config, **kwargs)
        self.n_islands = scenario.n_subeas
        self.demes = self.subeas
        self.config = self.subeas[0].config
        self.schedule = PeriodicSchedule(scenario.migration_interval)
        self.migrants_sent = 0
        self.migrants_accepted = 0
        self._init_timed_runtime(
            cluster or SimulatedCluster(scenario.n_subeas),
            eval_cost=eval_cost,
            migration_payload=migration_payload,
            max_epochs=max_epochs,
            # archive quality is the objective; no deme ever "solves"
            stop_when_any_solves=False,
            capabilities=RuntimeCapabilities(
                reliable=reliable_migration,
                rto_factor=rto_factor,
                max_retransmits=max_retransmits,
                supervised=supervised,
                checkpoint_every=checkpoint_every,
                heartbeat_grace=heartbeat_grace,
            ),
        )

    def _after_step(self, i: int) -> None:
        self._archive_population(self.subeas[i].population.individuals)

    def _deme_solved(self, i: int) -> bool:
        return False

    def _integrate_parcel(self, i: int, src: int, migrants) -> None:
        dst_sub = self.subeas[i]
        for m in migrants:
            m.fitness = dst_sub.problem.evaluate(m.genome)
            dst_sub.state.evaluations += 1
        self.migrants_accepted += integrate_immigrants(
            self.rng, dst_sub.population, migrants, self.policy, source=src
        )

    def run(self) -> RunReport:
        self._setup_runtime()
        self.cluster.run()
        return self._sim_report(
            epochs=max(s.state.generation for s in self.subeas),
            stop_reason="max_epochs",
            deme_bests=[s.best_so_far.require_fitness() for s in self.subeas],
            migrants_sent=self.migrants_sent,
            migrants_accepted=self.migrants_accepted,
            **self._runtime_report_fields(),
        )


def _specialized_contract(seed: int):
    from ..problems.multiobjective import SchafferF2

    trace = Trace()
    model = SpecializedIslandModel(
        SchafferF2(),
        standard_scenarios()[2],
        GAConfig(population_size=12),
        seed=seed,
        trace=trace,
    )
    return trace, model.run(6)


def _sim_specialized_contract(seed: int):
    from ..problems.multiobjective import SchafferF2

    cluster = SimulatedCluster(2)
    model = SimulatedSpecializedIslandModel(
        SchafferF2(),
        standard_scenarios()[2],
        GAConfig(population_size=12),
        cluster=cluster,
        max_epochs=6,
        seed=seed,
    )
    return cluster.trace, model.run()


register_engine("specialized", SpecializedIslandModel, contract=_specialized_contract)
register_engine(
    "sim-specialized",
    SimulatedSpecializedIslandModel,
    contract=_sim_specialized_contract,
    conserved_kinds=("migration",),
)
