"""DRM/DREAM-style asynchronous pooled evolution over a wide-area network.

Survey §2/§4: Jelasity et al.'s DRM (distributed resource machine) and the
DREAM framework ran evolutionary algorithms "through a virtual machine
built from a large number of individual computers on the Internet" with "a
Peer to Peer mobile agent system".  The execution model differs from
islands: there are no fixed demes — autonomous agents repeatedly pull a few
individuals from a shared pool, breed locally, and push offspring back,
tolerating high WAN latencies because nothing is barrier-synchronised.

:class:`PooledEvolution` realises that model on the simulated cluster: the
pool lives on node 0 (the coordinator), agents on the remaining nodes, all
traffic pays network transit.  The survey's subset-sum test problem is the
canonical workload (see tests/E-suite usage).
"""

from __future__ import annotations

import math

from ..cluster.machine import SimulatedCluster
from ..cluster.sim import Timeout
from ..obs.session import current_obs
from ..core.config import GAConfig
from ..core.individual import Individual, best_of
from ..core.problem import Problem
from ..core.rng import spawn_rngs
from ..core.variation import offspring_pair
from ..runtime.deme import emit_generation
from .base import ParallelEngine, RunReport, register_engine
from .classification import (
    GrainModel,
    ModelClassification,
    ParallelismKind,
    ProgrammingModel,
    WalkStrategy,
)

__all__ = ["PooledEvolution", "PoolResult"]


#: deprecated alias — every engine now returns the shared report schema
PoolResult = RunReport


class PooledEvolution(ParallelEngine):
    """Asynchronous agents breeding against a shared individual pool.

    Parameters
    ----------
    problem, config:
        Standard GA configuration; ``config.population_size`` is the pool
        size.
    cluster:
        Node 0 hosts the pool; nodes 1.. host one agent each.
    eval_cost:
        Simulated seconds per fitness evaluation (agents pay it locally).
    batch:
        Individuals pulled (and offspring pushed) per agent transaction.
    max_transactions:
        Total pull-breed-push cycles across all agents before stopping.
    """

    classification = ModelClassification(
        grain=GrainModel.COARSE_GRAINED,
        walk=WalkStrategy.MULTIPLE,
        parallelism=ParallelismKind.CONTROL,
        programming=ProgrammingModel.DISTRIBUTED,
    )

    def __init__(
        self,
        problem: Problem,
        config: GAConfig | None = None,
        *,
        cluster: SimulatedCluster,
        eval_cost: float = 1e-3,
        batch: int = 4,
        max_transactions: int = 500,
        payload_per_individual: float = 100.0,
        seed: int | None = None,
    ) -> None:
        if cluster.n_nodes < 2:
            raise ValueError("pooled evolution needs >= 2 nodes (pool + agents)")
        if batch < 2:
            raise ValueError(f"batch must be >= 2 (need parents), got {batch}")
        if eval_cost <= 0:
            raise ValueError(f"eval_cost must be positive, got {eval_cost}")
        self.problem = problem
        self.config = (config or GAConfig()).resolved_for(problem.spec)
        self.cluster = cluster
        self.eval_cost = eval_cost
        self.batch = batch
        self.max_transactions = max_transactions
        self.payload = payload_per_individual
        n_agents = cluster.n_nodes - 1
        rngs = spawn_rngs(seed, n_agents + 1)
        self._pool_rng = rngs[-1]
        self._agent_rngs = rngs[:-1]
        self.pool: list[Individual] = []
        self.evaluations = 0
        self.pulls = 0
        self._remaining = max_transactions
        self._stop = False
        self.agent_evaluations = [0] * n_agents

    # -- pool operations (run at the coordinator) -----------------------------------
    def _pool_pull(self) -> list[Individual]:
        idx = self._pool_rng.choice(len(self.pool), size=self.batch, replace=False)
        return [self.pool[int(i)].copy() for i in idx]

    def _pool_push(self, offspring: list[Individual]) -> None:
        """Offspring replace the pool's worst members if they improve them."""
        for child in offspring:
            worst_idx = min(
                range(len(self.pool)),
                key=lambda i: (
                    self.pool[i].require_fitness()
                    if self.problem.maximize
                    else -self.pool[i].require_fitness()
                ),
            )
            worst = self.pool[worst_idx]
            cf, wf = child.require_fitness(), worst.require_fitness()
            improves = cf > wf if self.problem.maximize else cf < wf
            if improves:
                self.pool[worst_idx] = child

    # -- agent coroutine -----------------------------------------------------------------
    def _agent(self, agent_id: int):
        node_id = agent_id + 1
        rng = self._agent_rngs[agent_id]
        node = self.cluster.node(node_id)
        obs = self._obs
        track = f"agent-{agent_id}"
        transactions = 0
        while not self._stop and self._remaining > 0:
            # liveness guard: a dead agent neither pulls nor pushes — it
            # sits out a repairable outage and retires on a permanent crash
            now = self.cluster.sim.now
            if not node.is_up(now):
                wake = node.next_up_time(now)
                if math.isinf(wake):
                    return
                yield Timeout(wake - now)
                continue
            frame = (
                obs.spans.begin(
                    "transaction", t0=now, track=track,
                    agent=agent_id, transaction=transactions + 1,
                )
                if obs is not None
                else None
            )
            self._remaining -= 1
            # round trip to the pool: request + parcel back
            transit = self.cluster.network.transit_time(node_id, 0, 64.0)
            t0 = self.cluster.sim.now
            yield Timeout(transit)
            parents = self._pool_pull()
            self.pulls += 1
            back = self.cluster.network.transit_time(
                0, node_id, self.payload * len(parents)
            )
            yield Timeout(back)
            if frame is not None:
                obs.spans.record(
                    "pull", t0, self.cluster.sim.now, track=track,
                    agent=agent_id, count=len(parents),
                )
            # breed locally
            offspring: list[Individual] = []
            while len(offspring) < self.batch:
                pair = rng.choice(len(parents), size=2, replace=False)
                a, b = offspring_pair(
                    rng, self.config, self.problem.spec,
                    parents[int(pair[0])], parents[int(pair[1])],
                )
                offspring.extend([a, b])
            offspring = offspring[: self.batch]
            for child in offspring:
                child.fitness = self.problem.evaluate(child.genome)
            self.evaluations += len(offspring)
            self.agent_evaluations[agent_id] += len(offspring)
            # breeding suspends across downtime; a permanent crash loses
            # the in-flight offspring (never pushed back to the pool)
            now = self.cluster.sim.now
            finish = node.finish_time(
                now, node.compute_time(len(offspring) * self.eval_cost)
            )
            if math.isinf(finish):
                return  # open spans are closed when the session exports
            yield Timeout(finish - now)
            if frame is not None:
                obs.spans.record(
                    "evaluate", now, self.cluster.sim.now, track=track,
                    agent=agent_id, evals=len(offspring),
                )
            # push back
            push = self.cluster.network.transit_time(
                node_id, 0, self.payload * len(offspring)
            )
            t0 = self.cluster.sim.now
            yield Timeout(push)
            if frame is not None:
                obs.spans.record(
                    "push", t0, self.cluster.sim.now, track=track,
                    agent=agent_id, count=len(offspring),
                )
            self._pool_push(offspring)
            transactions += 1
            emit_generation(
                self.cluster.trace,
                self.cluster.sim.now,
                deme=agent_id,
                generation=transactions,
                best=float(self.global_best().require_fitness()),
            )
            if frame is not None:
                obs.spans.end(frame, self.cluster.sim.now)
            if self.problem.is_solved(self.global_best().require_fitness()):
                self._stop = True

    def global_best(self) -> Individual:
        return best_of(self.pool, self.problem.maximize)

    # -- driver --------------------------------------------------------------------------------
    def run(self) -> RunReport:
        # seed the pool (coordinator pays initial evaluation time implicitly)
        genomes = self.problem.spec.sample_population(
            self._pool_rng, self.config.population_size
        )
        self.pool = [Individual(genome=g) for g in genomes]
        for ind in self.pool:
            ind.fitness = self.problem.evaluate(ind.genome)
        self.evaluations += len(self.pool)
        self._obs = current_obs()
        for a in range(self.cluster.n_nodes - 1):
            self.cluster.sim.process(self._agent(a), name=f"agent-{a}")
        self.cluster.run()
        best = self.global_best()
        solved = self.problem.is_solved(best.require_fitness())
        return self._report(
            best=best.copy(),
            evaluations=self.evaluations,
            epochs=self.pulls,
            solved=solved,
            stop_reason="solved" if solved else "transactions-exhausted",
            sim_time=self.cluster.sim.now,
            extras={
                "pulls": self.pulls,
                "pool_size": len(self.pool),
                "agent_evaluations": list(self.agent_evaluations),
            },
        )


def _pool_contract(seed: int):
    from ..problems.binary import OneMax

    cluster = SimulatedCluster(4)
    pooled = PooledEvolution(
        OneMax(24),
        GAConfig(population_size=20),
        cluster=cluster,
        max_transactions=40,
        seed=seed,
    )
    return cluster.trace, pooled.run()


register_engine("pool", PooledEvolution, contract=_pool_contract)
