"""Engine builders: one registered constructor per parallel model.

Every name in :data:`repro.parallel.base.ENGINE_REGISTRY` has a builder
here (plus the two sequential engines, ``generational`` and
``steady-state``), so :func:`build_run` can construct *any* engine the
framework ships from a :class:`~repro.spec.components.RunSpec` and
:func:`run_spec` can execute it.

Builders receive already-built params (problems, configs, clusters,
operators — :func:`~repro.spec.components.build_value` lowers the nested
specs first) and forward them to the engine constructor, so a spec-built
engine is *the same object graph* a hand-written construction produces:
same-seed runs are fingerprint-identical either way.

``run_spec`` stamps ``extras["spec_digest"]`` on the returned
:class:`~repro.parallel.base.RunReport` — the provenance companion to
the trace digest: the report names both what ran (spec digest) and what
it did (trace digest).
"""

from __future__ import annotations

from typing import Any

from ..core.engine import GenerationalEngine, SteadyStateEngine
from ..parallel.async_master_slave import SimulatedAsyncMasterSlave
from ..parallel.base import RunReport
from ..parallel.cellular_distributed import DistributedCellularGA
from ..parallel.hierarchical import HierarchicalGA
from ..parallel.hybrid import (
    CellularIslandModel,
    MasterSlaveIslandModel,
    SimulatedMasterSlaveIslandModel,
)
from ..parallel.island import IslandModel, SimulatedIslandModel
from ..parallel.master_slave import SimulatedMasterSlave
from ..parallel.pool import PooledEvolution
from ..parallel.specialized import (
    SpecializedIslandModel,
    SimulatedSpecializedIslandModel,
)
from .components import (
    ClusterSpec,
    EngineSpec,
    GAConfigSpec,
    OperatorSpec,
    ProblemSpec,
    RunSpec,
    build_value,
)
from .registry import register_engine

__all__ = ["build_run", "run_spec"]


def _island_like(cls):
    """Builder for the island family: ``total_population`` selects the
    :meth:`partitioned` classmethod (equal split, remainder to the first
    demes), otherwise ``config`` is per-deme."""

    def build(
        *,
        problem,
        n_islands,
        config=None,
        total_population=None,
        seed=None,
        **kwargs,
    ):
        if total_population is not None:
            return cls.partitioned(
                problem, total_population, n_islands, config, seed=seed, **kwargs
            )
        return cls(problem, n_islands, config, seed=seed, **kwargs)

    return build


_EX_PROBLEM = ProblemSpec("onemax", {"length": 24})
_EX_CONFIG = GAConfigSpec({"population_size": 12, "elitism": 1})

register_engine(
    "island",
    _island_like(IslandModel),
    exemplar={
        "params": {"problem": _EX_PROBLEM, "n_islands": 3, "config": _EX_CONFIG},
        "run": {"termination": 3},
    },
)
register_engine(
    "sim-island",
    _island_like(SimulatedIslandModel),
    exemplar={
        "params": {
            "problem": _EX_PROBLEM,
            "n_islands": 3,
            "config": _EX_CONFIG,
            "cluster": ClusterSpec(3),
            "eval_cost": 1e-3,
            "max_epochs": 3,
        },
        "run": {},
    },
)
register_engine(
    "sim-master-slave-island",
    _island_like(SimulatedMasterSlaveIslandModel),
    exemplar={
        "params": {
            "problem": _EX_PROBLEM,
            "n_islands": 3,
            "config": _EX_CONFIG,
            "cluster": ClusterSpec(3),
            "eval_cost": 1e-3,
            "max_epochs": 3,
            "local_workers": 2,
        },
        "run": {},
    },
)
register_engine(
    "cellular-island",
    _island_like(CellularIslandModel),
    exemplar={
        "params": {
            "problem": _EX_PROBLEM,
            "n_islands": 3,
            "rows": 4,
            "cols": 4,
        },
        "run": {"epochs": 3},
    },
)
register_engine(
    "master-slave-island",
    _island_like(MasterSlaveIslandModel),
    exemplar={
        "params": {"problem": _EX_PROBLEM, "n_islands": 3, "config": _EX_CONFIG},
        "run": {"termination": 3},
    },
)


@register_engine(
    "sim-master-slave",
    exemplar={
        "params": {
            "problem": _EX_PROBLEM,
            "config": _EX_CONFIG,
            "cluster": ClusterSpec(4),
            "eval_cost": 1e-3,
        },
        "run": {"termination": 3},
    },
)
def _sim_master_slave(*, problem, config=None, seed=None, **kwargs):
    return SimulatedMasterSlave(problem, config, seed=seed, **kwargs)


@register_engine(
    "async-master-slave",
    exemplar={
        "params": {
            "problem": _EX_PROBLEM,
            "config": _EX_CONFIG,
            "cluster": ClusterSpec(4),
            "eval_cost": 1e-3,
        },
        "run": {"max_evaluations": 300},
    },
)
def _async_master_slave(*, problem, config=None, seed=None, **kwargs):
    return SimulatedAsyncMasterSlave(problem, config, seed=seed, **kwargs)


@register_engine(
    "pool",
    exemplar={
        "params": {
            "problem": _EX_PROBLEM,
            "config": _EX_CONFIG,
            "cluster": ClusterSpec(4),
            "eval_cost": 1e-3,
            "max_transactions": 60,
        },
        "run": {},
    },
)
def _pool(*, problem, config=None, seed=None, **kwargs):
    return PooledEvolution(problem, config, seed=seed, **kwargs)


@register_engine(
    "distributed-cellular",
    exemplar={
        "params": {
            "problem": _EX_PROBLEM,
            "rows": 6,
            "cols": 6,
            "cluster": ClusterSpec(4),
            "eval_cost": 1e-3,
        },
        "run": {"max_sweeps": 3},
    },
)
def _distributed_cellular(*, problem, config=None, seed=None, **kwargs):
    return DistributedCellularGA(problem, config, seed=seed, **kwargs)


@register_engine(
    "hierarchical",
    exemplar={
        "params": {
            "problem": ProblemSpec("transonic-wing"),
            "config": _EX_CONFIG,
            "layers": 2,
            "branching": 2,
        },
        "run": {"max_epochs": 3},
    },
)
def _hierarchical(*, problem, config=None, seed=None, **kwargs):
    return HierarchicalGA(problem, config, seed=seed, **kwargs)


_EX_SCENARIO = OperatorSpec(
    "sim-scenario",
    {"name": "S", "weights": [[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]]},
)


@register_engine(
    "specialized",
    exemplar={
        "params": {
            "problem": ProblemSpec("zdt1", {"dims": 8}),
            "scenario": _EX_SCENARIO,
            "config": _EX_CONFIG,
            "hv_reference": [1.1, 7.0],
        },
        "run": {"epochs": 3},
    },
)
def _specialized(*, problem, scenario, config=None, seed=None, **kwargs):
    return SpecializedIslandModel(problem, scenario, config, seed=seed, **kwargs)


@register_engine(
    "sim-specialized",
    exemplar={
        "params": {
            "problem": ProblemSpec("zdt1", {"dims": 8}),
            "scenario": _EX_SCENARIO,
            "config": _EX_CONFIG,
            "hv_reference": [1.1, 7.0],
            "cluster": ClusterSpec(3),
            "eval_cost": 1e-3,
            "max_epochs": 3,
        },
        "run": {},
    },
)
def _sim_specialized(*, problem, scenario, config=None, seed=None, **kwargs):
    return SimulatedSpecializedIslandModel(problem, scenario, config, seed=seed, **kwargs)


@register_engine(
    "generational",
    exemplar={
        "params": {"problem": _EX_PROBLEM, "config": _EX_CONFIG},
        "run": {"termination": 3},
    },
)
def _generational(*, problem, config=None, seed=None, **kwargs):
    return GenerationalEngine(problem, config, seed=seed, **kwargs)


@register_engine(
    "steady-state",
    exemplar={
        "params": {"problem": _EX_PROBLEM, "config": _EX_CONFIG},
        "run": {"termination": 3},
    },
)
def _steady_state(*, problem, config=None, seed=None, **kwargs):
    return SteadyStateEngine(problem, config, seed=seed, **kwargs)


# -- construction + execution ------------------------------------------------------


def build_run(spec: RunSpec) -> Any:
    """Construct the engine a :class:`RunSpec` describes (without running).

    Pure construction: the returned engine is indistinguishable from a
    hand-written one, so callers that need mid-run access (stepping
    loops, trace audits, population inspection) drive it exactly as
    before.
    """
    return spec.engine.build(seed=spec.seed)


def run_spec(spec: RunSpec) -> Any:
    """Build and execute one :class:`RunSpec`.

    Parallel engines return a :class:`~repro.parallel.base.RunReport`
    with ``extras["spec_digest"]`` stamped for provenance; the two
    sequential engines return their native
    :class:`~repro.core.engine.EvolutionResult` unchanged.
    """
    engine = build_run(spec)
    run_kwargs = {k: build_value(v) for k, v in spec.run.items()}
    report = engine.run(**run_kwargs)
    if isinstance(report, RunReport):
        report.extras["spec_digest"] = spec.digest()
    return report
