"""Component registries: name -> factory, one per component kind.

The spec layer's premise is that a run is *data*: every problem,
operator, topology and engine a :class:`~repro.spec.components.RunSpec`
can reference must resolve through a named registry, so a JSON document
produced on one machine builds the identical object graph on another.

Each registry entry carries the factory plus an *exemplar* — a params
dict known to build a valid instance — which is what lets the round-trip
property suite and the spec fuzzer exercise every registered component
generically instead of maintaining a parallel table by hand.

Lookups never raise a bare ``KeyError``: an unknown name produces an
:class:`UnknownComponentError` carrying a did-you-mean suggestion
(closest registered name via :func:`difflib.get_close_matches`).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "UnknownComponentError",
    "RegistryEntry",
    "Registry",
    "PROBLEMS",
    "OPERATORS",
    "TOPOLOGIES",
    "ENGINE_BUILDERS",
    "register_problem",
    "register_operator",
    "register_topology",
    "register_engine",
    "suggest",
]


def suggest(name: str, known: Iterable[str]) -> str:
    """``" — did you mean 'x'?"`` for the closest known name, or ``""``."""
    matches = difflib.get_close_matches(name, list(known), n=1, cutoff=0.5)
    return f" — did you mean {matches[0]!r}?" if matches else ""


class UnknownComponentError(KeyError):
    """Unknown component name, with a did-you-mean suggestion.

    Subclasses ``KeyError`` so existing ``except KeyError`` callers keep
    working, but ``str()`` renders the full message (plain ``KeyError``
    would show only the repr of its first arg).
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:
        return self.message


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: its factory plus a buildable exemplar."""

    name: str
    factory: Callable[..., Any]
    exemplar: Mapping[str, Any] = field(default_factory=dict)


class Registry:
    """Name -> :class:`RegistryEntry` map for one component kind."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}

    def register(
        self,
        name: str,
        factory: Callable[..., Any] | None = None,
        *,
        exemplar: Mapping[str, Any] | None = None,
    ):
        """Register ``factory`` under ``name`` (usable as a decorator)."""

        def _add(fn: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._entries:
                raise ValueError(f"duplicate {self.kind} registration {name!r}")
            self._entries[name] = RegistryEntry(
                name=name, factory=fn, exemplar=dict(exemplar or {})
            )
            return fn

        if factory is not None:
            return _add(factory)
        return _add

    def get(self, name: str) -> RegistryEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownComponentError(
                f"unknown {self.kind} {name!r}{suggest(name, self._entries)}"
            ) from None

    def build(self, name: str, /, **params: Any) -> Any:
        return self.get(name).factory(**params)

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self):
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)


PROBLEMS = Registry("problem")
OPERATORS = Registry("operator")
TOPOLOGIES = Registry("topology")
ENGINE_BUILDERS = Registry("engine")

register_problem = PROBLEMS.register
register_operator = OPERATORS.register
register_topology = TOPOLOGIES.register
register_engine = ENGINE_BUILDERS.register
