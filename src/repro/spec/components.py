"""Typed, versioned run-spec dataclasses with canonical JSON round-trip.

A :class:`RunSpec` is the serializable description of one engine run:
which engine, built from which problem / operators / topology / cluster,
with which seed, driven with which run arguments.  The JSON schema is
``repro-runspec/v1``; :meth:`RunSpec.digest` is a sha256 over the
canonical JSON form (sorted keys, compact separators, floats via
``repr`` as Python's ``json`` emits them), so two specs that build the
same run have the same content address — this digest is what the sweep
cache keys on.

Component references serialize as tagged dicts::

    {"$spec": "problem",  "name": "onemax",   "params": {"length": 64}}
    {"$spec": "operator", "name": "periodic", "params": {"interval": 4}}
    {"$spec": "topology", "name": "ring",     "params": {}}
    {"$spec": "config",   "params": {"population_size": 32}}
    {"$spec": "cluster",  "n_nodes": 8, ...}
    {"$spec": "engine",   "name": "island",   "params": {...}}
    {"$spec": "fault-plan", "intervals": [...], ...}

``params`` values nest freely (scalars, lists, string-keyed dicts, other
specs).  ``Infinity`` is permitted — fault-plan intervals use it for
permanent crashes — and round-trips through Python's ``json`` module.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields as dc_fields
from typing import Any, ClassVar, Mapping

import numpy as np

from ..cluster.faults import FaultPlan
from ..cluster.machine import SimulatedCluster
from ..cluster.network import Network
from ..core.config import GAConfig
from .registry import (
    ENGINE_BUILDERS,
    OPERATORS,
    PROBLEMS,
    TOPOLOGIES,
    suggest,
)

__all__ = [
    "SCHEMA",
    "ComponentSpec",
    "ProblemSpec",
    "OperatorSpec",
    "TopologySpec",
    "GAConfigSpec",
    "ClusterSpec",
    "EngineSpec",
    "RunSpec",
    "encode_value",
    "decode_value",
    "build_value",
    "canonical_json",
    "spec_digest",
]

SCHEMA = "repro-runspec/v1"

#: reserved key marking a tagged spec dict in the JSON form
_TAG = "$spec"


# -- component references ----------------------------------------------------------


@dataclass(frozen=True)
class ComponentSpec:
    """A named component reference: registry name + constructor params."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    #: which registry resolves :attr:`name` (set per subclass)
    KIND: ClassVar[str] = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    def _registry(self):
        return {"problem": PROBLEMS, "operator": OPERATORS, "topology": TOPOLOGIES}[
            self.KIND
        ]

    def build(self) -> Any:
        entry = self._registry().get(self.name)
        return entry.factory(**{k: build_value(v) for k, v in self.params.items()})


class ProblemSpec(ComponentSpec):
    KIND = "problem"


class OperatorSpec(ComponentSpec):
    KIND = "operator"


class TopologySpec(ComponentSpec):
    KIND = "topology"


_COMPONENT_BY_KIND = {
    "problem": ProblemSpec,
    "operator": OperatorSpec,
    "topology": TopologySpec,
}


# -- GA configuration --------------------------------------------------------------


@dataclass(frozen=True)
class GAConfigSpec:
    """Declarative :class:`~repro.core.config.GAConfig`.

    ``params`` holds exactly the constructor arguments the run names —
    unnamed fields keep the library defaults, so building the spec
    constructs the same object a hand-written ``GAConfig(...)`` call
    would.  Operator-valued fields (``selection``, ``crossover``,
    ``mutation``, ``replacement``) take :class:`OperatorSpec` values.
    """

    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        known = {f.name for f in dc_fields(GAConfig)}
        for key in self.params:
            if key not in known:
                raise ValueError(
                    f"unknown GAConfig field {key!r}{suggest(key, known)}"
                )

    def build(self) -> GAConfig:
        return GAConfig(**{k: build_value(v) for k, v in self.params.items()})


# -- simulated machine -------------------------------------------------------------


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative :class:`~repro.cluster.machine.SimulatedCluster`.

    ``latency`` / ``bandwidth`` describe the :class:`Network` (``None``
    for both means the cluster's default network); ``fault_plan`` is a
    :class:`~repro.cluster.faults.FaultPlan` (serialized as a tagged
    dict).  ``speeds`` is a scalar or per-node list.
    """

    n_nodes: int
    speeds: Any = 1.0
    latency: float | None = None
    bandwidth: float | None = None
    fault_plan: FaultPlan | None = None
    tiebreak_jitter: float | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"cluster needs >= 1 node, got {self.n_nodes}")

    def build(self) -> SimulatedCluster:
        network = None
        if self.latency is not None or self.bandwidth is not None:
            kwargs: dict[str, Any] = {}
            if self.latency is not None:
                kwargs["latency"] = self.latency
            if self.bandwidth is not None:
                kwargs["bandwidth"] = self.bandwidth
            network = Network(self.n_nodes, **kwargs)
        speeds = self.speeds
        if isinstance(speeds, (list, tuple)):
            speeds = [float(s) for s in speeds]
        return SimulatedCluster(
            self.n_nodes,
            speeds=speeds,
            network=network,
            fault_plan=self.fault_plan,
            tiebreak_jitter=self.tiebreak_jitter,
        )


# -- engine ------------------------------------------------------------------------


@dataclass(frozen=True)
class EngineSpec:
    """A named engine builder plus its (possibly spec-valued) params."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        if "seed" in self.params:
            raise ValueError(
                "engine params must not carry 'seed' — set RunSpec.seed instead"
            )

    def build(self, seed: int | None = None) -> Any:
        entry = ENGINE_BUILDERS.get(self.name)
        built = {k: build_value(v) for k, v in self.params.items()}
        return entry.factory(seed=seed, **built)


# -- the run spec ------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One engine run as data: engine + seed + ``run(**run)`` arguments."""

    engine: EngineSpec
    seed: int | None = None
    run: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "run", dict(self.run))

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "engine": encode_value(self.engine),
            "seed": self.seed,
            "run": {k: encode_value(v) for k, v in self.run.items()},
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "RunSpec":
        schema = doc.get("schema")
        if schema != SCHEMA:
            raise ValueError(f"not a {SCHEMA} document (schema={schema!r})")
        engine = decode_value(doc["engine"])
        if not isinstance(engine, EngineSpec):
            raise ValueError("'engine' must be a tagged engine spec")
        seed = doc.get("seed")
        if seed is not None:
            seed = int(seed)
        run = {k: decode_value(v) for k, v in dict(doc.get("run", {})).items()}
        return cls(engine=engine, seed=seed, run=run)

    def to_json(self, *, indent: int | None = None) -> str:
        return canonical_json(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Content address: sha256 over the canonical JSON form."""
        return spec_digest(self.to_dict())


def canonical_json(doc: Mapping[str, Any], *, indent: int | None = None) -> str:
    """Canonical JSON: sorted keys, compact separators (unless indented)."""
    seps = (",", ": ") if indent is not None else (",", ":")
    return json.dumps(doc, sort_keys=True, separators=seps, indent=indent)


def spec_digest(doc: Mapping[str, Any]) -> str:
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


# -- value encoding ----------------------------------------------------------------


def encode_value(value: Any, depth: int = 0) -> Any:
    """Lower a spec-level value to plain JSON data (tagged dicts for specs)."""
    if depth > 16:
        raise ValueError("spec value nests too deeply to encode")
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return encode_value(value.tolist(), depth + 1)
    if isinstance(value, ComponentSpec):
        return {
            _TAG: value.KIND,
            "name": value.name,
            "params": {k: encode_value(v, depth + 1) for k, v in value.params.items()},
        }
    if isinstance(value, GAConfigSpec):
        return {
            _TAG: "config",
            "params": {k: encode_value(v, depth + 1) for k, v in value.params.items()},
        }
    if isinstance(value, ClusterSpec):
        return {
            _TAG: "cluster",
            "n_nodes": value.n_nodes,
            "speeds": encode_value(value.speeds, depth + 1),
            "latency": value.latency,
            "bandwidth": value.bandwidth,
            "fault_plan": encode_value(value.fault_plan, depth + 1),
            "tiebreak_jitter": value.tiebreak_jitter,
        }
    if isinstance(value, EngineSpec):
        return {
            _TAG: "engine",
            "name": value.name,
            "params": {k: encode_value(v, depth + 1) for k, v in value.params.items()},
        }
    if isinstance(value, FaultPlan):
        return {
            _TAG: "fault-plan",
            "intervals": [[list(span) for span in node] for node in value.intervals],
            "latency_spikes": [list(s) for s in value.latency_spikes],
            "loss_rate": value.loss_rate,
            "dup_rate": value.dup_rate,
            "link_faults": [list(l) for l in value.link_faults],
            "partitions": [
                [p.start, p.end, list(p.group)] for p in value.partitions
            ],
            "link_seed": value.link_seed,
        }
    if isinstance(value, Mapping):
        out: dict[str, Any] = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise TypeError(f"spec dict keys must be strings, got {k!r}")
            if k == _TAG:
                raise ValueError(f"{_TAG!r} is a reserved spec key")
            out[k] = encode_value(v, depth + 1)
        return out
    if isinstance(value, (list, tuple)):
        return [encode_value(v, depth + 1) for v in value]
    raise TypeError(
        f"cannot serialize {type(value).__name__} into a run spec — use a "
        "registered component reference (ProblemSpec/OperatorSpec/...) "
        "or plain JSON data"
    )


def decode_value(value: Any) -> Any:
    """Raise plain JSON data back to spec-level values."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if not isinstance(value, Mapping):
        return value
    tag = value.get(_TAG)
    if tag is None:
        return {k: decode_value(v) for k, v in value.items()}
    if tag in _COMPONENT_BY_KIND:
        return _COMPONENT_BY_KIND[tag](
            name=value["name"],
            params={k: decode_value(v) for k, v in dict(value.get("params", {})).items()},
        )
    if tag == "config":
        return GAConfigSpec(
            params={k: decode_value(v) for k, v in dict(value.get("params", {})).items()}
        )
    if tag == "cluster":
        return ClusterSpec(
            n_nodes=int(value["n_nodes"]),
            speeds=decode_value(value.get("speeds", 1.0)),
            latency=value.get("latency"),
            bandwidth=value.get("bandwidth"),
            fault_plan=decode_value(value.get("fault_plan")),
            tiebreak_jitter=value.get("tiebreak_jitter"),
        )
    if tag == "engine":
        return EngineSpec(
            name=value["name"],
            params={k: decode_value(v) for k, v in dict(value.get("params", {})).items()},
        )
    if tag == "fault-plan":
        return FaultPlan(
            intervals=tuple(
                tuple((float(a), float(b)) for a, b in node)
                for node in value.get("intervals", [])
            ),
            latency_spikes=tuple(
                (float(a), float(b), float(f))
                for a, b, f in value.get("latency_spikes", [])
            ),
            loss_rate=float(value.get("loss_rate", 0.0)),
            dup_rate=float(value.get("dup_rate", 0.0)),
            link_faults=tuple(
                (int(s), int(d), float(loss), float(dup))
                for s, d, loss, dup in value.get("link_faults", [])
            ),
            partitions=tuple(
                (float(a), float(b), tuple(int(n) for n in group))
                for a, b, group in value.get("partitions", [])
            ),
            link_seed=int(value.get("link_seed", 0)),
        )
    raise ValueError(f"unknown spec tag {tag!r}")


def build_value(value: Any) -> Any:
    """Construct the runtime object a spec-level value describes."""
    if isinstance(
        value, (ComponentSpec, GAConfigSpec, ClusterSpec)
    ):
        return value.build()
    if isinstance(value, EngineSpec):
        raise ValueError("nested engine specs are not supported inside params")
    if isinstance(value, Mapping):
        return {k: build_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [build_value(v) for v in value]
    return value
