"""Declarative run specs: every run is serializable data built through
one registry.

The paper's taxonomy (master-slave, island, cellular, hierarchical,
specialized) is a *configuration space*; this package makes each point in
it a typed, versioned, content-addressed document (schema
``repro-runspec/v1``) instead of a hand-written Python closure:

    >>> from repro.spec import RunSpec, engine, problem, ga_config, run_spec
    >>> spec = RunSpec(
    ...     engine=engine(
    ...         "island",
    ...         problem=problem("onemax", length=64),
    ...         n_islands=4,
    ...         config=ga_config(population_size=16, elitism=1),
    ...     ),
    ...     seed=7,
    ...     run={"termination": 20},
    ... )
    >>> report = run_spec(spec)          # execute it
    >>> doc = spec.to_json()             # ship it
    >>> RunSpec.from_json(doc) == spec   # round-trip it
    True
    >>> spec.digest()                    # content-address it (cache key)
    '...'

Every built-in problem, operator, topology and engine resolves through
the registries in :mod:`repro.spec.registry`; registering a component
makes it constructible from JSON, coverable by the round-trip property
suite, and reachable by the spec fuzzer.  See ``docs/run_specs.md``.
"""

from __future__ import annotations

from typing import Any

from .components import (
    SCHEMA,
    ClusterSpec,
    ComponentSpec,
    EngineSpec,
    GAConfigSpec,
    OperatorSpec,
    ProblemSpec,
    RunSpec,
    TopologySpec,
    build_value,
    canonical_json,
    decode_value,
    encode_value,
    spec_digest,
)
from .registry import (
    ENGINE_BUILDERS,
    OPERATORS,
    PROBLEMS,
    TOPOLOGIES,
    Registry,
    RegistryEntry,
    UnknownComponentError,
    register_engine,
    register_operator,
    register_problem,
    register_topology,
    suggest,
)

# populate the registries with every built-in component and engine
from . import builtins as _builtins  # noqa: F401  (import for side effects)
from .engines import build_run, run_spec

__all__ = [
    "SCHEMA",
    "RunSpec",
    "EngineSpec",
    "ProblemSpec",
    "OperatorSpec",
    "TopologySpec",
    "GAConfigSpec",
    "ClusterSpec",
    "ComponentSpec",
    "build_run",
    "run_spec",
    "build_value",
    "encode_value",
    "decode_value",
    "canonical_json",
    "spec_digest",
    "Registry",
    "RegistryEntry",
    "UnknownComponentError",
    "suggest",
    "PROBLEMS",
    "OPERATORS",
    "TOPOLOGIES",
    "ENGINE_BUILDERS",
    "register_problem",
    "register_operator",
    "register_topology",
    "register_engine",
    "problem",
    "operator",
    "topology",
    "ga_config",
    "cluster",
    "engine",
]


# -- shorthand constructors (keep experiment modules terse) ------------------------


def problem(name: str, /, **params: Any) -> ProblemSpec:
    return ProblemSpec(name, params)


def operator(name: str, /, **params: Any) -> OperatorSpec:
    return OperatorSpec(name, params)


def topology(name: str, /, **params: Any) -> TopologySpec:
    return TopologySpec(name, params)


def ga_config(**params: Any) -> GAConfigSpec:
    return GAConfigSpec(params)


def cluster(n_nodes: int, /, **params: Any) -> ClusterSpec:
    return ClusterSpec(n_nodes, **params)


def engine(name: str, /, **params: Any) -> EngineSpec:
    return EngineSpec(name, params)
