"""Built-in component registrations: every shipped problem, operator and
topology resolves through the spec registries.

Importing this module (which ``repro.spec`` does) populates
:data:`~repro.spec.registry.PROBLEMS`, :data:`~repro.spec.registry.OPERATORS`
and :data:`~repro.spec.registry.TOPOLOGIES`.  Each registration carries an
*exemplar* params dict known to build a valid instance — the round-trip
property suite and the spec fuzzer iterate these, so adding a component
here automatically adds it to both.
"""

from __future__ import annotations

from ..core.operators.crossover import (
    ArithmeticCrossover,
    BlendCrossover,
    CycleCrossover,
    KPointCrossover,
    OnePointCrossover,
    OrderCrossover,
    PartiallyMappedCrossover,
    SimulatedBinaryCrossover,
    TwoDimensionalCrossover,
    TwoPointCrossover,
    UniformCrossover,
)
from ..core.operators.mutation import (
    BitFlipMutation,
    CreepMutation,
    GaussianMutation,
    InsertionMutation,
    InversionMutation,
    PolynomialMutation,
    ScrambleMutation,
    SwapMutation,
    UniformResetMutation,
)
from ..core.operators.replacement import (
    ReplaceOldest,
    ReplaceRandom,
    ReplaceWorst,
    ReplaceWorstIfBetter,
)
from ..core.operators.selection import (
    BestSelection,
    BoltzmannSelection,
    LinearRankSelection,
    RandomSelection,
    RouletteWheelSelection,
    StochasticUniversalSampling,
    TournamentSelection,
    TruncationSelection,
)
from ..core.termination import (
    AllOf,
    AnyOf,
    MaxEvaluations,
    MaxGenerations,
    Never,
    Stagnation,
    TargetFitness,
)
from ..migration.policy import MigrationPolicy
from ..migration.schedule import (
    NeverSchedule,
    PeriodicSchedule,
    ProbabilisticSchedule,
    StagnationTriggeredSchedule,
)
from ..migration.synchrony import Synchrony
from ..parallel.specialized import SIMScenario, standard_scenarios
from ..problems import (
    Ackley,
    DeceptiveTrap,
    FonsecaFleming,
    GraphBipartition,
    Griewank,
    Knapsack,
    LeadingOnes,
    MaxSat,
    NKLandscape,
    OneMax,
    PPeaks,
    Rastrigin,
    Rosenbrock,
    RoyalRoad,
    SchafferF2,
    Schwefel,
    Sphere,
    SubsetSum,
    TaskGraphScheduling,
    TravelingSalesman,
    Weierstrass,
    ZDT1,
    ZDT2,
    ZDT3,
    ZeroMax,
    spectrum,
)
from ..problems.applications.feature_selection import FeatureSelection
from ..problems.applications.reactor import ReactorCoreDesign
from ..problems.applications.stock import StockPrediction
from ..problems.applications.wing import TransonicWingDesign
from ..topology.static import topology_by_name
from .components import OperatorSpec
from .registry import register_operator, register_problem, register_topology

# -- problems ----------------------------------------------------------------------

register_problem("onemax", OneMax, exemplar={"length": 32})
register_problem("zeromax", ZeroMax, exemplar={"length": 32})
register_problem("leading-ones", LeadingOnes, exemplar={"length": 32})
register_problem("deceptive-trap", DeceptiveTrap, exemplar={"blocks": 4, "k": 4})
register_problem("royal-road", RoyalRoad, exemplar={"blocks": 4, "block_size": 8})
register_problem(
    "nk-landscape", NKLandscape, exemplar={"n": 24, "k": 2, "seed": 0}
)
register_problem("p-peaks", PPeaks, exemplar={"p": 16, "length": 32, "seed": 0})
register_problem(
    "subset-sum", SubsetSum, exemplar={"n": 24, "seed": 0}
)
register_problem(
    "max-sat", MaxSat, exemplar={"n_vars": 24, "n_clauses": 100, "seed": 0}
)
register_problem("knapsack", Knapsack, exemplar={"n": 24, "seed": 0})
register_problem(
    "graph-bipartition", GraphBipartition, exemplar={"n": 24, "seed": 0}
)
register_problem(
    "task-graph-scheduling", TaskGraphScheduling, exemplar={"n_tasks": 16, "seed": 0}
)
register_problem("tsp-circular", TravelingSalesman.circular, exemplar={"n_cities": 12})
register_problem("sphere", Sphere, exemplar={"dims": 8})
register_problem("rastrigin", Rastrigin, exemplar={"dims": 8})
register_problem("ackley", Ackley, exemplar={"dims": 8})
register_problem("griewank", Griewank, exemplar={"dims": 8})
register_problem("schwefel", Schwefel, exemplar={"dims": 8})
register_problem("rosenbrock", Rosenbrock, exemplar={"dims": 8})
register_problem("weierstrass", Weierstrass, exemplar={"dims": 6})
register_problem("zdt1", ZDT1, exemplar={"dims": 12})
register_problem("zdt2", ZDT2, exemplar={"dims": 12})
register_problem("zdt3", ZDT3, exemplar={"dims": 12})
register_problem("schaffer-f2", SchafferF2, exemplar={})
register_problem("fonseca-fleming", FonsecaFleming, exemplar={"dims": 3})
register_problem("transonic-wing", TransonicWingDesign, exemplar={})
register_problem(
    "stock-prediction", StockPrediction, exemplar={"seed": 0, "hidden": 4}
)
register_problem("reactor-core", ReactorCoreDesign, exemplar={"mesh_points": 20})
register_problem(
    "feature-selection-synthetic",
    FeatureSelection.synthetic,
    exemplar={"n_features": 40, "n_informative": 8, "n_samples": 60, "seed": 0},
)


@register_problem("transonic-wing-truth", exemplar={})
def _transonic_wing_truth(mach: float = 0.82, cl_required: float = 0.5):
    """Truth-fidelity view of the transonic wing (E7's all-complex arm)."""
    mf = TransonicWingDesign(mach, cl_required)
    return mf.view(mf.highest_fidelity())


@register_problem("spectrum", exemplar={"name": "easy", "seed": 0})
def _spectrum_problem(name: str, seed: int = 0):
    """One named member of the difficulty spectrum (E4's problem suite)."""
    suite = spectrum(seed=seed)
    if name not in suite:
        from .registry import suggest

        raise ValueError(f"unknown spectrum problem {name!r}{suggest(name, suite)}")
    return suite[name]


# -- operators: selection ----------------------------------------------------------

register_operator("tournament", TournamentSelection, exemplar={"size": 2})
register_operator("roulette", RouletteWheelSelection, exemplar={})
register_operator("linear-rank", LinearRankSelection, exemplar={})
register_operator("sus", StochasticUniversalSampling, exemplar={})
register_operator("truncation", TruncationSelection, exemplar={})
register_operator("boltzmann", BoltzmannSelection, exemplar={})
register_operator("random-selection", RandomSelection, exemplar={})
register_operator("best-selection", BestSelection, exemplar={})

# -- operators: crossover ----------------------------------------------------------

register_operator("one-point", OnePointCrossover, exemplar={})
register_operator("two-point", TwoPointCrossover, exemplar={})
register_operator("k-point", KPointCrossover, exemplar={"k": 3})
register_operator("uniform", UniformCrossover, exemplar={})
register_operator("arithmetic", ArithmeticCrossover, exemplar={})
register_operator("blend", BlendCrossover, exemplar={})
register_operator("sbx", SimulatedBinaryCrossover, exemplar={})
register_operator("pmx", PartiallyMappedCrossover, exemplar={})
register_operator("order", OrderCrossover, exemplar={})
register_operator("cycle", CycleCrossover, exemplar={})
register_operator(
    "two-dimensional", TwoDimensionalCrossover, exemplar={"rows": 4, "cols": 4}
)

# -- operators: mutation -----------------------------------------------------------

register_operator("bit-flip", BitFlipMutation, exemplar={})
register_operator("gaussian", GaussianMutation, exemplar={})
register_operator(
    "uniform-reset", UniformResetMutation, exemplar={"lower": 0.0, "upper": 1.0}
)
register_operator(
    "polynomial", PolynomialMutation, exemplar={"lower": 0.0, "upper": 1.0}
)
register_operator("creep", CreepMutation, exemplar={"low": 0, "high": 7})
register_operator("swap", SwapMutation, exemplar={})
register_operator("inversion", InversionMutation, exemplar={})
register_operator("scramble", ScrambleMutation, exemplar={})
register_operator("insertion", InsertionMutation, exemplar={})

# -- operators: replacement --------------------------------------------------------

register_operator("replace-worst", ReplaceWorst, exemplar={})
register_operator("replace-worst-if-better", ReplaceWorstIfBetter, exemplar={})
register_operator("replace-random", ReplaceRandom, exemplar={})
register_operator("replace-oldest", ReplaceOldest, exemplar={})

# -- operators: migration ----------------------------------------------------------

register_operator(
    "migration-policy",
    MigrationPolicy,
    exemplar={"rate": 1, "selection": "best", "replacement": "worst-if-better"},
)
register_operator("periodic", PeriodicSchedule, exemplar={"interval": 4})
register_operator("probabilistic", ProbabilisticSchedule, exemplar={"prob": 0.2})
register_operator(
    "stagnation-triggered", StagnationTriggeredSchedule, exemplar={"patience": 5}
)
register_operator("never", NeverSchedule, exemplar={})
register_operator("synchrony", Synchrony, exemplar={"synchronous": True})

# -- operators: termination --------------------------------------------------------

register_operator("max-generations", MaxGenerations, exemplar={"limit": 5})
register_operator("max-evaluations", MaxEvaluations, exemplar={"limit": 500})
register_operator("target-fitness", TargetFitness, exemplar={"target": 0.0})
register_operator("stagnation", Stagnation, exemplar={"patience": 5})
register_operator("never-terminate", Never, exemplar={})


_EX_CRITERIA = [
    OperatorSpec("max-generations", {"limit": 5}),
    OperatorSpec("target-fitness", {"target": 0.0}),
]


@register_operator("any-of", exemplar={"criteria": _EX_CRITERIA})
def _any_of(criteria):
    return AnyOf(*criteria)


@register_operator("all-of", exemplar={"criteria": _EX_CRITERIA})
def _all_of(criteria):
    return AllOf(*criteria)


# -- operators: specialized-island scenarios ---------------------------------------


@register_operator(
    "sim-scenario",
    exemplar={"name": "S", "weights": [[1.0, 0.0], [0.0, 1.0]]},
)
def _sim_scenario(
    name: str,
    weights,
    topology: str = "complete",
    migration_interval: int = 5,
) -> SIMScenario:
    return SIMScenario(
        name=name,
        weights=tuple(tuple(float(w) for w in row) for row in weights),
        topology=topology,
        migration_interval=migration_interval,
    )


@register_operator("standard-scenario", exemplar={"index": 0})
def _standard_scenario(index: int, n_objectives: int = 2) -> SIMScenario:
    scenarios = standard_scenarios(n_objectives)
    return scenarios[index]


# -- topologies --------------------------------------------------------------------

for _name, _exemplar in [
    ("ring", {"size": 4}),
    ("bidirectional-ring", {"size": 4}),
    ("complete", {"size": 4}),
    ("star", {"size": 4}),
    ("pipeline", {"size": 4}),
    ("isolated", {"size": 4}),
    ("grid", {"size": 4}),
    ("torus", {"size": 4}),
    ("hypercube", {"size": 4}),
]:
    register_topology(
        _name,
        (lambda name: lambda size, **kwargs: topology_by_name(name, size, **kwargs))(
            _name
        ),
        exemplar=_exemplar,
    )
