"""Ambient observability sessions — off by default, zero work when off.

The whole subsystem hangs off one module-level slot.  With no session
active, :func:`current_obs` returns ``None`` and every instrumentation
site in the engines is a single attribute-load-and-branch; the hot
simulator loop checks once per :meth:`Simulator.run` call, not per
event.  Enabling is one context manager::

    with obs_session(label="e03") as session:
        report = model.run()
    write_timeline(session, "out.json")

Sessions do not nest by accident: entering a new session *replaces* the
ambient one and restores it on exit, which is exactly what the sweep
driver wants — each forked trial opens its own child session, exports
it, and the parent merges the children under per-trial track prefixes
(:meth:`ObsSession.merge_child`).

Instrumented code records spans via ``session.spans`` and process-level
counters via ``session.metrics``; engines additionally push one line per
finished run (:meth:`ObsSession.note_run`) so a timeline knows which
reports it covers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from .metrics import MetricRegistry
from .spans import SpanRecord, SpanRecorder

__all__ = ["ObsSession", "current_obs", "obs_enabled", "obs_session"]

_ACTIVE: "ObsSession | None" = None


class ObsSession:
    """One enabled observability window: spans + metrics + run notes."""

    def __init__(self, label: str = "obs") -> None:
        self.label = label
        self.spans = SpanRecorder()
        self.metrics = MetricRegistry()
        self.runs: list[dict[str, Any]] = []
        self.children: list[str] = []
        self.wall_start = time.perf_counter()

    def wall_now(self) -> float:
        """Wall seconds since the session opened."""
        return time.perf_counter() - self.wall_start

    def note_run(self, report: Any) -> None:
        """Register a finished engine run (called from ``_report``)."""
        self.runs.append(
            {
                "engine": getattr(report, "engine", "?"),
                "sim_time": getattr(report, "sim_time", None),
                "stop_reason": getattr(report, "stop_reason", None),
                "metrics": getattr(report, "metrics", {}),
            }
        )

    def merge_child(self, doc: dict[str, Any], prefix: str) -> None:
        """Fold a child session's exported timeline doc into this session.

        Child tracks are namespaced as ``{prefix}/{track}`` so trials
        never collide; child metric counters accumulate; child run notes
        append in merge order (the sweep driver merges in trial-index
        order, keeping the result deterministic).
        """
        id_base = self.spans._next_id
        for span in doc.get("spans", []):
            record = _span_from_dict(span, id_base, prefix)
            self.spans.spans.append(record)
            self.spans._next_id = max(self.spans._next_id, record.span_id)
        self.metrics.merge(doc.get("metrics", {}))
        for run in doc.get("runs", []):
            self.runs.append({**run, "trial": prefix})
        self.children.append(prefix)


def _span_from_dict(span: dict[str, Any], id_base: int, prefix: str) -> SpanRecord:
    parent = span.get("parent_id")
    return SpanRecord(
        span_id=span["span_id"] + id_base,
        parent_id=None if parent is None else parent + id_base,
        name=span["name"],
        track=f"{prefix}/{span['track']}",
        t0=span["t0"],
        t1=span["t1"],
        clock=span.get("clock", "sim"),
        attrs=dict(span.get("attrs", {})),
    )


def current_obs() -> ObsSession | None:
    """The ambient session, or ``None`` when observability is disabled."""
    return _ACTIVE


def obs_enabled() -> bool:
    return _ACTIVE is not None


@contextmanager
def obs_session(label: str = "obs") -> Iterator[ObsSession]:
    """Enable observability for the ``with`` body; restore the prior
    ambient session (usually ``None``) afterwards."""
    global _ACTIVE
    prior = _ACTIVE
    session = ObsSession(label=label)
    _ACTIVE = session
    try:
        yield session
    finally:
        session.spans.close_all()
        _ACTIVE = prior
