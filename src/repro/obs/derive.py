"""Paper metrics derived from spans: utilisation, comm/compute, idle time.

The survey's comparative tables are built on three per-architecture
quantities — worker utilisation, the communication/computation ratio and
idle time per node.  The engines already report some of these through
``extras`` (``utilisation`` for the asynchronous master-slave,
``compute_time``/``comm_time`` for the distributed cellular model); here
the same numbers are *re-derived* purely from the span timeline, which
gives an independent cross-check: the contract suite asserts span-derived
values agree with the engine-reported ones to 1e-9.

Span names are classified into phases by :data:`SPAN_PHASES`; names not
listed count as ``other`` and never pollute the comm/compute split.
"""

from __future__ import annotations

from typing import Any, Iterable

from .spans import SpanRecord

__all__ = [
    "SPAN_PHASES",
    "busy_time_by_track",
    "comm_compute_times",
    "comm_fraction",
    "derived_summary",
    "idle_time_by_track",
    "phase_times",
    "sim_horizon",
    "utilisation_by_track",
]

# span name -> phase. "compute" and "comm" are the split the paper's
# comm/compute ratio is built on; "frame" spans are structural (they
# contain other spans) and are excluded from busy-time sums.
SPAN_PHASES: dict[str, str] = {
    "evaluate": "compute",
    "compute": "compute",
    "master-compute": "compute",
    "breed": "compute",
    "migrate-send": "comm",
    "migrate-recv": "comm",
    "comm": "comm",
    "pull": "comm",
    "push": "comm",
    "recover": "recovery",
    "generation": "frame",
    "transaction": "frame",
    "sweep": "frame",
    "farm": "frame",
}


def _sim_spans(spans: Iterable[SpanRecord]) -> list[SpanRecord]:
    return [s for s in spans if s.clock == "sim"]


def phase_of(span: SpanRecord) -> str:
    return SPAN_PHASES.get(span.name, "other")


def phase_times(spans: Iterable[SpanRecord]) -> dict[str, float]:
    """Total sim-time per phase (frame spans excluded — they contain
    the others and would double count)."""
    totals: dict[str, float] = {}
    for span in _sim_spans(spans):
        phase = phase_of(span)
        if phase == "frame":
            continue
        totals[phase] = totals.get(phase, 0.0) + span.duration
    return totals


def comm_compute_times(spans: Iterable[SpanRecord]) -> tuple[float, float]:
    """``(comm_time, compute_time)`` summed from leaf spans."""
    totals = phase_times(spans)
    return totals.get("comm", 0.0), totals.get("compute", 0.0)


def comm_fraction(spans: Iterable[SpanRecord]) -> float:
    """Fraction of accounted time spent communicating, as in
    ``RunReport.comm_fraction``: comm / (compute + comm)."""
    comm, compute = comm_compute_times(spans)
    total = comm + compute
    return comm / total if total > 0 else 0.0


def sim_horizon(spans: Iterable[SpanRecord]) -> float:
    """Latest sim-time any span reaches (the timeline's right edge)."""
    sim = _sim_spans(spans)
    return max((s.t1 for s in sim), default=0.0)


def busy_time_by_track(
    spans: Iterable[SpanRecord], phases: tuple[str, ...] = ("compute", "comm")
) -> dict[str, float]:
    """Per-track sum of leaf-span durations in the given phases."""
    busy: dict[str, float] = {}
    for span in _sim_spans(spans):
        if phase_of(span) not in phases:
            continue
        busy[span.track] = busy.get(span.track, 0.0) + span.duration
    return busy


def utilisation_by_track(
    spans: Iterable[SpanRecord],
    horizon: float | None = None,
    phases: tuple[str, ...] = ("compute",),
) -> dict[str, float]:
    """Per-track busy fraction of the horizon, capped at 1.

    Matches the asynchronous master-slave's own bookkeeping: busy time
    is the sum of charged evaluation intervals (in-flight work included),
    the horizon is the run's end time.
    """
    if horizon is None:
        horizon = sim_horizon(spans)
    horizon = max(horizon, 1e-12)
    return {
        track: min(1.0, busy / horizon)
        for track, busy in busy_time_by_track(spans, phases).items()
    }


def idle_time_by_track(
    spans: Iterable[SpanRecord],
    horizon: float | None = None,
    phases: tuple[str, ...] = ("compute", "comm"),
) -> dict[str, float]:
    """Per-track ``horizon − busy`` (floored at 0): the paper's idle time
    per node."""
    if horizon is None:
        horizon = sim_horizon(spans)
    return {
        track: max(0.0, horizon - busy)
        for track, busy in busy_time_by_track(spans, phases).items()
    }


def derived_summary(spans: Iterable[SpanRecord]) -> dict[str, Any]:
    """All derived paper metrics in one JSON-ready block."""
    spans = list(spans)
    comm, compute = comm_compute_times(spans)
    horizon = sim_horizon(spans)
    return {
        "horizon": horizon,
        "phase_times": phase_times(spans),
        "comm_time": comm,
        "compute_time": compute,
        "comm_fraction": comm_fraction(spans),
        "busy_by_track": busy_time_by_track(spans),
        "utilisation_by_track": utilisation_by_track(spans, horizon),
        "idle_by_track": idle_time_by_track(spans, horizon),
    }
