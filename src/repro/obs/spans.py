"""Span recording: nested sim-time/wall-time intervals on named tracks.

A *span* is a closed interval ``[t0, t1]`` on one clock (``"sim"`` for
simulated cluster time, ``"wall"`` for host time) attached to a *track* —
one lane of the run's timeline, e.g. ``deme-3``, ``slave-2``,
``supervisor``.  Spans on the same track must nest properly: a child is
fully contained in its parent, and siblings never partially overlap.
That discipline is what makes the phase-resolved derivations in
:mod:`repro.obs.derive` meaningful (summing leaf durations never double
counts) and is machine-checked by :func:`repro.obs.validate.check_spans`.

Two recording styles coexist because the engines need both:

* :meth:`SpanRecorder.begin` / :meth:`SpanRecorder.end` — open a span
  now, close it later.  Natural for coroutine code that learns the end
  time only after yielding to the simulator.
* :meth:`SpanRecorder.record` — record an already-closed interval in one
  call.  Natural for timing models that *compute* a duration (an
  evaluation charged as ``[now, now + cost]``) before any time passes.

This module is dependency-free on purpose: ``repro.cluster`` and
``repro.runtime`` import it, so it must import neither.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["SpanRecord", "SpanHandle", "SpanRecorder"]


@dataclass
class SpanRecord:
    """One completed interval on a track."""

    span_id: int
    parent_id: int | None
    name: str
    track: str
    t0: float
    t1: float
    clock: str = "sim"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "track": self.track,
            "clock": self.clock,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": dict(self.attrs),
        }


@dataclass
class SpanHandle:
    """An open span returned by :meth:`SpanRecorder.begin`."""

    span_id: int
    parent_id: int | None
    name: str
    track: str
    t0: float
    clock: str
    attrs: dict[str, Any]
    closed: bool = False


class SpanRecorder:
    """Collects spans; keeps one open-span stack per ``(clock, track)``."""

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self._stacks: dict[tuple[str, str], list[SpanHandle]] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.spans)

    def _issue_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _stack(self, clock: str, track: str) -> list[SpanHandle]:
        return self._stacks.setdefault((clock, track), [])

    def begin(
        self,
        name: str,
        *,
        t0: float,
        track: str = "main",
        clock: str = "sim",
        **attrs: Any,
    ) -> SpanHandle:
        """Open a span; its parent is the innermost open span on the track."""
        stack = self._stack(clock, track)
        parent = stack[-1].span_id if stack else None
        handle = SpanHandle(
            span_id=self._issue_id(),
            parent_id=parent,
            name=name,
            track=track,
            t0=t0,
            clock=clock,
            attrs=dict(attrs),
        )
        stack.append(handle)
        return handle

    def end(self, handle: SpanHandle, t1: float) -> SpanRecord | None:
        """Close ``handle`` (and any forgotten children still open inside it)."""
        if handle.closed:
            return None
        stack = self._stack(handle.clock, handle.track)
        # close dangling descendants at the same instant so nesting holds
        while stack and stack[-1] is not handle:
            self._close(stack.pop(), t1)
        if stack and stack[-1] is handle:
            stack.pop()
        return self._close(handle, t1)

    def _close(self, handle: SpanHandle, t1: float) -> SpanRecord:
        handle.closed = True
        record = SpanRecord(
            span_id=handle.span_id,
            parent_id=handle.parent_id,
            name=handle.name,
            track=handle.track,
            t0=handle.t0,
            t1=max(t1, handle.t0),
            clock=handle.clock,
            attrs=handle.attrs,
        )
        self.spans.append(record)
        return record

    def record(
        self,
        name: str,
        t0: float,
        t1: float,
        *,
        track: str = "main",
        clock: str = "sim",
        **attrs: Any,
    ) -> SpanRecord:
        """Record an already-closed interval under the innermost open span."""
        stack = self._stack(clock, track)
        parent = stack[-1].span_id if stack else None
        record = SpanRecord(
            span_id=self._issue_id(),
            parent_id=parent,
            name=name,
            track=track,
            t0=t0,
            t1=max(t1, t0),
            clock=clock,
            attrs=dict(attrs),
        )
        self.spans.append(record)
        return record

    def open_spans(self) -> list[SpanHandle]:
        """All spans begun but not yet ended, any track."""
        return [h for stack in self._stacks.values() for h in stack]

    def close_all(self, t1: float | None = None) -> int:
        """Close every dangling span (crashed coroutines leave them behind).

        Dangling spans are closed at ``t1``, defaulting per track to the
        latest recorded end so a crash does not stretch the timeline.
        """
        closed = 0
        for (clock, track), stack in self._stacks.items():
            if not stack:
                continue
            if t1 is None:
                ends = [
                    s.t1
                    for s in self.spans
                    if s.clock == clock and s.track == track
                ]
                cut = max(ends) if ends else max(h.t0 for h in stack)
            else:
                cut = t1
            while stack:
                self._close(stack.pop(), cut)
                closed += 1
        return closed
