"""Structural invariants over spans, metrics snapshots and timelines.

The observability layer earns its keep only if its output is trustworthy,
so it gets the same treatment as the engines: machine-checked invariants.

* :func:`check_spans` — on every ``(clock, track)`` lane, spans must
  *nest*: a span is either disjoint from another or fully contains it
  (endpoints may touch).  Within one lane, sibling start times are
  monotone.  Declared parents must contain their children.
* :func:`check_generation_coverage` — every ``generation`` event an
  engine emitted into the cluster trace must fall inside some sim-clock
  span: the timeline accounts for all recorded progress.  Vacuous when
  the run produced no spans (untimed engines).
* :func:`check_metrics` / :func:`check_timeline` — schema checks for
  the ``RunReport.metrics`` snapshot and exported timeline documents.

All checkers return a list of problem strings (empty = pass), matching
the ``validate_report`` idiom used across the repo.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterable

from .metrics import METRICS_SCHEMA
from .spans import SpanRecord

__all__ = [
    "check_generation_coverage",
    "check_metrics",
    "check_spans",
    "check_timeline",
]


def check_spans(spans: Iterable[SpanRecord]) -> list[str]:
    """Problems with span well-formedness and per-track nesting."""
    spans = list(spans)
    problems: list[str] = []
    by_id: dict[int, SpanRecord] = {}
    lanes: dict[tuple[str, str], list[SpanRecord]] = {}
    for span in spans:
        if span.span_id in by_id:
            problems.append(f"duplicate span_id {span.span_id}")
        by_id[span.span_id] = span
        if not (math.isfinite(span.t0) and math.isfinite(span.t1)):
            problems.append(f"span {span.span_id} ({span.name}) has non-finite times")
            continue
        if span.t1 < span.t0:
            problems.append(
                f"span {span.span_id} ({span.name}) ends before it starts:"
                f" [{span.t0}, {span.t1}]"
            )
            continue
        lanes.setdefault((span.clock, span.track), []).append(span)

    # parent containment (same lane, child inside parent)
    for span in spans:
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(
                f"span {span.span_id} ({span.name}) has unknown parent"
                f" {span.parent_id}"
            )
        elif (parent.clock, parent.track) != (span.clock, span.track):
            problems.append(
                f"span {span.span_id} ({span.name}) and parent {parent.span_id}"
                f" live on different tracks"
            )
        elif span.t0 < parent.t0 or span.t1 > parent.t1:
            problems.append(
                f"span {span.span_id} ({span.name}) [{span.t0}, {span.t1}] escapes"
                f" parent {parent.span_id} ({parent.name})"
                f" [{parent.t0}, {parent.t1}]"
            )

    # per-lane nesting: sweep left-to-right with an enclosing-interval stack
    for (clock, track), lane in lanes.items():
        lane.sort(key=lambda s: (s.t0, -s.t1))
        stack: list[SpanRecord] = []
        for span in lane:
            while stack and span.t0 >= stack[-1].t1:
                stack.pop()
            if stack and span.t1 > stack[-1].t1:
                top = stack[-1]
                problems.append(
                    f"{clock}/{track}: span {span.span_id} ({span.name})"
                    f" [{span.t0}, {span.t1}] partially overlaps"
                    f" {top.span_id} ({top.name}) [{top.t0}, {top.t1}]"
                )
                continue
            stack.append(span)
    return problems


def check_generation_coverage(
    spans: Iterable[SpanRecord], trace: Iterable[Any]
) -> list[str]:
    """Every trace ``generation`` event must lie inside some sim span.

    ``trace`` is any iterable of objects with ``kind`` and ``time``
    attributes (duck-typed so this module stays free of repro imports).
    A ``Trace``-like object exposing ``of_kind`` is queried for its
    ``generation`` events directly — that path stays valid under
    ``compact`` retention, where generation events are retained but
    whole-stream iteration is refused.  Returns no problems when there
    are no sim spans at all — untimed engines legitimately run without
    a timeline.
    """
    union = _merged_union(
        [(s.t0, s.t1) for s in spans if s.clock == "sim"]
    )
    if not union:
        return []
    of_kind = getattr(trace, "of_kind", None)
    if of_kind is not None:
        trace = of_kind("generation")
    problems = []
    uncovered = 0
    for event in trace:
        if getattr(event, "kind", None) != "generation":
            continue
        t = float(getattr(event, "time", 0.0))
        if not _covered(union, t):
            uncovered += 1
            if uncovered <= 5:
                problems.append(f"generation event at t={t!r} not covered by any span")
    if uncovered > 5:
        problems.append(f"... and {uncovered - 5} more uncovered generation events")
    return problems


def _merged_union(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Disjoint, sorted union of the given (possibly nested) intervals."""
    merged: list[tuple[float, float]] = []
    for t0, t1 in sorted(intervals):
        if merged and t0 <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], t1))
        else:
            merged.append((t0, t1))
    return merged


def _covered(union: list[tuple[float, float]], t: float) -> bool:
    idx = bisect.bisect_right(union, (t, math.inf)) - 1
    return idx >= 0 and union[idx][0] <= t <= union[idx][1]


def check_metrics(metrics: Any) -> list[str]:
    """Schema problems with a ``RunReport.metrics`` snapshot."""
    problems: list[str] = []
    if not isinstance(metrics, dict):
        return [f"metrics must be a dict, got {type(metrics).__name__}"]
    if metrics.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"metrics schema is {metrics.get('schema')!r}, want {METRICS_SCHEMA!r}"
        )
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            problems.append(f"metrics[{section!r}] missing or not a dict")
    for name, value in (metrics.get("counters") or {}).items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"counter {name} must be a non-negative int, got {value!r}")
        if "." not in str(name):
            problems.append(f"counter {name!r} is not namespaced")
    for name, value in (metrics.get("gauges") or {}).items():
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            problems.append(f"gauge {name} must be a finite number, got {value!r}")
        if "." not in str(name):
            problems.append(f"gauge {name!r} is not namespaced")
    return problems


def check_timeline(doc: Any) -> list[str]:
    """Schema + structural problems with an exported timeline document."""
    from .export import TIMELINE_SCHEMA  # local import: export imports derive

    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"timeline must be a dict, got {type(doc).__name__}"]
    if doc.get("schema") != TIMELINE_SCHEMA:
        problems.append(
            f"timeline schema is {doc.get('schema')!r}, want {TIMELINE_SCHEMA!r}"
        )
    spans_raw = doc.get("spans")
    if not isinstance(spans_raw, list):
        return problems + ["timeline['spans'] missing or not a list"]
    spans = []
    for i, raw in enumerate(spans_raw):
        missing = {"span_id", "name", "track", "t0", "t1"} - set(raw)
        if missing:
            problems.append(f"span #{i} missing fields {sorted(missing)}")
            continue
        spans.append(
            SpanRecord(
                span_id=raw["span_id"],
                parent_id=raw.get("parent_id"),
                name=raw["name"],
                track=raw["track"],
                t0=raw["t0"],
                t1=raw["t1"],
                clock=raw.get("clock", "sim"),
                attrs=raw.get("attrs", {}),
            )
        )
    problems.extend(check_spans(spans))
    if "metrics" in doc:
        session_metrics = doc["metrics"]
        if not isinstance(session_metrics, dict):
            problems.append("timeline['metrics'] must be a dict")
    for i, run in enumerate(doc.get("runs", [])):
        run_metrics = run.get("metrics")
        if run_metrics:
            problems.extend(
                f"runs[{i}]: {p}" for p in check_metrics(run_metrics)
            )
    return problems
