"""Timeline exporters: run JSON, Chrome trace format, sweep roll-ups.

Three consumers, three formats:

* :func:`timeline_doc` / :func:`write_timeline` — the canonical per-run
  JSON document (``--obs-out``): spans, session metrics, per-run report
  metrics and the derived paper metrics, under the versioned schema
  ``repro-obs-timeline/v1``.  :func:`repro.obs.validate.check_timeline`
  validates this shape.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome trace
  event format (``--obs-trace``): load the file in ``chrome://tracing``
  or Perfetto for a flamegraph.  Sim seconds are mapped to microseconds
  ("X" complete events, one tid per track).
* :func:`sweep_obs_summary` — compact per-sweep aggregation the sweep
  telemetry embeds into ``BENCH_sweep.json`` next to its wall-clock
  numbers.
"""

from __future__ import annotations

import json
from typing import Any

from .derive import derived_summary
from .session import ObsSession

__all__ = [
    "TIMELINE_SCHEMA",
    "chrome_trace",
    "sweep_obs_summary",
    "timeline_doc",
    "write_chrome_trace",
    "write_timeline",
]

TIMELINE_SCHEMA = "repro-obs-timeline/v1"


def timeline_doc(session: ObsSession) -> dict[str, Any]:
    """The canonical JSON document for one observability session."""
    session.spans.close_all()
    return {
        "schema": TIMELINE_SCHEMA,
        "label": session.label,
        "wall_seconds": session.wall_now(),
        "spans": [s.to_dict() for s in session.spans],
        "metrics": session.metrics.snapshot(),
        "runs": list(session.runs),
        "derived": derived_summary(session.spans),
    }


def write_timeline(session: ObsSession, path: str) -> dict[str, Any]:
    doc = timeline_doc(session)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc


def chrome_trace(session: ObsSession) -> dict[str, Any]:
    """Chrome trace-event JSON (the ``traceEvents`` envelope)."""
    session.spans.close_all()
    events: list[dict[str, Any]] = []
    tids: dict[str, int] = {}
    for span in session.spans:
        tid = tids.setdefault(span.track, len(tids) + 1)
        events.append(
            {
                "name": span.name,
                "cat": span.clock,
                "ph": "X",
                "ts": span.t0 * 1e6,  # sim seconds -> trace microseconds
                "dur": span.duration * 1e6,
                "pid": 1,
                "tid": tid,
                "args": dict(span.attrs),
            }
        )
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in tids.items()
    ]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(session: ObsSession, path: str) -> dict[str, Any]:
    doc = chrome_trace(session)
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return doc


def sweep_obs_summary(session: ObsSession) -> dict[str, Any]:
    """Compact block for ``BENCH_sweep.json``: session counters plus the
    derived paper metrics, no raw span list (sweeps can carry millions)."""
    session.spans.close_all()
    return {
        "schema": TIMELINE_SCHEMA,
        "label": session.label,
        "span_count": len(session.spans),
        "metrics": session.metrics.snapshot(),
        "derived": derived_summary(session.spans),
        "children": list(session.children),
    }
