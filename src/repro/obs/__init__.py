"""``repro.obs`` — zero-overhead-when-disabled observability.

Phase-resolved timelines (spans), namespaced metrics, exporters and
span-derived paper metrics for every parallel engine.  Disabled by
default: :func:`current_obs` returns ``None`` and instrumented code does
one attribute check.  Enable with::

    from repro.obs import obs_session, write_timeline

    with obs_session(label="e03") as session:
        report = model.run()
    write_timeline(session, "out.json")

Design rules the rest of the repo relies on:

* this package imports nothing from ``repro`` — the cluster kernel and
  runtime layers import *it* without cycles;
* spans live beside the cluster trace, never in it — trace digests and
  result fingerprints are byte-identical with observability on or off;
* ``RunReport.metrics`` is a pure function of the report
  (:func:`~repro.obs.metrics.metrics_snapshot`), so same-seed audit runs
  stay deterministic regardless of session state.
"""

from .derive import (
    SPAN_PHASES,
    busy_time_by_track,
    comm_compute_times,
    comm_fraction,
    derived_summary,
    idle_time_by_track,
    phase_times,
    sim_horizon,
    utilisation_by_track,
)
from .export import (
    TIMELINE_SCHEMA,
    chrome_trace,
    sweep_obs_summary,
    timeline_doc,
    write_chrome_trace,
    write_timeline,
)
from .metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    metrics_snapshot,
)
from .session import ObsSession, current_obs, obs_enabled, obs_session
from .spans import SpanHandle, SpanRecord, SpanRecorder
from .validate import (
    check_generation_coverage,
    check_metrics,
    check_spans,
    check_timeline,
)

__all__ = [
    "METRICS_SCHEMA",
    "SPAN_PHASES",
    "TIMELINE_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "ObsSession",
    "SpanHandle",
    "SpanRecord",
    "SpanRecorder",
    "busy_time_by_track",
    "check_generation_coverage",
    "check_metrics",
    "check_spans",
    "check_timeline",
    "chrome_trace",
    "comm_compute_times",
    "comm_fraction",
    "current_obs",
    "derived_summary",
    "idle_time_by_track",
    "metrics_snapshot",
    "obs_enabled",
    "obs_session",
    "phase_times",
    "sim_horizon",
    "sweep_obs_summary",
    "timeline_doc",
    "utilisation_by_track",
    "write_chrome_trace",
    "write_timeline",
]
