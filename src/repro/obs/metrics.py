"""Namespaced metric instruments and the ``RunReport.metrics`` schema.

Two distinct things live here, and keeping them distinct is what keeps
the engines deterministic:

* :class:`MetricRegistry` — live counters/gauges/histograms owned by an
  observability *session*.  Process-level sources (simulator event
  dispatch, fitness-cache hits, evaluations observed) feed these.  They
  accumulate across runs, so they are exported only in session timelines
  and sweep telemetry — never into a :class:`~repro.parallel.base.RunReport`.
* :func:`metrics_snapshot` — a *pure function* of one finished report,
  mapping its scattered counters into one namespaced, schema-versioned
  dict stored as ``RunReport.metrics``.  Same report in, same snapshot
  out: same-seed audit runs stay fingerprint-identical whether or not a
  session is active.

Metric names are lowercase dotted paths (``comm.retransmits``); the
leading segment is the namespace.  Current namespaces: ``comm`` (wire
traffic), ``recovery`` (supervisor outcomes), ``farm`` (master-slave
work redistribution), ``progress`` (search progress), ``time`` (clock
totals), plus session-level ``sim``, ``cache``, ``eval`` and ``sweep``.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "metrics_snapshot",
]

METRICS_SCHEMA = "repro-obs-metrics/v1"

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} must be lowercase dotted (namespace.metric)"
        )
    return name


@dataclass
class Counter:
    """Monotonically increasing integer."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins float."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming summary: count/sum/min/max (no buckets needed yet)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


@dataclass
class MetricRegistry:
    """One namespace of live instruments, lazily created on first use."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(_check_name(name))
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(_check_name(name))
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(_check_name(name))
        return inst

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump, keys sorted for stable serialisation."""
        return {
            "schema": METRICS_SCHEMA,
            "counters": {k: self.counters[k].value for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k].value for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].summary() for k in sorted(self.histograms)
            },
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one (sweep roll-up)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            count = int(summary.get("count", 0))
            if count:
                hist.count += count
                hist.total += float(summary.get("sum", 0.0))
                hist.min = min(hist.min, float(summary.get("min", math.inf)))
                hist.max = max(hist.max, float(summary.get("max", -math.inf)))


# --- the RunReport.metrics snapshot ---------------------------------------

# (namespaced metric, RunReport counter attribute) — every engine report
# carries these attributes, so the snapshot shape is engine-independent.
_REPORT_COUNTERS = (
    ("comm.migrants_sent", "migrants_sent"),
    ("comm.migrants_accepted", "migrants_accepted"),
    ("comm.retransmits", "retransmits"),
    ("comm.dup_discards", "dup_discards"),
    ("recovery.recoveries", "recoveries"),
    ("recovery.abandoned_demes", "abandoned_demes"),
    ("farm.redispatches", "redispatches"),
    ("farm.lost_chunks", "lost_chunks"),
    ("progress.evaluations", "evaluations"),
    ("progress.epochs", "epochs"),
)


def metrics_snapshot(report: Any) -> dict[str, Any]:
    """Build the stable ``RunReport.metrics`` snapshot from ``report``.

    Pure and deterministic: reads only the report's own fields, never a
    live session, so same-seed runs snapshot identically with or without
    observability enabled.
    """
    counters = {name: int(getattr(report, attr)) for name, attr in _REPORT_COUNTERS}
    gauges: dict[str, float] = {}
    sim_time = getattr(report, "sim_time", None)
    if sim_time is not None:
        gauges["time.sim_total"] = float(sim_time)
    extras = getattr(report, "extras", None) or {}
    for key in ("compute_time", "comm_time"):
        if key in extras:
            gauges[f"time.{key}"] = float(extras[key])
    return {
        "schema": METRICS_SCHEMA,
        "counters": counters,
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "histograms": {},
    }
