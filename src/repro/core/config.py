"""GA configuration: the knobs the survey says every (P)GA exposes.

Bundles operator choices and rates so every model — sequential engine,
island deme, cellular cell, master-slave farm — is configured the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .operators.crossover import Crossover, crossover_for_spec
from .operators.mutation import Mutation, mutation_for_spec
from .operators.replacement import Replacement, ReplaceWorstIfBetter
from .operators.selection import Selection, TournamentSelection

__all__ = ["GAConfig"]


@dataclass
class GAConfig:
    """Configuration shared by all evolution engines.

    Parameters
    ----------
    population_size:
        Members per population (per *deme* in multi-population models).
    selection, crossover, mutation:
        Operator instances; ``crossover``/``mutation`` of ``None`` are
        resolved per genome spec by :meth:`resolved_for`.
    crossover_prob:
        Probability a selected pair is recombined (otherwise cloned).
    mutation_prob:
        Probability the mutation operator is applied to an offspring.
        (Per-gene rates live inside the mutation operator itself.)
    elitism:
        Number of best parents copied unchanged into the next generation
        (generational engines only).
    replacement:
        Steady-state victim policy (steady-state engines only).
    offspring_per_step:
        Offspring created per steady-state step.
    vectorized_variation:
        Opt-in fast path: run the selection-crossover-mutation cycle on
        ``(n, L)`` genome blocks via :mod:`repro.core.vectorized` instead
        of per-individual operator calls.  Distributionally equivalent to
        the scalar cycle but consumes the rng stream differently, so
        same-seed runs differ bit-for-bit; with the default ``False``
        nothing changes.  Engines fall back to the scalar cycle (and count
        ``variation.scalar_fallback``) when an operator has no batch
        kernel.
    """

    population_size: int = 100
    selection: Selection = field(default_factory=TournamentSelection)
    crossover: Optional[Crossover] = None
    mutation: Optional[Mutation] = None
    crossover_prob: float = 0.9
    mutation_prob: float = 1.0
    elitism: int = 1
    replacement: Replacement = field(default_factory=ReplaceWorstIfBetter)
    offspring_per_step: int = 1
    vectorized_variation: bool = False

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError(
                f"population_size must be >= 2, got {self.population_size}"
            )
        if not 0.0 <= self.crossover_prob <= 1.0:
            raise ValueError(f"crossover_prob must be in [0,1], got {self.crossover_prob}")
        if not 0.0 <= self.mutation_prob <= 1.0:
            raise ValueError(f"mutation_prob must be in [0,1], got {self.mutation_prob}")
        if self.elitism < 0:
            raise ValueError(f"elitism must be >= 0, got {self.elitism}")
        if self.elitism >= self.population_size:
            raise ValueError(
                f"elitism ({self.elitism}) must be below population_size "
                f"({self.population_size})"
            )
        if self.offspring_per_step < 1:
            raise ValueError(
                f"offspring_per_step must be >= 1, got {self.offspring_per_step}"
            )

    def resolved_for(self, spec) -> "GAConfig":
        """Fill in default operators appropriate for ``spec``."""
        cx = self.crossover if self.crossover is not None else crossover_for_spec(spec)
        mut = self.mutation if self.mutation is not None else mutation_for_spec(spec)
        return replace(self, crossover=cx, mutation=mut)

    def with_population_size(self, n: int) -> "GAConfig":
        """Copy with a different population size (deme partitioning)."""
        return replace(self, population_size=n, elitism=min(self.elitism, max(0, n - 1)))
