"""Replacement (survivor-selection) policies.

Generational engines replace the whole population (optionally keeping an
elite); steady-state engines insert offspring one at a time, evicting a
victim chosen by one of these policies.  The survey's island studies (Alba &
Troya) compare *generational* and *steady-state* reproduction loops, which
differ exactly here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..individual import Individual
from ..population import Population

__all__ = [
    "Replacement",
    "ReplaceWorst",
    "ReplaceRandom",
    "ReplaceOldest",
    "ReplaceWorstIfBetter",
    "elitist_merge",
]


class Replacement(Protocol):
    """Insert ``newcomer`` into ``population``; return the evicted individual
    (or ``None`` when the newcomer was rejected)."""

    def __call__(
        self,
        rng: np.random.Generator,
        population: Population,
        newcomer: Individual,
    ) -> Individual | None: ...


@dataclass(frozen=True)
class ReplaceWorst:
    """Always evict the current worst member."""

    def __call__(
        self, rng: np.random.Generator, population: Population, newcomer: Individual
    ) -> Individual | None:
        return population.replace_worst(newcomer)


@dataclass(frozen=True)
class ReplaceWorstIfBetter:
    """Evict the worst member only when the newcomer improves on it.

    The classic steady-state insertion used in Alba & Troya's island
    experiments: a deme never gets worse.
    """

    def __call__(
        self, rng: np.random.Generator, population: Population, newcomer: Individual
    ) -> Individual | None:
        worst = population.worst()
        nf, wf = newcomer.require_fitness(), worst.require_fitness()
        improves = nf > wf if population.maximize else nf < wf
        if not improves:
            return None
        return population.replace_worst(newcomer)


@dataclass(frozen=True)
class ReplaceRandom:
    """Evict a uniformly random member (no elitist pressure)."""

    def __call__(
        self, rng: np.random.Generator, population: Population, newcomer: Individual
    ) -> Individual | None:
        idx = int(rng.integers(0, len(population)))
        evicted = population[idx]
        population[idx] = newcomer
        return evicted


@dataclass(frozen=True)
class ReplaceOldest:
    """Evict the member with the smallest birth generation (FIFO ageing)."""

    def __call__(
        self, rng: np.random.Generator, population: Population, newcomer: Individual
    ) -> Individual | None:
        idx = min(
            range(len(population)),
            key=lambda i: (population[i].birth_generation, population[i].uid),
        )
        evicted = population[idx]
        population[idx] = newcomer
        return evicted


def elitist_merge(
    old: Population,
    offspring: Sequence[Individual],
    elite_count: int,
) -> list[Individual]:
    """Build the next generation: ``elite_count`` best parents survive
    unconditionally, the rest of the slots are filled by offspring.

    Offspring are assumed evaluated.  Raises if there are not enough
    offspring to fill the remainder.
    """
    if elite_count < 0:
        raise ValueError(f"elite_count must be >= 0, got {elite_count}")
    n = len(old)
    elite_count = min(elite_count, n)
    needed = n - elite_count
    if len(offspring) < needed:
        raise ValueError(
            f"need {needed} offspring to fill generation, got {len(offspring)}"
        )
    elite = old.sorted()[:elite_count]
    return list(elite) + list(offspring[:needed])
