"""Crossover (recombination) operators.

The survey: "After choosing randomly a pair of individuals, crossover
executes an exchange of the substring within the pair with some
probability.  There are many types of crossovers defined …" — this module
is that catalogue.  Every operator is a callable
``(rng, parent_a, parent_b) -> (child_a, child_b)`` over raw genome arrays;
parents are never modified.

Discrete-string operators (one-point, two-point, k-point, uniform) apply to
binary and integer genomes; SBX / BLX / arithmetic apply to real vectors;
PMX / OX / CX preserve permutation validity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

__all__ = [
    "Crossover",
    "OnePointCrossover",
    "TwoPointCrossover",
    "KPointCrossover",
    "UniformCrossover",
    "ArithmeticCrossover",
    "BlendCrossover",
    "SimulatedBinaryCrossover",
    "PartiallyMappedCrossover",
    "OrderCrossover",
    "CycleCrossover",
    "TwoDimensionalCrossover",
    "crossover_for_spec",
]


class Crossover(Protocol):
    """Callable protocol all crossover operators satisfy."""

    def __call__(
        self, rng: np.random.Generator, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]: ...


def _check_parents(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ValueError(f"parent shapes differ: {a.shape} vs {b.shape}")
    if a.ndim != 1:
        raise ValueError(f"genomes must be 1-D, got ndim={a.ndim}")


@dataclass(frozen=True)
class OnePointCrossover:
    """Classic single cut point exchange (Holland 1975)."""

    def __call__(
        self, rng: np.random.Generator, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        _check_parents(a, b)
        n = a.shape[0]
        if n < 2:
            return a.copy(), b.copy()
        cut = int(rng.integers(1, n))
        ca = np.concatenate([a[:cut], b[cut:]])
        cb = np.concatenate([b[:cut], a[cut:]])
        return ca, cb


@dataclass(frozen=True)
class TwoPointCrossover:
    """Exchange the segment between two cut points."""

    def __call__(
        self, rng: np.random.Generator, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        _check_parents(a, b)
        n = a.shape[0]
        if n < 3:
            return OnePointCrossover()(rng, a, b)
        i, j = sorted(rng.choice(np.arange(1, n), size=2, replace=False).tolist())
        ca, cb = a.copy(), b.copy()
        ca[i:j], cb[i:j] = b[i:j].copy(), a[i:j].copy()
        return ca, cb


@dataclass(frozen=True)
class KPointCrossover:
    """Generalised multi-cut crossover alternating segments."""

    k: int = 4

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")

    def __call__(
        self, rng: np.random.Generator, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        _check_parents(a, b)
        n = a.shape[0]
        k = min(self.k, n - 1)
        if k < 1:
            return a.copy(), b.copy()
        cuts = np.sort(rng.choice(np.arange(1, n), size=k, replace=False))
        mask = np.zeros(n, dtype=bool)
        toggle = False
        prev = 0
        for cut in list(cuts) + [n]:
            mask[prev:cut] = toggle
            toggle = not toggle
            prev = cut
        ca = np.where(mask, b, a)
        cb = np.where(mask, a, b)
        return ca.astype(a.dtype), cb.astype(b.dtype)


@dataclass(frozen=True)
class UniformCrossover:
    """Per-gene coin flip exchange (Syswerda 1989)."""

    swap_prob: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.swap_prob <= 1.0:
            raise ValueError(f"swap_prob must be in [0,1], got {self.swap_prob}")

    def __call__(
        self, rng: np.random.Generator, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        _check_parents(a, b)
        mask = rng.random(a.shape[0]) < self.swap_prob
        ca = np.where(mask, b, a).astype(a.dtype)
        cb = np.where(mask, a, b).astype(b.dtype)
        return ca, cb


@dataclass(frozen=True)
class ArithmeticCrossover:
    """Whole-arithmetic recombination for real vectors: convex mix."""

    alpha: float | None = None  # None → random per mating

    def __call__(
        self, rng: np.random.Generator, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        _check_parents(a, b)
        w = self.alpha if self.alpha is not None else float(rng.random())
        ca = w * a + (1.0 - w) * b
        cb = (1.0 - w) * a + w * b
        return ca, cb


@dataclass(frozen=True)
class BlendCrossover:
    """BLX-α (Eshelman & Schaffer): children sampled from an expanded box."""

    alpha: float = 0.5

    def __call__(
        self, rng: np.random.Generator, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        _check_parents(a, b)
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        spread = hi - lo
        low = lo - self.alpha * spread
        high = hi + self.alpha * spread
        ca = rng.uniform(low, high)
        cb = rng.uniform(low, high)
        return ca, cb


@dataclass(frozen=True)
class SimulatedBinaryCrossover:
    """SBX (Deb & Agrawal 1995), the real-coded analogue of one-point."""

    eta: float = 15.0
    per_gene_prob: float = 0.5

    def __call__(
        self, rng: np.random.Generator, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        _check_parents(a, b)
        n = a.shape[0]
        u = rng.random(n)
        beta = np.where(
            u <= 0.5,
            (2.0 * u) ** (1.0 / (self.eta + 1.0)),
            (1.0 / (2.0 * (1.0 - u))) ** (1.0 / (self.eta + 1.0)),
        )
        apply = rng.random(n) < self.per_gene_prob
        beta = np.where(apply, beta, 1.0)
        ca = 0.5 * ((1.0 + beta) * a + (1.0 - beta) * b)
        cb = 0.5 * ((1.0 - beta) * a + (1.0 + beta) * b)
        return ca, cb


@dataclass(frozen=True)
class PartiallyMappedCrossover:
    """PMX (Goldberg & Lingle 1985) for permutations."""

    def __call__(
        self, rng: np.random.Generator, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        _check_parents(a, b)
        n = a.shape[0]
        i, j = sorted(rng.choice(n, size=2, replace=False).tolist())
        j += 1  # make slice inclusive of second point

        def pmx(p1: np.ndarray, p2: np.ndarray) -> np.ndarray:
            child = -np.ones(n, dtype=p1.dtype)
            child[i:j] = p1[i:j]
            placed = set(int(x) for x in p1[i:j])
            pos2 = {int(v): k for k, v in enumerate(p2)}
            for k in range(i, j):
                v = int(p2[k])
                if v in placed:
                    continue
                # follow the mapping chain out of the copied segment
                slot = k
                while i <= slot < j:
                    slot = pos2[int(p1[slot])]
                child[slot] = v
                placed.add(v)
            remaining = [int(v) for v in p2 if int(v) not in placed]
            child[child == -1] = remaining
            return child

        return pmx(a, b), pmx(b, a)


@dataclass(frozen=True)
class OrderCrossover:
    """OX1 (Davis 1985): copy a slice, fill the rest in the other's order."""

    def __call__(
        self, rng: np.random.Generator, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        _check_parents(a, b)
        n = a.shape[0]
        i, j = sorted(rng.choice(n, size=2, replace=False).tolist())
        j += 1

        def ox(p1: np.ndarray, p2: np.ndarray) -> np.ndarray:
            child = -np.ones(n, dtype=p1.dtype)
            child[i:j] = p1[i:j]
            used = set(int(x) for x in p1[i:j])
            fill = [int(v) for v in np.roll(p2, -j) if int(v) not in used]
            idx = [k % n for k in range(j, j + n - (j - i))]
            for k, v in zip(idx, fill):
                child[k] = v
            return child

        return ox(a, b), ox(b, a)


@dataclass(frozen=True)
class CycleCrossover:
    """CX (Oliver et al. 1987): alternate cycles between parents."""

    def __call__(
        self, rng: np.random.Generator, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        _check_parents(a, b)
        n = a.shape[0]
        ca = -np.ones(n, dtype=a.dtype)
        cb = -np.ones(n, dtype=b.dtype)
        pos_a = {int(v): k for k, v in enumerate(a)}
        visited = np.zeros(n, dtype=bool)
        take_from_a = True
        for start in range(n):
            if visited[start]:
                continue
            # trace the cycle containing `start`
            cycle = []
            k = start
            while not visited[k]:
                visited[k] = True
                cycle.append(k)
                k = pos_a[int(b[k])]
            for k in cycle:
                if take_from_a:
                    ca[k], cb[k] = a[k], b[k]
                else:
                    ca[k], cb[k] = b[k], a[k]
            take_from_a = not take_from_a
        return ca, cb


@dataclass(frozen=True)
class TwoDimensionalCrossover:
    """2-D block crossover (Kwon & Moon 2003's neuro-genetic encoding).

    Interprets the flat genome as a ``rows x cols`` matrix and exchanges a
    random rectangular sub-block — crossovers that respect 2-D locality are
    the survey-cited innovation of the stock-prediction model.
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("rows and cols must be positive")

    def __call__(
        self, rng: np.random.Generator, a: np.ndarray, b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        _check_parents(a, b)
        if a.shape[0] != self.rows * self.cols:
            raise ValueError(
                f"genome length {a.shape[0]} != rows*cols = {self.rows * self.cols}"
            )
        A = a.reshape(self.rows, self.cols).copy()
        B = b.reshape(self.rows, self.cols).copy()
        r0 = int(rng.integers(0, self.rows))
        r1 = int(rng.integers(r0 + 1, self.rows + 1))
        c0 = int(rng.integers(0, self.cols))
        c1 = int(rng.integers(c0 + 1, self.cols + 1))
        block_a = A[r0:r1, c0:c1].copy()
        A[r0:r1, c0:c1] = B[r0:r1, c0:c1]
        B[r0:r1, c0:c1] = block_a
        return A.ravel(), B.ravel()


def crossover_for_spec(spec) -> Crossover:
    """Sensible default crossover for a genome spec (used by quickstart)."""
    from ..genome import BinarySpec, IntegerVectorSpec, PermutationSpec, RealVectorSpec

    if isinstance(spec, (BinarySpec, IntegerVectorSpec)):
        return TwoPointCrossover()
    if isinstance(spec, RealVectorSpec):
        return SimulatedBinaryCrossover()
    if isinstance(spec, PermutationSpec):
        return OrderCrossover()
    raise TypeError(f"no default crossover for spec type {type(spec).__name__}")
