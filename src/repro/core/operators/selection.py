"""Parent-selection operators.

The survey: "Selection identifies the fittest individuals.  The higher the
fitness, the bigger the probability to become a parent in the next
generation.  There are different types of selection, but the basic
functionality is the same."

Every operator is a callable
``(rng, population, n, maximize) -> list[Individual]`` drawing ``n``
parents *with replacement*.  Returned individuals are references (not
copies); engines copy before modifying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from ..individual import Individual

__all__ = [
    "Selection",
    "TournamentSelection",
    "RouletteWheelSelection",
    "LinearRankSelection",
    "StochasticUniversalSampling",
    "TruncationSelection",
    "BoltzmannSelection",
    "RandomSelection",
    "BestSelection",
]


class Selection(Protocol):
    """Callable protocol all selection operators satisfy."""

    def __call__(
        self,
        rng: np.random.Generator,
        individuals: Sequence[Individual],
        n: int,
        maximize: bool,
    ) -> list[Individual]: ...


def _fitnesses(individuals: Sequence[Individual]) -> np.ndarray:
    f = np.asarray([ind.require_fitness() for ind in individuals], dtype=float)
    # Defence in depth behind the Individual.fitness guard: np.argmax over a
    # score matrix containing NaN returns the NaN's position, so one bad
    # fitness would silently win every tournament it enters.
    if not np.all(np.isfinite(f)):
        bad = np.nonzero(~np.isfinite(f))[0].tolist()
        raise ValueError(f"non-finite fitness in selection pool at positions {bad}")
    return f


def _sample_by_probs(
    rng: np.random.Generator,
    individuals: Sequence[Individual],
    probs: np.ndarray,
    n: int,
) -> list[Individual]:
    idx = rng.choice(len(individuals), size=n, replace=True, p=probs)
    return [individuals[int(i)] for i in idx]


#: share of probability mass spread uniformly so the worst member never has
#: exactly zero selection chance after the min-shift
_FLOOR = 0.05


def _minimization_to_weights(f: np.ndarray, maximize: bool) -> np.ndarray:
    """Shift fitnesses into selection probabilities, respecting direction.

    Uses the classic min-shift (so weights are scale-invariant) blended with
    a small uniform floor: pure min-shifting gives the worst member exactly
    zero probability, which starves small populations.
    """
    n = f.shape[0]
    if maximize:
        w = f - f.min()
    else:
        w = f.max() - f
    total = w.sum()
    if total <= 0.0:  # all equal — uniform weights
        return np.full(n, 1.0 / n)
    return (1.0 - _FLOOR) * (w / total) + _FLOOR / n


@dataclass(frozen=True)
class TournamentSelection:
    """Pick the best of ``size`` uniform random contestants, ``n`` times.

    Tournament size controls selection pressure; size 2 is the survey-era
    default and the one Giacobini et al.'s cellular pressure study builds on
    ("binary tournament").
    """

    size: int = 2

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"tournament size must be >= 1, got {self.size}")

    def __call__(
        self,
        rng: np.random.Generator,
        individuals: Sequence[Individual],
        n: int,
        maximize: bool,
    ) -> list[Individual]:
        m = len(individuals)
        if m == 0:
            raise ValueError("cannot select from empty population")
        k = min(self.size, m)
        f = _fitnesses(individuals)
        contestants = rng.integers(0, m, size=(n, k))
        scores = f[contestants]
        winners = np.argmax(scores, axis=1) if maximize else np.argmin(scores, axis=1)
        picked = contestants[np.arange(n), winners]
        return [individuals[int(i)] for i in picked]


@dataclass(frozen=True)
class RouletteWheelSelection:
    """Fitness-proportionate selection (Holland's original scheme)."""

    def __call__(
        self,
        rng: np.random.Generator,
        individuals: Sequence[Individual],
        n: int,
        maximize: bool,
    ) -> list[Individual]:
        f = _fitnesses(individuals)
        probs = _minimization_to_weights(f, maximize)
        return _sample_by_probs(rng, individuals, probs, n)


@dataclass(frozen=True)
class LinearRankSelection:
    """Rank-based probabilities with selection bias ``sp`` in [1, 2]."""

    sp: float = 1.7

    def __post_init__(self) -> None:
        if not 1.0 <= self.sp <= 2.0:
            raise ValueError(f"selection pressure sp must be in [1,2], got {self.sp}")

    def __call__(
        self,
        rng: np.random.Generator,
        individuals: Sequence[Individual],
        n: int,
        maximize: bool,
    ) -> list[Individual]:
        m = len(individuals)
        f = _fitnesses(individuals)
        order = np.argsort(f) if maximize else np.argsort(-f)
        # rank 0 = worst … rank m-1 = best
        ranks = np.empty(m, dtype=float)
        ranks[order] = np.arange(m, dtype=float)
        if m > 1:
            probs = (2.0 - self.sp) / m + 2.0 * ranks * (self.sp - 1.0) / (m * (m - 1.0))
        else:
            probs = np.ones(1)
        probs = probs / probs.sum()
        return _sample_by_probs(rng, individuals, probs, n)


@dataclass(frozen=True)
class StochasticUniversalSampling:
    """SUS (Baker 1987): one spin, ``n`` equally spaced pointers — lower
    variance than roulette for the same expected counts."""

    def __call__(
        self,
        rng: np.random.Generator,
        individuals: Sequence[Individual],
        n: int,
        maximize: bool,
    ) -> list[Individual]:
        f = _fitnesses(individuals)
        probs = _minimization_to_weights(f, maximize)
        cum = np.cumsum(probs)
        start = rng.random() / n
        pointers = start + np.arange(n) / n
        idx = np.searchsorted(cum, pointers, side="right")
        idx = np.clip(idx, 0, len(individuals) - 1)
        picked = [individuals[int(i)] for i in idx]
        # SUS traditionally shuffles the mating pool afterwards
        rng.shuffle(picked)
        return picked


@dataclass(frozen=True)
class TruncationSelection:
    """Select uniformly from the top ``fraction`` of the population."""

    fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0,1], got {self.fraction}")

    def __call__(
        self,
        rng: np.random.Generator,
        individuals: Sequence[Individual],
        n: int,
        maximize: bool,
    ) -> list[Individual]:
        f = _fitnesses(individuals)
        order = np.argsort(-f) if maximize else np.argsort(f)
        k = max(1, int(np.ceil(self.fraction * len(individuals))))
        elite = [individuals[int(i)] for i in order[:k]]
        idx = rng.integers(0, k, size=n)
        return [elite[int(i)] for i in idx]


@dataclass(frozen=True)
class BoltzmannSelection:
    """Softmax selection with temperature ``temperature``.

    High temperature → near-uniform; low temperature → near-greedy.  The
    classic annealing-flavoured scheme from the survey's operator theory
    thread.
    """

    temperature: float = 1.0

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise ValueError(f"temperature must be positive, got {self.temperature}")

    def __call__(
        self,
        rng: np.random.Generator,
        individuals: Sequence[Individual],
        n: int,
        maximize: bool,
    ) -> list[Individual]:
        f = _fitnesses(individuals)
        z = f if maximize else -f
        z = (z - z.max()) / self.temperature  # stabilised softmax
        w = np.exp(z)
        probs = w / w.sum()
        return _sample_by_probs(rng, individuals, probs, n)


@dataclass(frozen=True)
class RandomSelection:
    """Uniform random parents — the zero-pressure control."""

    def __call__(
        self,
        rng: np.random.Generator,
        individuals: Sequence[Individual],
        n: int,
        maximize: bool,
    ) -> list[Individual]:
        idx = rng.integers(0, len(individuals), size=n)
        return [individuals[int(i)] for i in idx]


@dataclass(frozen=True)
class BestSelection:
    """Deterministically return the single best individual ``n`` times.

    Used for migrant selection ("send your best") and as the maximal
    pressure control in takeover-time studies.
    """

    def __call__(
        self,
        rng: np.random.Generator,
        individuals: Sequence[Individual],
        n: int,
        maximize: bool,
    ) -> list[Individual]:
        f = _fitnesses(individuals)
        i = int(np.argmax(f) if maximize else np.argmin(f))
        return [individuals[i]] * n
