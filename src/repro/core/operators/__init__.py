"""Operator library: crossover, mutation, selection, replacement."""

from .adaptive import (
    DecayingGaussianMutation,
    SelfAdaptiveGaussianMutation,
    extend_spec_with_sigma,
)
from .crossover import (
    ArithmeticCrossover,
    BlendCrossover,
    Crossover,
    CycleCrossover,
    KPointCrossover,
    OnePointCrossover,
    OrderCrossover,
    PartiallyMappedCrossover,
    SimulatedBinaryCrossover,
    TwoDimensionalCrossover,
    TwoPointCrossover,
    UniformCrossover,
    crossover_for_spec,
)
from .mutation import (
    BitFlipMutation,
    CreepMutation,
    GaussianMutation,
    InsertionMutation,
    InversionMutation,
    Mutation,
    PolynomialMutation,
    ScrambleMutation,
    SwapMutation,
    UniformResetMutation,
    mutation_for_spec,
)
from .replacement import (
    Replacement,
    ReplaceOldest,
    ReplaceRandom,
    ReplaceWorst,
    ReplaceWorstIfBetter,
    elitist_merge,
)
from .selection import (
    BestSelection,
    BoltzmannSelection,
    LinearRankSelection,
    RandomSelection,
    RouletteWheelSelection,
    Selection,
    StochasticUniversalSampling,
    TournamentSelection,
    TruncationSelection,
)

__all__ = [
    # adaptive
    "DecayingGaussianMutation",
    "SelfAdaptiveGaussianMutation",
    "extend_spec_with_sigma",
    # crossover
    "Crossover",
    "OnePointCrossover",
    "TwoPointCrossover",
    "KPointCrossover",
    "UniformCrossover",
    "ArithmeticCrossover",
    "BlendCrossover",
    "SimulatedBinaryCrossover",
    "PartiallyMappedCrossover",
    "OrderCrossover",
    "CycleCrossover",
    "TwoDimensionalCrossover",
    "crossover_for_spec",
    # mutation
    "Mutation",
    "BitFlipMutation",
    "GaussianMutation",
    "UniformResetMutation",
    "PolynomialMutation",
    "CreepMutation",
    "SwapMutation",
    "InversionMutation",
    "ScrambleMutation",
    "InsertionMutation",
    "mutation_for_spec",
    # replacement
    "Replacement",
    "ReplaceWorst",
    "ReplaceWorstIfBetter",
    "ReplaceRandom",
    "ReplaceOldest",
    "elitist_merge",
    # selection
    "Selection",
    "TournamentSelection",
    "RouletteWheelSelection",
    "LinearRankSelection",
    "StochasticUniversalSampling",
    "TruncationSelection",
    "BoltzmannSelection",
    "RandomSelection",
    "BestSelection",
]
