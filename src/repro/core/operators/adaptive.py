"""Adaptive and self-adaptive operators (survey §6 'operator theories').

Two classic mechanisms:

- :class:`DecayingGaussianMutation` — *adaptive*: the mutation scale is an
  explicit function of elapsed generations (exploration → exploitation
  annealing).
- :class:`SelfAdaptiveGaussianMutation` — *self-adaptive* (ES-style): each
  genome carries its own log-sigma as an extra gene, mutated by the
  classic lognormal rule before being applied, so step sizes evolve along
  with solutions.  Use :func:`extend_spec_with_sigma` to widen a real
  genome spec by the strategy gene.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..genome import RealVectorSpec

__all__ = [
    "DecayingGaussianMutation",
    "SelfAdaptiveGaussianMutation",
    "extend_spec_with_sigma",
]


@dataclass
class DecayingGaussianMutation:
    """Gaussian mutation whose sigma decays geometrically per call batch.

    ``sigma(t) = max(sigma_final, sigma0 * decay^t)`` where ``t`` advances
    by 1 every ``calls_per_generation`` applications (engines apply the
    operator roughly once per offspring).
    """

    sigma0: float = 0.5
    decay: float = 0.97
    sigma_final: float = 1e-3
    calls_per_generation: int = 100
    lower: float | np.ndarray | None = None
    upper: float | np.ndarray | None = None
    _calls: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.sigma0 <= 0 or self.sigma_final <= 0:
            raise ValueError("sigmas must be positive")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0,1], got {self.decay}")
        if self.calls_per_generation < 1:
            raise ValueError("calls_per_generation must be >= 1")

    @property
    def sigma(self) -> float:
        t = self._calls // self.calls_per_generation
        return max(self.sigma_final, self.sigma0 * self.decay**t)

    def __call__(self, rng: np.random.Generator, genome: np.ndarray) -> np.ndarray:
        sigma = self.sigma
        self._calls += 1
        out = genome.astype(float) + rng.normal(0.0, sigma, size=genome.shape[0])
        if self.lower is not None or self.upper is not None:
            out = np.clip(
                out,
                -np.inf if self.lower is None else self.lower,
                np.inf if self.upper is None else self.upper,
            )
        return out


def extend_spec_with_sigma(
    spec: RealVectorSpec, *, log_sigma_range: tuple[float, float] = (-5.0, 0.0)
) -> RealVectorSpec:
    """Widen a real spec by one trailing gene holding log10(sigma)."""
    lo, hi = spec.bounds()
    new_lo = np.concatenate([lo, [log_sigma_range[0]]])
    new_hi = np.concatenate([hi, [log_sigma_range[1]]])
    return RealVectorSpec(spec.length + 1, new_lo, new_hi)


@dataclass(frozen=True)
class SelfAdaptiveGaussianMutation:
    """ES-style self-adaptation: the last gene is log10(sigma).

    The strategy gene mutates first (lognormal rule with learning rate
    ``tau ≈ 1/sqrt(n)``), then the object genes mutate with the *new*
    sigma.  Selection thereby favours individuals whose step sizes suit the
    local landscape — the mechanism behind the survey's forecast
    'operator theories'.
    """

    tau: float | None = None

    def __call__(self, rng: np.random.Generator, genome: np.ndarray) -> np.ndarray:
        n = genome.shape[0] - 1
        if n < 1:
            raise ValueError("genome needs >= 1 object gene plus the sigma gene")
        tau = self.tau if self.tau is not None else 1.0 / np.sqrt(n)
        out = genome.astype(float).copy()
        out[-1] = out[-1] + tau * rng.normal()  # mutate log10(sigma)
        sigma = 10.0 ** out[-1]
        out[:-1] = out[:-1] + rng.normal(0.0, sigma, size=n)
        return out

    @staticmethod
    def sigma_of(genome: np.ndarray) -> float:
        """Current step size encoded in a genome."""
        return float(10.0 ** genome[-1])
