"""Mutation operators.

The survey: "Mutation is an operator for a slight change of one
individual … It is random, so it is against staying in the local minimum.
Low mutation parameter means low probability of mutation."

Every operator is a callable ``(rng, genome) -> genome`` returning a *new*
array; inputs are never modified in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

__all__ = [
    "Mutation",
    "BitFlipMutation",
    "GaussianMutation",
    "UniformResetMutation",
    "PolynomialMutation",
    "CreepMutation",
    "SwapMutation",
    "InversionMutation",
    "ScrambleMutation",
    "InsertionMutation",
    "mutation_for_spec",
]


class Mutation(Protocol):
    """Callable protocol all mutation operators satisfy."""

    def __call__(self, rng: np.random.Generator, genome: np.ndarray) -> np.ndarray: ...


def _per_gene_rate(rate: float | None, n: int) -> float:
    """Default per-gene rate 1/L, the classic GA setting."""
    return (1.0 / n) if rate is None else rate


@dataclass(frozen=True)
class BitFlipMutation:
    """Flip each bit independently with probability ``rate`` (default 1/L)."""

    rate: float | None = None

    def __call__(self, rng: np.random.Generator, genome: np.ndarray) -> np.ndarray:
        rate = _per_gene_rate(self.rate, genome.shape[0])
        mask = rng.random(genome.shape[0]) < rate
        out = genome.copy()
        out[mask] = 1 - out[mask]
        return out


@dataclass(frozen=True)
class GaussianMutation:
    """Add N(0, sigma) noise per gene with probability ``rate``; clip to bounds."""

    sigma: float = 0.1
    rate: float | None = None
    lower: float | np.ndarray | None = None
    upper: float | np.ndarray | None = None

    def __call__(self, rng: np.random.Generator, genome: np.ndarray) -> np.ndarray:
        n = genome.shape[0]
        rate = _per_gene_rate(self.rate, n)
        mask = rng.random(n) < rate
        noise = rng.normal(0.0, self.sigma, size=n)
        out = genome.astype(float) + np.where(mask, noise, 0.0)
        if self.lower is not None or self.upper is not None:
            out = np.clip(
                out,
                -np.inf if self.lower is None else self.lower,
                np.inf if self.upper is None else self.upper,
            )
        return out


@dataclass(frozen=True)
class UniformResetMutation:
    """Resample a gene uniformly from its box with probability ``rate``."""

    lower: float | np.ndarray
    upper: float | np.ndarray
    rate: float | None = None

    def __call__(self, rng: np.random.Generator, genome: np.ndarray) -> np.ndarray:
        n = genome.shape[0]
        rate = _per_gene_rate(self.rate, n)
        mask = rng.random(n) < rate
        lo = np.broadcast_to(np.asarray(self.lower, dtype=float), (n,))
        hi = np.broadcast_to(np.asarray(self.upper, dtype=float), (n,))
        fresh = rng.uniform(lo, hi)
        return np.where(mask, fresh, genome.astype(float))


@dataclass(frozen=True)
class PolynomialMutation:
    """Deb's polynomial mutation: bounded perturbation with shape ``eta``."""

    lower: float | np.ndarray
    upper: float | np.ndarray
    eta: float = 20.0
    rate: float | None = None

    def __call__(self, rng: np.random.Generator, genome: np.ndarray) -> np.ndarray:
        n = genome.shape[0]
        rate = _per_gene_rate(self.rate, n)
        lo = np.broadcast_to(np.asarray(self.lower, dtype=float), (n,))
        hi = np.broadcast_to(np.asarray(self.upper, dtype=float), (n,))
        span = hi - lo
        x = genome.astype(float)
        mask = rng.random(n) < rate
        u = rng.random(n)
        mpow = 1.0 / (self.eta + 1.0)
        # distance to each bound, normalised
        d_lo = (x - lo) / span
        d_hi = (hi - x) / span
        delta = np.where(
            u < 0.5,
            (2.0 * u + (1.0 - 2.0 * u) * (1.0 - d_lo) ** (self.eta + 1.0)) ** mpow - 1.0,
            1.0 - (2.0 * (1.0 - u) + 2.0 * (u - 0.5) * (1.0 - d_hi) ** (self.eta + 1.0)) ** mpow,
        )
        out = x + np.where(mask, delta * span, 0.0)
        return np.clip(out, lo, hi)


@dataclass(frozen=True)
class CreepMutation:
    """Integer creep: +/- a small step, clipped to ``[low, high]``."""

    low: int
    high: int
    step: int = 1
    rate: float | None = None

    def __call__(self, rng: np.random.Generator, genome: np.ndarray) -> np.ndarray:
        n = genome.shape[0]
        rate = _per_gene_rate(self.rate, n)
        mask = rng.random(n) < rate
        steps = rng.integers(1, self.step + 1, size=n) * rng.choice([-1, 1], size=n)
        out = genome.astype(np.int64) + np.where(mask, steps, 0)
        return np.clip(out, self.low, self.high)


@dataclass(frozen=True)
class SwapMutation:
    """Exchange two random positions (permutation-safe)."""

    def __call__(self, rng: np.random.Generator, genome: np.ndarray) -> np.ndarray:
        out = genome.copy()
        n = out.shape[0]
        if n < 2:
            return out
        i, j = rng.choice(n, size=2, replace=False)
        out[i], out[j] = out[j], out[i]
        return out


@dataclass(frozen=True)
class InversionMutation:
    """Reverse a random segment (2-opt style; permutation-safe)."""

    def __call__(self, rng: np.random.Generator, genome: np.ndarray) -> np.ndarray:
        out = genome.copy()
        n = out.shape[0]
        if n < 2:
            return out
        i, j = sorted(rng.choice(n, size=2, replace=False).tolist())
        out[i : j + 1] = out[i : j + 1][::-1]
        return out


@dataclass(frozen=True)
class ScrambleMutation:
    """Shuffle a random segment (permutation-safe)."""

    def __call__(self, rng: np.random.Generator, genome: np.ndarray) -> np.ndarray:
        out = genome.copy()
        n = out.shape[0]
        if n < 2:
            return out
        i, j = sorted(rng.choice(n, size=2, replace=False).tolist())
        segment = out[i : j + 1].copy()
        rng.shuffle(segment)
        out[i : j + 1] = segment
        return out


@dataclass(frozen=True)
class InsertionMutation:
    """Remove one element and reinsert it elsewhere (permutation-safe)."""

    def __call__(self, rng: np.random.Generator, genome: np.ndarray) -> np.ndarray:
        n = genome.shape[0]
        if n < 2:
            return genome.copy()
        src = int(rng.integers(0, n))
        dst = int(rng.integers(0, n - 1))
        out = np.delete(genome, src)
        return np.insert(out, dst, genome[src])


def mutation_for_spec(spec) -> Mutation:
    """Sensible default mutation for a genome spec (used by quickstart)."""
    from ..genome import BinarySpec, IntegerVectorSpec, PermutationSpec, RealVectorSpec

    if isinstance(spec, BinarySpec):
        return BitFlipMutation()
    if isinstance(spec, RealVectorSpec):
        lo, hi = spec.bounds()
        return GaussianMutation(sigma=float(np.mean(hi - lo)) * 0.1, lower=lo, upper=hi)
    if isinstance(spec, PermutationSpec):
        return SwapMutation()
    if isinstance(spec, IntegerVectorSpec):
        return CreepMutation(low=spec.low, high=spec.high)
    raise TypeError(f"no default mutation for spec type {type(spec).__name__}")
