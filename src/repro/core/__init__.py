"""Core sequential GA machinery: genomes, operators, engines.

Everything a *simple GA* (the survey's §1.1) needs; parallel models in
:mod:`repro.parallel` are built by composing these pieces with topologies,
migration and a (simulated or real) parallel machine.
"""

from .callbacks import Callback, CallbackList, History, LambdaCallback
from .checkpoint import (
    EngineSnapshot,
    load_checkpoint,
    restore_engine,
    save_checkpoint,
    snapshot_engine,
)
from .config import GAConfig
from .engine import (
    EvolutionEngine,
    EvolutionResult,
    FitnessEvaluator,
    GenerationalEngine,
    SerialEvaluator,
    SteadyStateEngine,
)
from .genome import (
    BinarySpec,
    GenomeSpec,
    IntegerVectorSpec,
    PermutationSpec,
    RealVectorSpec,
)
from .individual import Individual, best_of, better, sort_by_fitness, worst_of
from .niching import SharedFitnessProblem, distinct_peaks, niche_counts
from .population import Population, PopulationStats
from .problem import (
    CountingProblem,
    FitnessBudgetExceeded,
    Problem,
    batch_evaluation,
    batch_evaluation_enabled,
    stack_genomes,
    use_batch_evaluation,
)
from .rng import derive_rng, ensure_rng, spawn_rngs, spawn_seeds
from .variation import make_offspring, offspring_pair
from .vectorized import (
    ArrayPopulation,
    supports_vectorized_variation,
    vector_offspring,
)
from .termination import (
    AllOf,
    AnyOf,
    EvolutionState,
    MaxEvaluations,
    MaxGenerations,
    Never,
    Stagnation,
    TargetFitness,
    Termination,
)

__all__ = [
    "Callback",
    "CallbackList",
    "History",
    "LambdaCallback",
    "GAConfig",
    "EvolutionEngine",
    "EvolutionResult",
    "FitnessEvaluator",
    "GenerationalEngine",
    "SerialEvaluator",
    "SteadyStateEngine",
    "GenomeSpec",
    "BinarySpec",
    "RealVectorSpec",
    "PermutationSpec",
    "IntegerVectorSpec",
    "Individual",
    "better",
    "best_of",
    "worst_of",
    "sort_by_fitness",
    "Population",
    "PopulationStats",
    "SharedFitnessProblem",
    "niche_counts",
    "distinct_peaks",
    "Problem",
    "CountingProblem",
    "stack_genomes",
    "batch_evaluation",
    "batch_evaluation_enabled",
    "use_batch_evaluation",
    "FitnessBudgetExceeded",
    "ensure_rng",
    "spawn_rngs",
    "spawn_seeds",
    "derive_rng",
    "EvolutionState",
    "Termination",
    "MaxGenerations",
    "MaxEvaluations",
    "TargetFitness",
    "Stagnation",
    "Never",
    "AnyOf",
    "AllOf",
    "offspring_pair",
    "make_offspring",
    "ArrayPopulation",
    "supports_vectorized_variation",
    "vector_offspring",
    "EngineSnapshot",
    "snapshot_engine",
    "restore_engine",
    "save_checkpoint",
    "load_checkpoint",
]
