"""Termination criteria, composable with & (all) and | (any).

Engines consult a criterion after every step with an :class:`EvolutionState`
snapshot.  The survey's experiments stop on target fitness (efficacy runs),
evaluation budgets (fair cross-model comparisons) or generation counts.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

__all__ = [
    "EvolutionState",
    "Termination",
    "MaxGenerations",
    "MaxEvaluations",
    "TargetFitness",
    "Stagnation",
    "Never",
    "AnyOf",
    "AllOf",
]


@dataclass
class EvolutionState:
    """What a termination criterion is allowed to see."""

    generation: int = 0
    evaluations: int = 0
    best_fitness: float | None = None
    maximize: bool = True
    #: generations since the best fitness last improved
    stagnant_generations: int = 0
    #: logical (simulated) or wall-clock seconds, model-dependent
    elapsed_time: float = 0.0
    extra: dict = field(default_factory=dict)


class Termination(abc.ABC):
    """Predicate over :class:`EvolutionState`."""

    @abc.abstractmethod
    def should_stop(self, state: EvolutionState) -> bool: ...

    def reason(self) -> str:
        return type(self).__name__

    def __or__(self, other: "Termination") -> "AnyOf":
        return AnyOf(self, other)

    def __and__(self, other: "Termination") -> "AllOf":
        return AllOf(self, other)


@dataclass
class MaxGenerations(Termination):
    """Stop after ``limit`` generations."""

    limit: int

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise ValueError(f"generation limit must be >= 0, got {self.limit}")

    def should_stop(self, state: EvolutionState) -> bool:
        return state.generation >= self.limit


@dataclass
class MaxEvaluations(Termination):
    """Stop once ``limit`` fitness evaluations have been spent."""

    limit: int

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise ValueError(f"evaluation limit must be >= 0, got {self.limit}")

    def should_stop(self, state: EvolutionState) -> bool:
        return state.evaluations >= self.limit


@dataclass
class TargetFitness(Termination):
    """Stop when the best fitness reaches ``target`` (direction-aware)."""

    target: float
    tol: float = 1e-9

    def should_stop(self, state: EvolutionState) -> bool:
        if state.best_fitness is None:
            return False
        if state.maximize:
            return state.best_fitness >= self.target - self.tol
        return state.best_fitness <= self.target + self.tol


@dataclass
class Stagnation(Termination):
    """Stop after ``patience`` generations without improvement."""

    patience: int

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")

    def should_stop(self, state: EvolutionState) -> bool:
        return state.stagnant_generations >= self.patience


@dataclass
class Never(Termination):
    """Never stop (combine with an external controller)."""

    def should_stop(self, state: EvolutionState) -> bool:
        return False


class AnyOf(Termination):
    """Stop when any sub-criterion fires."""

    def __init__(self, *criteria: Termination) -> None:
        if not criteria:
            raise ValueError("AnyOf requires at least one criterion")
        self.criteria = list(criteria)
        self._fired: Termination | None = None

    def should_stop(self, state: EvolutionState) -> bool:
        for c in self.criteria:
            if c.should_stop(state):
                self._fired = c
                return True
        return False

    def reason(self) -> str:
        return self._fired.reason() if self._fired is not None else "AnyOf"


class AllOf(Termination):
    """Stop only when every sub-criterion fires."""

    def __init__(self, *criteria: Termination) -> None:
        if not criteria:
            raise ValueError("AllOf requires at least one criterion")
        self.criteria = list(criteria)

    def should_stop(self, state: EvolutionState) -> bool:
        return all(c.should_stop(state) for c in self.criteria)

    def reason(self) -> str:
        return "AllOf(" + ", ".join(c.reason() for c in self.criteria) + ")"
