"""Niching / speciation: fitness sharing and peak-maintenance utilities.

Survey §6 forecasts "speciation theories and niches" among the coming PGA
theories.  Fitness sharing (Goldberg & Richardson 1987) is the canonical
mechanism: an individual's fitness is divided by its *niche count* — how
crowded its neighbourhood is — so subpopulations stabilise on separate
peaks instead of all converging to the single best.  The island model is
itself a coarse niching device (E10's divergence), and sharing provides the
panmictic counterpart for comparison.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .individual import Individual
from .population import Population
from .problem import Problem

__all__ = ["SharedFitnessProblem", "niche_counts", "distinct_peaks"]


def niche_counts(
    genomes: np.ndarray, sigma_share: float, *, alpha: float = 1.0
) -> np.ndarray:
    """Niche count per row of ``genomes`` under the triangular sharing kernel.

    ``m_i = sum_j max(0, 1 - (d_ij / sigma)^alpha)`` with Euclidean d.
    """
    if sigma_share <= 0:
        raise ValueError(f"sigma_share must be positive, got {sigma_share}")
    g = np.asarray(genomes, dtype=float)
    diff = g[:, None, :] - g[None, :, :]
    d = np.sqrt((diff * diff).sum(axis=2))
    sh = np.maximum(0.0, 1.0 - (d / sigma_share) ** alpha)
    return sh.sum(axis=1)  # includes self (d=0 → contribution 1)


class SharedFitnessProblem(Problem):
    """Fitness-sharing wrapper: evaluation happens against the raw problem,
    but batch evaluations are divided by niche counts.

    Sharing is inherently population-relative, so only
    :meth:`evaluate_many` applies it (engines evaluate offspring in
    batches, which is the population snapshot sharing needs);
    single-genome :meth:`evaluate` returns the raw fitness.
    """

    def __init__(self, inner: Problem, sigma_share: float, *, alpha: float = 1.0) -> None:
        if not inner.maximize:
            raise ValueError(
                "fitness sharing divides fitness and requires maximisation; "
                "wrap minimisation problems in a negating adapter first"
            )
        if sigma_share <= 0:
            raise ValueError(f"sigma_share must be positive, got {sigma_share}")
        self.inner = inner
        self.sigma_share = sigma_share
        self.alpha = alpha
        self.spec = inner.spec
        self.maximize = True
        self.optimum = None  # shared fitness has no fixed optimum
        self.target = None

    def evaluate(self, genome: np.ndarray) -> float:
        return self.inner.evaluate(genome)

    def evaluate_many(self, genomes: Sequence[np.ndarray]) -> list[float]:
        raw = np.asarray(self.inner.evaluate_many(genomes), dtype=float)
        if len(genomes) < 2:
            return raw.tolist()
        counts = niche_counts(np.stack([g.astype(float) for g in genomes]),
                              self.sigma_share, alpha=self.alpha)
        if raw.min() < 0:
            raw = raw - raw.min()  # sharing needs non-negative fitness
        return (raw / counts).tolist()

    @property
    def name(self) -> str:
        return f"Shared({self.inner.name}, sigma={self.sigma_share})"


def distinct_peaks(
    population: Population | list[Individual],
    *,
    min_distance: float,
    top_fraction: float = 0.25,
) -> list[Individual]:
    """Greedy peak extraction: best-first, keep individuals at least
    ``min_distance`` (Euclidean) from every already-kept peak.

    The measurement tool for niching experiments: how many separate optima
    does the final population hold?
    """
    if min_distance <= 0:
        raise ValueError("min_distance must be positive")
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    inds = list(population)
    maximize = population.maximize if isinstance(population, Population) else True
    ranked = sorted(
        inds, key=lambda i: i.require_fitness(), reverse=maximize
    )
    ranked = ranked[: max(1, int(np.ceil(top_fraction * len(ranked))))]
    peaks: list[Individual] = []
    for ind in ranked:
        g = ind.genome.astype(float)
        if all(
            np.linalg.norm(g - p.genome.astype(float)) >= min_distance
            for p in peaks
        ):
            peaks.append(ind)
    return peaks
