"""Sequential evolution engines: generational and steady-state.

These are the survey's two *panmictic* reproduction loops ("a set of popular
evolution schemes relating to panmictic (steady-state or generational) …
GAs"; Alba & Troya 2002 analyze exactly this pair).  Parallel models reuse
them: an island runs one engine per deme; a master-slave farm runs one
engine whose fitness evaluation is delegated to an evaluator.

The *evaluator* seam (``evaluate(problem, genomes) -> fitnesses``) is where
parallel fitness evaluation plugs in without the engine knowing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from ..obs.session import current_obs
from .callbacks import Callback, CallbackList, History
from .config import GAConfig
from .individual import Individual
from .population import Population
from .problem import Problem, stack_genomes
from .rng import ensure_rng
from .termination import EvolutionState, MaxGenerations, Termination
from .variation import offspring_pair
from .vectorized import selection_kernel, supports_vectorized_variation, vector_offspring

__all__ = [
    "FitnessEvaluator",
    "SerialEvaluator",
    "EvolutionResult",
    "EvolutionEngine",
    "GenerationalEngine",
    "SteadyStateEngine",
]


class FitnessEvaluator(Protocol):
    """Maps genomes to fitnesses, possibly in parallel."""

    def evaluate(self, problem: Problem, genomes: Sequence[np.ndarray]) -> list[float]: ...


class SerialEvaluator:
    """Evaluate genomes in the calling process, one after another."""

    def evaluate(self, problem: Problem, genomes: Sequence[np.ndarray]) -> list[float]:
        return problem.evaluate_many(genomes)


@dataclass
class EvolutionResult:
    """Outcome of one engine run."""

    best: Individual
    population: Population
    generations: int
    evaluations: int
    solved: bool
    stop_reason: str
    history: History = field(repr=False, default_factory=History)

    @property
    def best_fitness(self) -> float:
        return self.best.require_fitness()


class EvolutionEngine:
    """Shared machinery for the two sequential engines.

    Subclasses implement :meth:`_advance`, which transforms the current
    population into the next one and returns the number of evaluations
    spent.
    """

    def __init__(
        self,
        problem: Problem,
        config: GAConfig | None = None,
        *,
        seed: int | np.random.Generator | None = None,
        evaluator: FitnessEvaluator | None = None,
        callbacks: list[Callback] | None = None,
    ) -> None:
        self.problem = problem
        base = config if config is not None else GAConfig()
        self.config = base.resolved_for(problem.spec)
        self.rng = ensure_rng(seed)
        self.evaluator: FitnessEvaluator = evaluator or SerialEvaluator()
        self.history = History()
        self.callbacks = CallbackList([self.history, *(callbacks or [])])
        self.population: Population | None = None
        self.state = EvolutionState(maximize=problem.maximize)
        self._best_so_far: Individual | None = None
        self._vectorized_supported: bool | None = None

    # -- lifecycle -------------------------------------------------------------
    def initialize(self, individuals: list[Individual] | None = None) -> Population:
        """Create and evaluate generation 0.

        ``individuals`` lets callers seed the initial population (e.g. with
        phase-1 solutions in the 2-phase image-registration workload).
        """
        if individuals is None:
            genomes = self.problem.spec.sample_population(
                self.rng, self.config.population_size
            )
            individuals = [Individual(genome=g) for g in genomes]
        pop = Population(individuals, maximize=self.problem.maximize)
        self._evaluate(pop.unevaluated())
        self.population = pop
        self.state = EvolutionState(
            generation=0,
            evaluations=self.state.evaluations,
            best_fitness=pop.best().fitness,
            maximize=self.problem.maximize,
        )
        self._best_so_far = pop.best().copy()
        self.callbacks.on_generation(self.state, pop)
        return pop

    def step(self) -> Population:
        """Advance one generation (initialising lazily)."""
        if self.population is None:
            self.initialize()
            return self.population  # generation 0 counts as the first step
        self._advance()
        self.state.generation += 1
        current_best = self.population.best()
        if self._best_so_far is None or self.problem.is_improvement(
            current_best.require_fitness(), self._best_so_far.require_fitness()
        ):
            self._best_so_far = current_best.copy()
            self.state.stagnant_generations = 0
        else:
            self.state.stagnant_generations += 1
        self.state.best_fitness = self._best_so_far.require_fitness()
        self.callbacks.on_generation(self.state, self.population)
        return self.population

    def run(self, termination: Termination | int | None = None) -> EvolutionResult:
        """Run until the termination criterion fires.

        An ``int`` is shorthand for :class:`MaxGenerations`.
        """
        if termination is None:
            termination = MaxGenerations(100)
        elif isinstance(termination, int):
            termination = MaxGenerations(termination)
        if self.population is None:
            self.initialize()
        while not termination.should_stop(self.state) and not self._solved():
            self.step()
        return self.result(stop_reason="solved" if self._solved() else termination.reason())

    def result(self, stop_reason: str = "manual") -> EvolutionResult:
        """Snapshot the current outcome."""
        if self.population is None or self._best_so_far is None:
            raise RuntimeError("engine has not been initialised")
        return EvolutionResult(
            best=self._best_so_far.copy(),
            population=self.population,
            generations=self.state.generation,
            evaluations=self.state.evaluations,
            solved=self._solved(),
            stop_reason=stop_reason,
            history=self.history,
        )

    @property
    def best_so_far(self) -> Individual:
        """Best individual seen over the whole run (not just current pop)."""
        if self._best_so_far is None:
            raise RuntimeError("engine has not been initialised")
        return self._best_so_far

    # -- internals ---------------------------------------------------------------
    def _solved(self) -> bool:
        return self.state.best_fitness is not None and self.problem.is_solved(
            self.state.best_fitness
        )

    def _evaluate(self, individuals: list[Individual]) -> None:
        if not individuals:
            return
        genomes: Sequence[np.ndarray] | np.ndarray = [ind.genome for ind in individuals]
        # ship the generation as one contiguous (n, L) array so evaluators
        # (and the executors behind them) get the vectorized fast path and
        # zero-copy chunk transport for free
        batch = stack_genomes(genomes)
        if batch is not None:
            genomes = batch
        fitnesses = self.evaluator.evaluate(self.problem, genomes)
        if len(fitnesses) != len(individuals):
            raise RuntimeError(
                f"evaluator returned {len(fitnesses)} fitnesses for "
                f"{len(individuals)} genomes"
            )
        for ind, f in zip(individuals, fitnesses):
            ind.fitness = float(f)
        self.state.evaluations += len(individuals)

    def _make_offspring_pair(
        self, parent_a: Individual, parent_b: Individual
    ) -> tuple[Individual, Individual]:
        """Apply crossover (with probability) then mutation (with probability)."""
        return offspring_pair(
            self.rng,
            self.config,
            self.problem.spec,
            parent_a,
            parent_b,
            generation=self.state.generation + 1,
        )

    # -- vectorized fast path -----------------------------------------------
    def _use_vectorized(self) -> bool:
        """Whether this generation runs on the array fast path.

        Resolved once per engine: both variation operators must have batch
        kernels.  When the toggle is on but an operator is unsupported the
        engine stays scalar and counts ``variation.scalar_fallback``.
        """
        if not self.config.vectorized_variation:
            return False
        if self._vectorized_supported is None:
            self._vectorized_supported = supports_vectorized_variation(self.config)
            if not self._vectorized_supported:
                obs = current_obs()
                if obs is not None:
                    obs.metrics.counter("variation.scalar_fallback").inc()
        return self._vectorized_supported

    def _select_indices(self, fitnesses: np.ndarray, n: int) -> np.ndarray:
        """Select ``n`` parent row indices from the current population.

        Uses the operator's index kernel when one exists; custom operators
        fall back to the scalar call with picks mapped back to rows by
        identity (selection returns references, never copies).
        """
        assert self.population is not None
        kernel = selection_kernel(self.config.selection)
        if kernel is not None:
            return kernel(self.rng, fitnesses, n, self.problem.maximize)
        members = self.population.individuals
        picked = self.config.selection(self.rng, members, n, self.problem.maximize)
        index_of = {id(ind): i for i, ind in enumerate(members)}
        return np.asarray([index_of[id(ind)] for ind in picked], dtype=np.int64)

    def _vector_offspring(self, parent_idx: np.ndarray, count: int) -> list[Individual]:
        """Run the batched variation cycle and wrap the rows as Individuals."""
        assert self.population is not None
        members = self.population.individuals
        parents = np.stack([members[int(i)].genome for i in parent_idx])
        genomes, origins = vector_offspring(
            self.rng, self.config, self.problem.spec, parents, count
        )
        gen = self.state.generation + 1
        return [
            Individual(
                genome=genomes[i].copy(), birth_generation=gen, origin=str(origins[i])
            )
            for i in range(count)
        ]

    def _advance(self) -> None:
        raise NotImplementedError


class GenerationalEngine(EvolutionEngine):
    """Whole-population replacement each generation, with elitism."""

    def _advance(self) -> None:
        if self._use_vectorized():
            self._advance_vectorized()
            return
        assert self.population is not None
        cfg = self.config
        n = len(self.population)
        needed = n - min(cfg.elitism, n)
        parents = cfg.selection(
            self.rng, self.population.individuals, needed + needed % 2, self.problem.maximize
        )
        offspring: list[Individual] = []
        for i in range(0, len(parents) - 1, 2):
            a, b = self._make_offspring_pair(parents[i], parents[i + 1])
            offspring.extend((a, b))
        # With odd `needed` the loop above builds one full extra pair and the
        # slice discards a sibling whose crossover/mutation draws were already
        # consumed.  That waste is deliberate: the rng draw order here is
        # fingerprint-protected (tests pin the stream), so it must not change.
        # The vectorized path produces exactly `needed` children instead.
        offspring = offspring[:needed]
        obs = current_obs()
        if obs is not None:
            obs.metrics.counter("variation.offspring_scalar").inc(needed)
        self._evaluate(offspring)
        elite = [ind.copy() for ind in self.population.sorted()[: cfg.elitism]]
        self.population.individuals = elite + offspring

    def _advance_vectorized(self) -> None:
        assert self.population is not None
        cfg = self.config
        obs = current_obs()
        t0 = obs.wall_now() if obs is not None else 0.0
        n = len(self.population)
        needed = n - min(cfg.elitism, n)
        fits = self.population.fitness_array()
        parent_idx = self._select_indices(fits, needed + needed % 2)
        offspring = self._vector_offspring(parent_idx, needed)
        if obs is not None:
            obs.spans.record(
                "variation",
                t0,
                obs.wall_now(),
                clock="wall",
                track="variation",
                engine="generational",
                offspring=needed,
            )
            obs.metrics.counter("variation.offspring_vectorized").inc(needed)
        self._evaluate(offspring)
        elite = [ind.copy() for ind in self.population.sorted()[: cfg.elitism]]
        self.population.individuals = elite + offspring


class SteadyStateEngine(EvolutionEngine):
    """Insert offspring one at a time, evicting via the replacement policy.

    One *generation* is defined as ``population_size`` insertions scaled by
    ``offspring_per_step`` — i.e. one full population's worth of births —
    so convergence curves are comparable with the generational engine.
    """

    def _advance(self) -> None:
        if self._use_vectorized():
            self._advance_vectorized()
            return
        assert self.population is not None
        cfg = self.config
        births_per_generation = len(self.population)
        born = 0
        while born < births_per_generation:
            parents = cfg.selection(
                self.rng, self.population.individuals, 2, self.problem.maximize
            )
            a, b = self._make_offspring_pair(parents[0], parents[1])
            # A full sibling pair is always built; with offspring_per_step=1
            # the second child (and its consumed mutation/repair draws) is
            # discarded.  Deliberate: this rng draw order is
            # fingerprint-protected (tests pin the stream).  The vectorized
            # path below produces exactly the batch size instead.
            batch = [a, b][: min(cfg.offspring_per_step, births_per_generation - born)]
            self._evaluate(batch)
            for child in batch:
                cfg.replacement(self.rng, self.population, child)
            born += len(batch)
        obs = current_obs()
        if obs is not None:
            obs.metrics.counter("variation.offspring_scalar").inc(born)

    def _advance_vectorized(self) -> None:
        assert self.population is not None
        cfg = self.config
        obs = current_obs()
        births_per_generation = len(self.population)
        born = 0
        spent = 0.0
        while born < births_per_generation:
            k = min(cfg.offspring_per_step, births_per_generation - born)
            t0 = obs.wall_now() if obs is not None else 0.0
            fits = self.population.fitness_array()
            parent_idx = self._select_indices(fits, 2)
            batch = self._vector_offspring(parent_idx, k)
            if obs is not None:
                spent += obs.wall_now() - t0
            self._evaluate(batch)
            for child in batch:
                cfg.replacement(self.rng, self.population, child)
            born += k
        if obs is not None:
            # one aggregated span per generation: duration = the summed
            # variation fragments of all steady-state steps
            now = obs.wall_now()
            obs.spans.record(
                "variation",
                now - spent,
                now,
                clock="wall",
                track="variation",
                engine="steady-state",
                offspring=born,
            )
            obs.metrics.counter("variation.offspring_vectorized").inc(born)
