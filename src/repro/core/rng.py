"""Deterministic random-number management for sequential and parallel GAs.

Every stochastic component in :mod:`repro` draws from a
:class:`numpy.random.Generator`.  Parallel models need *independent*
streams per deme/worker that are nevertheless reproducible from a single
seed; we use NumPy's ``SeedSequence.spawn`` mechanism, which guarantees
statistically independent child streams.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs", "spawn_seeds", "derive_rng"]


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.SeedSequence | None, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent generators derived from one root seed.

    The streams are independent in the cryptographic-hash sense provided by
    :class:`numpy.random.SeedSequence`, so demes seeded this way do not share
    correlated randomness.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]


def spawn_seeds(seed: int | None, n: int) -> list[np.random.SeedSequence]:
    """Spawn ``n`` child seed sequences (picklable, for multiprocessing)."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    return np.random.SeedSequence(seed).spawn(n)


def derive_rng(rng: np.random.Generator) -> np.random.Generator:
    """Fork one additional independent generator off an existing one.

    Used when a component must hand private randomness to a sub-component
    without perturbing its own stream consumption pattern.
    """
    seed = rng.integers(0, 2**63 - 1, dtype=np.int64)
    return np.random.default_rng(int(seed))


def pairwise_indices(rng: np.random.Generator, n: int) -> Sequence[tuple[int, int]]:
    """Random disjoint index pairs covering ``0..n-1`` (n even) for mating."""
    perm = rng.permutation(n)
    return [(int(perm[i]), int(perm[i + 1])) for i in range(0, n - n % 2, 2)]
