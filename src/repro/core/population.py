"""Population container with summary statistics.

A :class:`Population` is the unit the survey calls a *generation* when
time-indexed, and a *deme* when it lives on one node of a parallel model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from .individual import Individual, best_of, sort_by_fitness, worst_of

__all__ = ["Population", "PopulationStats"]


@dataclass(frozen=True)
class PopulationStats:
    """Snapshot statistics of an evaluated population."""

    size: int
    best: float
    worst: float
    mean: float
    std: float
    median: float

    def as_dict(self) -> dict[str, float]:
        return {
            "size": self.size,
            "best": self.best,
            "worst": self.worst,
            "mean": self.mean,
            "std": self.std,
            "median": self.median,
        }


class Population:
    """A mutable collection of :class:`Individual` objects.

    Parameters
    ----------
    individuals:
        Initial members (the list is copied; the individuals are not).
    maximize:
        Direction of improvement, shared by all statistics helpers.
    """

    def __init__(self, individuals: list[Individual], *, maximize: bool = True) -> None:
        self.individuals: list[Individual] = list(individuals)
        self.maximize = maximize

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.individuals)

    def __iter__(self) -> Iterator[Individual]:
        return iter(self.individuals)

    def __getitem__(self, idx: int) -> Individual:
        return self.individuals[idx]

    def __setitem__(self, idx: int, ind: Individual) -> None:
        self.individuals[idx] = ind

    def append(self, ind: Individual) -> None:
        self.individuals.append(ind)

    def extend(self, inds: list[Individual]) -> None:
        self.individuals.extend(inds)

    # -- evaluation state ----------------------------------------------------
    @property
    def all_evaluated(self) -> bool:
        return all(ind.evaluated for ind in self.individuals)

    def unevaluated(self) -> list[Individual]:
        """Members whose fitness is stale or missing."""
        return [ind for ind in self.individuals if not ind.evaluated]

    # -- statistics -----------------------------------------------------------
    def fitness_array(self) -> np.ndarray:
        """All fitness values as a float array (requires full evaluation)."""
        return np.asarray([ind.require_fitness() for ind in self.individuals], dtype=float)

    def best(self) -> Individual:
        return best_of(self.individuals, self.maximize)

    def worst(self) -> Individual:
        return worst_of(self.individuals, self.maximize)

    def sorted(self) -> list[Individual]:
        """Members sorted best-first."""
        return sort_by_fitness(self.individuals, self.maximize)

    def best_index(self) -> int:
        f = self.fitness_array()
        return int(np.argmax(f) if self.maximize else np.argmin(f))

    def worst_index(self) -> int:
        f = self.fitness_array()
        return int(np.argmin(f) if self.maximize else np.argmax(f))

    def stats(self) -> PopulationStats:
        f = self.fitness_array()
        if f.size == 0:
            raise ValueError("cannot compute stats of empty population")
        best = float(f.max() if self.maximize else f.min())
        worst = float(f.min() if self.maximize else f.max())
        return PopulationStats(
            size=len(self),
            best=best,
            worst=worst,
            mean=float(f.mean()),
            std=float(f.std()),
            median=float(np.median(f)),
        )

    # -- transformation -------------------------------------------------------
    def copy(self) -> "Population":
        """Deep copy (individuals and genomes cloned)."""
        return Population([ind.copy() for ind in self.individuals], maximize=self.maximize)

    def replace_worst(self, newcomer: Individual) -> Individual:
        """Replace the worst member with ``newcomer``; return the evictee."""
        idx = self.worst_index()
        evicted = self.individuals[idx]
        self.individuals[idx] = newcomer
        return evicted

    def truncate(self, n: int) -> None:
        """Keep only the ``n`` best members."""
        if n < 0:
            raise ValueError(f"cannot truncate to negative size {n}")
        self.individuals = self.sorted()[:n]

    def map_genomes(self, fn: Callable[[np.ndarray], np.ndarray]) -> None:
        """Apply ``fn`` in place to each genome, invalidating fitness."""
        for ind in self.individuals:
            ind.genome = fn(ind.genome)
            ind.invalidate()
