"""Callbacks and run history recording.

Engines invoke callbacks once per generation with the current
:class:`~repro.core.termination.EvolutionState` and population.  The
:class:`History` callback is how experiments collect convergence curves
(best/mean fitness per generation) without engines knowing about metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from .population import Population, PopulationStats
from .termination import EvolutionState

__all__ = ["Callback", "History", "CallbackList", "LambdaCallback"]


class Callback(Protocol):
    """Per-generation observer hook."""

    def on_generation(self, state: EvolutionState, population: Population) -> None: ...


@dataclass
class GenerationRecord:
    """One row of a convergence trace."""

    generation: int
    evaluations: int
    stats: PopulationStats

    @property
    def best(self) -> float:
        return self.stats.best

    @property
    def mean(self) -> float:
        return self.stats.mean


class History:
    """Records population statistics every generation."""

    def __init__(self) -> None:
        self.records: list[GenerationRecord] = []

    def on_generation(self, state: EvolutionState, population: Population) -> None:
        self.records.append(
            GenerationRecord(
                generation=state.generation,
                evaluations=state.evaluations,
                stats=population.stats(),
            )
        )

    def best_curve(self) -> list[float]:
        """Best fitness per recorded generation."""
        return [r.best for r in self.records]

    def mean_curve(self) -> list[float]:
        """Mean fitness per recorded generation."""
        return [r.mean for r in self.records]

    def evaluations_curve(self) -> list[int]:
        return [r.evaluations for r in self.records]

    def __len__(self) -> int:
        return len(self.records)


class LambdaCallback:
    """Wrap a plain function as a callback."""

    def __init__(self, fn: Callable[[EvolutionState, Population], None]) -> None:
        self.fn = fn

    def on_generation(self, state: EvolutionState, population: Population) -> None:
        self.fn(state, population)


class CallbackList:
    """Fan a generation event out to several callbacks."""

    def __init__(self, callbacks: list[Callback] | None = None) -> None:
        self.callbacks: list[Callback] = list(callbacks or [])

    def add(self, cb: Callback) -> None:
        self.callbacks.append(cb)

    def on_generation(self, state: EvolutionState, population: Population) -> None:
        for cb in self.callbacks:
            cb.on_generation(state, population)
