"""Genome specifications: the search-space half of a GA problem.

The survey's applications use binary strings (classic GAs, feature
selection), real vectors (wing design, Doppler filters — "ARGA had both
binary and real value representations"), permutations (TSP, scheduling) and
bounded integer strings (reactor-core zone enrichments).  A
:class:`GenomeSpec` bundles sampling, validation and repair for one such
representation so operators and engines stay representation-agnostic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "GenomeSpec",
    "BinarySpec",
    "RealVectorSpec",
    "PermutationSpec",
    "IntegerVectorSpec",
]


def _as_block(genomes: np.ndarray) -> np.ndarray:
    G = np.asarray(genomes)
    if G.ndim != 2:
        raise ValueError(f"genome block must be 2-D (m, L), got ndim={G.ndim}")
    return G


class GenomeSpec(abc.ABC):
    """Abstract description of one chromosome representation."""

    #: number of genes in the chromosome
    length: int

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one uniformly random genome."""

    @abc.abstractmethod
    def is_valid(self, genome: np.ndarray) -> bool:
        """Check that ``genome`` lies in the representation's domain."""

    def repair(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Project an out-of-domain genome back into the domain.

        Default implementation returns the genome unchanged; bounded
        representations override this with clipping / re-normalisation.
        """
        return genome

    def repair_batch(
        self, genomes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Repair a whole ``(m, L)`` block of genomes row-wise.

        Default implementation loops over :meth:`repair`; the built-in
        specs override it with a single array operation so the vectorized
        variation path stays allocation- and dispatch-free.  Must be
        distributionally equivalent to row-wise :meth:`repair`.
        """
        G = _as_block(genomes)
        if G.shape[0] == 0:
            return G.copy()
        return np.stack([self.repair(g, rng) for g in G])

    def sample_population(self, rng: np.random.Generator, n: int) -> list[np.ndarray]:
        """Draw ``n`` independent random genomes."""
        return [self.sample(rng) for _ in range(n)]


@dataclass(frozen=True)
class BinarySpec(GenomeSpec):
    """Fixed-length bit string; the survey's 'mostly binary' chromosome.

    ``density`` biases initial sampling: each bit is 1 with that
    probability (0.5 = classic uniform).  Sparse-solution problems such as
    large-scale feature selection initialise at low density so the GA
    grows masks instead of pruning from 50%.
    """

    length: int
    density: float = 0.5

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"binary genome length must be positive, got {self.length}")
        if not 0.0 < self.density < 1.0:
            raise ValueError(f"density must be in (0,1), got {self.density}")

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return (rng.random(self.length) < self.density).astype(np.int8)

    def is_valid(self, genome: np.ndarray) -> bool:
        return (
            genome.shape == (self.length,)
            and bool(np.all((genome == 0) | (genome == 1)))
        )

    def repair(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.clip(np.rint(genome), 0, 1).astype(np.int8)

    def repair_batch(
        self, genomes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        G = _as_block(genomes)
        # integer blocks (the common case on the hot variation path) skip
        # np.rint, which would promote the whole block to float64
        if not np.issubdtype(G.dtype, np.integer):
            G = np.rint(G)
        return np.clip(G, 0, 1).astype(np.int8, copy=False)


@dataclass(frozen=True)
class RealVectorSpec(GenomeSpec):
    """Real-valued vector with per-gene (or scalar) box bounds."""

    length: int
    lower: float | np.ndarray = 0.0
    upper: float | np.ndarray = 1.0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"real genome length must be positive, got {self.length}")
        lo, hi = self.bounds()
        if np.any(lo >= hi):
            raise ValueError("lower bounds must be strictly below upper bounds")

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Broadcast bounds to full-length float arrays."""
        lo = np.broadcast_to(np.asarray(self.lower, dtype=float), (self.length,))
        hi = np.broadcast_to(np.asarray(self.upper, dtype=float), (self.length,))
        return lo, hi

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        lo, hi = self.bounds()
        return rng.uniform(lo, hi)

    def is_valid(self, genome: np.ndarray) -> bool:
        if genome.shape != (self.length,):
            return False
        lo, hi = self.bounds()
        return bool(np.all(genome >= lo) and np.all(genome <= hi))

    def repair(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        lo, hi = self.bounds()
        return np.clip(genome.astype(float), lo, hi)

    def repair_batch(
        self, genomes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        lo, hi = self.bounds()
        return np.clip(_as_block(genomes).astype(float), lo, hi)

    @property
    def span(self) -> np.ndarray:
        lo, hi = self.bounds()
        return hi - lo


@dataclass(frozen=True)
class PermutationSpec(GenomeSpec):
    """Permutation of ``0..length-1`` (tours, schedules, orderings)."""

    length: int

    def __post_init__(self) -> None:
        if self.length <= 1:
            raise ValueError(f"permutation length must exceed 1, got {self.length}")

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.permutation(self.length).astype(np.int64)

    def is_valid(self, genome: np.ndarray) -> bool:
        return (
            genome.shape == (self.length,)
            and bool(np.array_equal(np.sort(genome), np.arange(self.length)))
        )

    def repair(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Rebuild a valid permutation preserving the relative order of the
        first occurrence of each valid city and appending missing ones."""
        seen: set[int] = set()
        out: list[int] = []
        for g in np.asarray(genome, dtype=np.int64):
            v = int(g)
            if 0 <= v < self.length and v not in seen:
                seen.add(v)
                out.append(v)
        missing = [v for v in range(self.length) if v not in seen]
        rng.shuffle(missing)
        out.extend(missing)
        return np.asarray(out[: self.length], dtype=np.int64)

    def repair_batch(
        self, genomes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Vectorized first-occurrence rebuild of a whole block.

        For each row, scatter the first column index of every valid value
        into a ``(m, L)`` position table (``L`` = "absent" sentinel), give
        absent values random sort keys past the sentinel, and argsort the
        keys: values ordered by first occurrence, then missing values in
        random order — the same distribution as row-wise :meth:`repair`,
        with no Python loop.
        """
        G = _as_block(genomes)
        m, L = G.shape
        if m == 0:
            return G.astype(np.int64)
        vals = G.astype(np.int64)
        valid = (vals >= 0) & (vals < self.length)
        pos = np.full((m, self.length), L, dtype=np.int64)
        rr, cc = np.nonzero(valid)
        np.minimum.at(pos, (rr, vals[rr, cc]), cc)
        # absent values sort after every first-occurrence column, ordered
        # by an independent uniform key (= a random shuffle of the missing)
        key = np.where(pos < L, pos.astype(float), L + rng.random((m, self.length)))
        return np.argsort(key, axis=1).astype(np.int64)


@dataclass(frozen=True)
class IntegerVectorSpec(GenomeSpec):
    """Bounded integer string (e.g. reactor zone enrichment indices)."""

    length: int
    low: int = 0
    high: int = 1  # inclusive

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"integer genome length must be positive, got {self.length}")
        if self.low > self.high:
            raise ValueError(f"low ({self.low}) must not exceed high ({self.high})")

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(self.low, self.high + 1, size=self.length, dtype=np.int64)

    def is_valid(self, genome: np.ndarray) -> bool:
        return (
            genome.shape == (self.length,)
            and bool(np.all(genome >= self.low) and np.all(genome <= self.high))
        )

    def repair(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.clip(np.rint(genome), self.low, self.high).astype(np.int64)

    def repair_batch(
        self, genomes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        G = _as_block(genomes)
        if not np.issubdtype(G.dtype, np.integer):
            G = np.rint(G)
        return np.clip(G, self.low, self.high).astype(np.int64, copy=False)

    @property
    def cardinality(self) -> int:
        """Number of distinct values one gene can take."""
        return self.high - self.low + 1
