"""Genome specifications: the search-space half of a GA problem.

The survey's applications use binary strings (classic GAs, feature
selection), real vectors (wing design, Doppler filters — "ARGA had both
binary and real value representations"), permutations (TSP, scheduling) and
bounded integer strings (reactor-core zone enrichments).  A
:class:`GenomeSpec` bundles sampling, validation and repair for one such
representation so operators and engines stay representation-agnostic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "GenomeSpec",
    "BinarySpec",
    "RealVectorSpec",
    "PermutationSpec",
    "IntegerVectorSpec",
]


class GenomeSpec(abc.ABC):
    """Abstract description of one chromosome representation."""

    #: number of genes in the chromosome
    length: int

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one uniformly random genome."""

    @abc.abstractmethod
    def is_valid(self, genome: np.ndarray) -> bool:
        """Check that ``genome`` lies in the representation's domain."""

    def repair(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Project an out-of-domain genome back into the domain.

        Default implementation returns the genome unchanged; bounded
        representations override this with clipping / re-normalisation.
        """
        return genome

    def sample_population(self, rng: np.random.Generator, n: int) -> list[np.ndarray]:
        """Draw ``n`` independent random genomes."""
        return [self.sample(rng) for _ in range(n)]


@dataclass(frozen=True)
class BinarySpec(GenomeSpec):
    """Fixed-length bit string; the survey's 'mostly binary' chromosome.

    ``density`` biases initial sampling: each bit is 1 with that
    probability (0.5 = classic uniform).  Sparse-solution problems such as
    large-scale feature selection initialise at low density so the GA
    grows masks instead of pruning from 50%.
    """

    length: int
    density: float = 0.5

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"binary genome length must be positive, got {self.length}")
        if not 0.0 < self.density < 1.0:
            raise ValueError(f"density must be in (0,1), got {self.density}")

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return (rng.random(self.length) < self.density).astype(np.int8)

    def is_valid(self, genome: np.ndarray) -> bool:
        return (
            genome.shape == (self.length,)
            and bool(np.all((genome == 0) | (genome == 1)))
        )

    def repair(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.clip(np.rint(genome), 0, 1).astype(np.int8)


@dataclass(frozen=True)
class RealVectorSpec(GenomeSpec):
    """Real-valued vector with per-gene (or scalar) box bounds."""

    length: int
    lower: float | np.ndarray = 0.0
    upper: float | np.ndarray = 1.0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"real genome length must be positive, got {self.length}")
        lo, hi = self.bounds()
        if np.any(lo >= hi):
            raise ValueError("lower bounds must be strictly below upper bounds")

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Broadcast bounds to full-length float arrays."""
        lo = np.broadcast_to(np.asarray(self.lower, dtype=float), (self.length,))
        hi = np.broadcast_to(np.asarray(self.upper, dtype=float), (self.length,))
        return lo, hi

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        lo, hi = self.bounds()
        return rng.uniform(lo, hi)

    def is_valid(self, genome: np.ndarray) -> bool:
        if genome.shape != (self.length,):
            return False
        lo, hi = self.bounds()
        return bool(np.all(genome >= lo) and np.all(genome <= hi))

    def repair(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        lo, hi = self.bounds()
        return np.clip(genome.astype(float), lo, hi)

    @property
    def span(self) -> np.ndarray:
        lo, hi = self.bounds()
        return hi - lo


@dataclass(frozen=True)
class PermutationSpec(GenomeSpec):
    """Permutation of ``0..length-1`` (tours, schedules, orderings)."""

    length: int

    def __post_init__(self) -> None:
        if self.length <= 1:
            raise ValueError(f"permutation length must exceed 1, got {self.length}")

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.permutation(self.length).astype(np.int64)

    def is_valid(self, genome: np.ndarray) -> bool:
        return (
            genome.shape == (self.length,)
            and bool(np.array_equal(np.sort(genome), np.arange(self.length)))
        )

    def repair(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Rebuild a valid permutation preserving the relative order of the
        first occurrence of each valid city and appending missing ones."""
        seen: set[int] = set()
        out: list[int] = []
        for g in np.asarray(genome, dtype=np.int64):
            v = int(g)
            if 0 <= v < self.length and v not in seen:
                seen.add(v)
                out.append(v)
        missing = [v for v in range(self.length) if v not in seen]
        rng.shuffle(missing)
        out.extend(missing)
        return np.asarray(out[: self.length], dtype=np.int64)


@dataclass(frozen=True)
class IntegerVectorSpec(GenomeSpec):
    """Bounded integer string (e.g. reactor zone enrichment indices)."""

    length: int
    low: int = 0
    high: int = 1  # inclusive

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"integer genome length must be positive, got {self.length}")
        if self.low > self.high:
            raise ValueError(f"low ({self.low}) must not exceed high ({self.high})")

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(self.low, self.high + 1, size=self.length, dtype=np.int64)

    def is_valid(self, genome: np.ndarray) -> bool:
        return (
            genome.shape == (self.length,)
            and bool(np.all(genome >= self.low) and np.all(genome <= self.high))
        )

    def repair(self, genome: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.clip(np.rint(genome), self.low, self.high).astype(np.int64)

    @property
    def cardinality(self) -> int:
        """Number of distinct values one gene can take."""
        return self.high - self.low + 1
