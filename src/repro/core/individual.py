"""Individuals: a genome plus its (lazy) fitness and bookkeeping metadata.

The survey defines an *individual* as a chromosome whose quality is measured
by a fitness function; parallel models additionally track provenance (which
deme an immigrant came from) and age (for steady-state replacement).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Individual", "better", "best_of", "worst_of", "sort_by_fitness"]

_id_counter = itertools.count()


@dataclass
class Individual:
    """One member of a population.

    Attributes
    ----------
    genome:
        The chromosome, always a 1-D :class:`numpy.ndarray`.
    fitness:
        ``None`` until evaluated.  Raw problem value; direction of
        improvement is carried separately (``maximize`` flags).
    birth_generation:
        Generation index at which the individual was created.
    origin:
        Free-form provenance tag — e.g. ``"init"``, ``"cx"``, ``"mut"``,
        ``"migrant:3"`` for an immigrant from deme 3.
    """

    genome: np.ndarray
    fitness: float | None = None
    birth_generation: int = 0
    origin: str = "init"
    attrs: dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_id_counter))

    def __setattr__(self, name: str, value: Any) -> None:
        # Fitness flows straight into selection arithmetic; a NaN there
        # silently wins every np.argmax tournament, so reject non-finite
        # values at the source instead of corrupting selection later.
        if name == "fitness" and value is not None and not math.isfinite(value):
            raise ValueError(
                f"fitness must be finite or None, got {value!r} "
                f"(individual uid={getattr(self, 'uid', '?')})"
            )
        super().__setattr__(name, value)

    @property
    def evaluated(self) -> bool:
        return self.fitness is not None

    def copy(self, *, origin: str | None = None) -> "Individual":
        """Deep-copy the genome; fitness and attrs are carried over."""
        return Individual(
            genome=self.genome.copy(),
            fitness=self.fitness,
            birth_generation=self.birth_generation,
            origin=self.origin if origin is None else origin,
            attrs=dict(self.attrs),
        )

    def invalidate(self) -> None:
        """Mark the fitness stale (call after mutating the genome)."""
        self.fitness = None

    def require_fitness(self) -> float:
        if self.fitness is None:
            raise ValueError(f"individual {self.uid} has not been evaluated")
        return self.fitness

    def __repr__(self) -> str:  # compact, genome elided for large chromosomes
        g = np.array2string(self.genome, threshold=8)
        return f"Individual(uid={self.uid}, fitness={self.fitness}, genome={g})"


def better(a: Individual, b: Individual, maximize: bool) -> Individual:
    """Return the fitter of two evaluated individuals (ties go to ``a``)."""
    fa, fb = a.require_fitness(), b.require_fitness()
    if maximize:
        return a if fa >= fb else b
    return a if fa <= fb else b


def best_of(individuals: list[Individual], maximize: bool) -> Individual:
    """Best evaluated individual of a non-empty sequence."""
    if not individuals:
        raise ValueError("cannot take best of empty sequence")
    key = (lambda i: i.require_fitness()) if maximize else (lambda i: -i.require_fitness())
    return max(individuals, key=key)


def worst_of(individuals: list[Individual], maximize: bool) -> Individual:
    """Worst evaluated individual of a non-empty sequence."""
    return best_of(individuals, not maximize)


def sort_by_fitness(
    individuals: list[Individual], maximize: bool
) -> list[Individual]:
    """Individuals sorted best-first (stable)."""
    return sorted(
        individuals,
        key=lambda i: i.require_fitness(),
        reverse=maximize,
    )
