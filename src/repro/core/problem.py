"""The Problem abstraction: fitness function + genome spec + direction.

"The chromosome representation could be evaluated by a *fitness* function.
The fitness equals to the quality of an individual …" — a
:class:`Problem` packages that fitness function with the representation it
expects and the direction of improvement, plus an optional known optimum so
experiments can measure *efficacy* (the survey's term for hit rate in
finding a solution).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from .genome import GenomeSpec

__all__ = ["Problem", "CountingProblem", "FitnessBudgetExceeded"]


class Problem(abc.ABC):
    """One optimisation problem.

    Subclasses set :attr:`spec`, :attr:`maximize` and implement
    :meth:`evaluate`.  ``optimum`` (the best achievable fitness) and
    ``target`` (fitness at which we declare success) are optional but enable
    efficacy and evaluations-to-solution metrics.
    """

    spec: GenomeSpec
    maximize: bool = True
    #: best achievable fitness, if known
    optimum: float | None = None
    #: success threshold; defaults to ``optimum`` when unset
    target: float | None = None

    @abc.abstractmethod
    def evaluate(self, genome: np.ndarray) -> float:
        """Fitness of one genome (pure; no side effects)."""

    # -- bulk evaluation -------------------------------------------------------
    def evaluate_many(self, genomes: Sequence[np.ndarray]) -> list[float]:
        """Evaluate a batch; override for vectorised problems."""
        return [self.evaluate(g) for g in genomes]

    # -- success tests ---------------------------------------------------------
    @property
    def success_threshold(self) -> float | None:
        return self.target if self.target is not None else self.optimum

    def is_solved(self, fitness: float, tol: float = 1e-9) -> bool:
        """Whether ``fitness`` meets the success threshold (within ``tol``)."""
        thr = self.success_threshold
        if thr is None:
            return False
        if self.maximize:
            return fitness >= thr - tol
        return fitness <= thr + tol

    def is_improvement(self, a: float, b: float) -> bool:
        """Whether fitness ``a`` beats fitness ``b``."""
        return a > b if self.maximize else a < b

    @property
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.name}(length={self.spec.length}, maximize={self.maximize})"


class FitnessBudgetExceeded(RuntimeError):
    """Raised by :class:`CountingProblem` when the evaluation budget runs out."""


class CountingProblem(Problem):
    """Wrapper that counts evaluations and optionally enforces a budget.

    Parallel experiments compare algorithms by *evaluations to solution* —
    the machine-independent cost measure the super-linear-speedup literature
    (Alba 2002) uses — so exact counting lives here rather than scattered
    through engines.
    """

    def __init__(self, inner: Problem, budget: int | None = None) -> None:
        self.inner = inner
        self.spec = inner.spec
        self.maximize = inner.maximize
        self.optimum = inner.optimum
        self.target = inner.target
        self.budget = budget
        self.evaluations = 0

    def evaluate(self, genome: np.ndarray) -> float:
        if self.budget is not None and self.evaluations >= self.budget:
            raise FitnessBudgetExceeded(
                f"budget of {self.budget} evaluations exhausted"
            )
        self.evaluations += 1
        return self.inner.evaluate(genome)

    def evaluate_many(self, genomes: Sequence[np.ndarray]) -> list[float]:
        if self.budget is not None and self.evaluations + len(genomes) > self.budget:
            raise FitnessBudgetExceeded(
                f"budget of {self.budget} evaluations exhausted"
            )
        self.evaluations += len(genomes)
        return self.inner.evaluate_many(genomes)

    def reset(self) -> None:
        self.evaluations = 0

    @property
    def name(self) -> str:
        return f"Counting({self.inner.name})"
