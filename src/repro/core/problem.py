"""The Problem abstraction: fitness function + genome spec + direction.

"The chromosome representation could be evaluated by a *fitness* function.
The fitness equals to the quality of an individual …" — a
:class:`Problem` packages that fitness function with the representation it
expects and the direction of improvement, plus an optional known optimum so
experiments can measure *efficacy* (the survey's term for hit rate in
finding a solution).
"""

from __future__ import annotations

import abc
import threading
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

from ..obs.session import current_obs
from .genome import GenomeSpec

__all__ = [
    "Problem",
    "CountingProblem",
    "FitnessBudgetExceeded",
    "stack_genomes",
    "batch_evaluation_enabled",
    "use_batch_evaluation",
    "batch_evaluation",
    "evaluations_observed",
]

# process-wide count of genomes evaluated through the bulk path, for perf
# telemetry only (the sweep harness diffs it around a trial); engines route
# fitness through evaluate_many, so this tracks the dominant cost driver
_EVALS_OBSERVED = 0


def evaluations_observed() -> int:
    """Total bulk-path fitness evaluations in this process so far."""
    return _EVALS_OBSERVED


# The vectorized fast path is on by default; tests and determinism audits
# flip it off to prove the scalar loop produces bit-identical results.
_BATCH_ENABLED = True


def batch_evaluation_enabled() -> bool:
    """Whether ``evaluate_many`` routes through ``evaluate_batch``."""
    return _BATCH_ENABLED


def use_batch_evaluation(enabled: bool) -> None:
    """Globally enable/disable the vectorized evaluation fast path."""
    global _BATCH_ENABLED
    _BATCH_ENABLED = bool(enabled)


@contextmanager
def batch_evaluation(enabled: bool) -> Iterator[None]:
    """Temporarily force the fast path on or off (scalar-vs-batch audits)."""
    global _BATCH_ENABLED
    prev = _BATCH_ENABLED
    _BATCH_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _BATCH_ENABLED = prev


def stack_genomes(genomes: Sequence[np.ndarray] | np.ndarray) -> np.ndarray | None:
    """Stack a homogeneous batch of 1-D genomes into one ``(n, L)`` array.

    Returns ``None`` when the batch cannot be stacked (empty, ragged shapes
    or mixed dtypes), in which case callers fall back to the scalar loop.
    A 2-D array passes through unchanged (already stacked).
    """
    if isinstance(genomes, np.ndarray):
        return genomes if genomes.ndim == 2 else None
    if not len(genomes):
        return None
    first = genomes[0]
    if not isinstance(first, np.ndarray) or first.ndim != 1:
        return None
    shape, dtype = first.shape, first.dtype
    for g in genomes:
        if not isinstance(g, np.ndarray) or g.shape != shape or g.dtype != dtype:
            return None
    return np.stack(genomes)


class Problem(abc.ABC):
    """One optimisation problem.

    Subclasses set :attr:`spec`, :attr:`maximize` and implement
    :meth:`evaluate`.  ``optimum`` (the best achievable fitness) and
    ``target`` (fitness at which we declare success) are optional but enable
    efficacy and evaluations-to-solution metrics.
    """

    spec: GenomeSpec
    maximize: bool = True
    #: best achievable fitness, if known
    optimum: float | None = None
    #: success threshold; defaults to ``optimum`` when unset
    target: float | None = None

    @abc.abstractmethod
    def evaluate(self, genome: np.ndarray) -> float:
        """Fitness of one genome (pure; no side effects)."""

    # -- bulk evaluation -------------------------------------------------------
    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        """Fitnesses of a stacked ``(n, L)`` batch as a float array.

        The contract (see ``docs/batch_evaluation.md``): results must be
        **bit-identical** to calling :meth:`evaluate` row by row — the
        deterministic-simulation digests depend on it.  The default
        implementation is exactly that scalar loop; benchmark problems
        override it with NumPy-vectorized kernels.
        """
        return np.asarray([self.evaluate(g) for g in genomes], dtype=float)

    def evaluate_many(self, genomes: Sequence[np.ndarray] | np.ndarray) -> list[float]:
        """Evaluate a batch, routing through :meth:`evaluate_batch` when the
        genomes stack into one homogeneous 2-D array (the fast path)."""
        global _EVALS_OBSERVED
        _EVALS_OBSERVED += len(genomes)
        session = current_obs()
        if session is not None:
            session.metrics.counter("eval.evaluations_observed").inc(len(genomes))
        if _BATCH_ENABLED:
            batch = stack_genomes(genomes)
            if batch is not None:
                return [float(f) for f in self.evaluate_batch(batch)]
        return [self.evaluate(g) for g in genomes]

    # -- success tests ---------------------------------------------------------
    @property
    def success_threshold(self) -> float | None:
        return self.target if self.target is not None else self.optimum

    def is_solved(self, fitness: float, tol: float = 1e-9) -> bool:
        """Whether ``fitness`` meets the success threshold (within ``tol``)."""
        thr = self.success_threshold
        if thr is None:
            return False
        if self.maximize:
            return fitness >= thr - tol
        return fitness <= thr + tol

    def is_improvement(self, a: float, b: float) -> bool:
        """Whether fitness ``a`` beats fitness ``b``."""
        return a > b if self.maximize else a < b

    @property
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.name}(length={self.spec.length}, maximize={self.maximize})"


class FitnessBudgetExceeded(RuntimeError):
    """Raised by :class:`CountingProblem` when the evaluation budget runs out."""


class CountingProblem(Problem):
    """Wrapper that counts evaluations and optionally enforces a budget.

    Parallel experiments compare algorithms by *evaluations to solution* —
    the machine-independent cost measure the super-linear-speedup literature
    (Alba 2002) uses — so exact counting lives here rather than scattered
    through engines.

    Counting is thread-safe (unchunked thread executors hit ``evaluate``
    concurrently) and the budget is only charged for evaluations that
    actually complete: an inner evaluation that raises refunds its
    reservation.
    """

    def __init__(self, inner: Problem, budget: int | None = None) -> None:
        self.inner = inner
        self.spec = inner.spec
        self.maximize = inner.maximize
        self.optimum = inner.optimum
        self.target = inner.target
        self.budget = budget
        self.evaluations = 0
        self._lock = threading.Lock()

    # locks are unpicklable; recreate on the other side of a process hop
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- budget accounting -----------------------------------------------------
    def reserve(self, n: int) -> None:
        """Atomically charge ``n`` evaluations against the budget.

        Raises :class:`FitnessBudgetExceeded` (charging nothing) when the
        budget cannot cover them.  Executors that farm work to processes
        call this driver-side so worker-side counts cannot be lost.
        """
        with self._lock:
            if self.budget is not None and self.evaluations + n > self.budget:
                raise FitnessBudgetExceeded(
                    f"budget of {self.budget} evaluations exhausted"
                )
            self.evaluations += n

    def refund(self, n: int) -> None:
        """Return ``n`` reserved evaluations (the inner evaluation failed)."""
        with self._lock:
            self.evaluations -= n

    def evaluate(self, genome: np.ndarray) -> float:
        self.reserve(1)
        try:
            return self.inner.evaluate(genome)
        except BaseException:
            self.refund(1)
            raise

    def evaluate_many(self, genomes: Sequence[np.ndarray] | np.ndarray) -> list[float]:
        n = len(genomes)
        self.reserve(n)
        try:
            return self.inner.evaluate_many(genomes)
        except BaseException:
            self.refund(n)
            raise

    def evaluate_batch(self, genomes: np.ndarray) -> np.ndarray:
        n = len(genomes)
        self.reserve(n)
        try:
            return self.inner.evaluate_batch(genomes)
        except BaseException:
            self.refund(n)
            raise

    def reset(self) -> None:
        with self._lock:
            self.evaluations = 0

    @property
    def name(self) -> str:
        return f"Counting({self.inner.name})"
