"""Engine checkpointing: save/resume long evolutionary runs.

Gagné's *transparency/robustness* requirements apply to the driver process
too: a cluster run that dies at generation 900 of 1000 should resume, not
restart.  Engines (and island ensembles, which are lists of engines) are
plain Python objects over NumPy state, so checkpoints are pickles of a
narrow, versioned snapshot — populations, RNG state, counters — rather
than of whole engine objects (which would drag problem closures along).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from .callbacks import GenerationRecord
from .engine import EvolutionEngine
from .individual import Individual
from .population import Population

__all__ = ["EngineSnapshot", "snapshot_engine", "restore_engine", "save_checkpoint", "load_checkpoint"]

# v2: adds best-individual provenance (birth_generation, origin) and the
# History records, so resumed runs report the same trajectory they lived
# v3: adds per-individual `origins`, so a resumed population keeps its
# provenance tags instead of reporting every member as freshly initialized
_FORMAT_VERSION = 3
_OLDEST_SUPPORTED_VERSION = 2


@dataclass
class EngineSnapshot:
    """Pickled engine state (not the engine object itself)."""

    version: int
    generation: int
    evaluations: int
    stagnant_generations: int
    genomes: list[np.ndarray]
    fitnesses: list[float]
    birth_generations: list[int]
    best_genome: np.ndarray
    best_fitness: float
    rng_state: dict[str, Any]
    best_birth_generation: int = 0
    best_origin: str = "init"
    history_records: list[GenerationRecord] = field(default_factory=list)
    # v3+ — absent (None after unpickling) in v2 files; restore falls back
    # to the Individual default origin for every member
    origins: list[str] | None = None


def snapshot_engine(engine: EvolutionEngine) -> EngineSnapshot:
    """Capture everything needed to resume ``engine`` deterministically."""
    if engine.population is None:
        raise ValueError("cannot snapshot an uninitialised engine")
    best = engine.best_so_far
    return EngineSnapshot(
        version=_FORMAT_VERSION,
        generation=engine.state.generation,
        evaluations=engine.state.evaluations,
        stagnant_generations=engine.state.stagnant_generations,
        genomes=[ind.genome.copy() for ind in engine.population],
        fitnesses=[ind.require_fitness() for ind in engine.population],
        birth_generations=[ind.birth_generation for ind in engine.population],
        best_genome=best.genome.copy(),
        best_fitness=best.require_fitness(),
        rng_state=engine.rng.bit_generator.state,
        best_birth_generation=best.birth_generation,
        best_origin=best.origin,
        history_records=list(engine.history.records),
        origins=[ind.origin for ind in engine.population],
    )


def restore_engine(engine: EvolutionEngine, snapshot: EngineSnapshot) -> None:
    """Load ``snapshot`` into a freshly constructed engine.

    The engine must wrap the same problem/config; resuming then continues
    the exact trajectory the snapshotted run would have taken, and the
    engine's :class:`~repro.core.callbacks.History` picks up exactly where
    the snapshotted run's left off (pre-restore records are discarded).
    """
    if not _OLDEST_SUPPORTED_VERSION <= snapshot.version <= _FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {snapshot.version} not in supported range "
            f"[{_OLDEST_SUPPORTED_VERSION}, {_FORMAT_VERSION}]"
        )
    # v2 pickles predate per-member provenance: getattr because unpickling
    # restores __dict__ directly, so the field is missing, not defaulted
    origins = getattr(snapshot, "origins", None)
    if origins is None:
        origins = ["init"] * len(snapshot.genomes)
    if len(origins) != len(snapshot.genomes):
        raise ValueError(
            f"checkpoint has {len(origins)} origins for {len(snapshot.genomes)} genomes"
        )
    individuals = []
    for genome, fitness, birth, origin in zip(
        snapshot.genomes, snapshot.fitnesses, snapshot.birth_generations, origins
    ):
        ind = Individual(genome=genome.copy(), birth_generation=birth, origin=origin)
        ind.fitness = fitness
        individuals.append(ind)
    engine.population = Population(individuals, maximize=engine.problem.maximize)
    engine.state.generation = snapshot.generation
    engine.state.evaluations = snapshot.evaluations
    engine.state.stagnant_generations = snapshot.stagnant_generations
    engine.state.best_fitness = snapshot.best_fitness
    engine.state.maximize = engine.problem.maximize
    best = Individual(
        genome=snapshot.best_genome.copy(),
        birth_generation=snapshot.best_birth_generation,
        origin=snapshot.best_origin,
    )
    best.fitness = snapshot.best_fitness
    engine._best_so_far = best
    engine.history.records[:] = list(snapshot.history_records)
    engine.rng.bit_generator.state = snapshot.rng_state


def save_checkpoint(engine: EvolutionEngine, path: str | Path) -> Path:
    """Snapshot ``engine`` to ``path`` (atomic-ish: write then rename)."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        pickle.dump(snapshot_engine(engine), fh, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.rename(path)
    return path


def load_checkpoint(engine: EvolutionEngine, path: str | Path) -> EvolutionEngine:
    """Restore ``engine`` in place from ``path``; returns the engine."""
    with open(path, "rb") as fh:
        snapshot = pickle.load(fh)
    if not isinstance(snapshot, EngineSnapshot):
        raise ValueError(f"{path} does not contain an EngineSnapshot")
    restore_engine(engine, snapshot)
    return engine
