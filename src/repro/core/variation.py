"""Variation pipeline: selection-crossover-mutation as reusable functions.

"In PGA, there is always a selection-crossover-mutation cycle as in GAs"
(survey §1.1).  Sequential engines, island demes, cellular cells and
simulated master-slave farms all produce offspring through these helpers,
so the cycle is implemented exactly once.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .config import GAConfig
from .genome import GenomeSpec
from .individual import Individual

__all__ = ["offspring_pair", "make_offspring"]


def offspring_pair(
    rng: np.random.Generator,
    config: GAConfig,
    spec: GenomeSpec,
    parent_a: Individual,
    parent_b: Individual,
    *,
    generation: int = 0,
) -> tuple[Individual, Individual]:
    """Recombine (with probability) and mutate (with probability) one pair.

    Parents are never modified; children are unevaluated.
    """
    if config.crossover is None or config.mutation is None:
        raise ValueError("config operators unresolved; call config.resolved_for(spec)")
    if rng.random() < config.crossover_prob:
        ga, gb = config.crossover(rng, parent_a.genome, parent_b.genome)
        origin = "cx"
    else:
        ga, gb = parent_a.genome.copy(), parent_b.genome.copy()
        origin = "clone"
    children = []
    for g in (ga, gb):
        if rng.random() < config.mutation_prob:
            g = config.mutation(rng, g)
            child_origin = origin + "+mut"
        else:
            child_origin = origin
        g = spec.repair(g, rng)
        children.append(
            Individual(genome=g, birth_generation=generation, origin=child_origin)
        )
    return children[0], children[1]


def make_offspring(
    rng: np.random.Generator,
    config: GAConfig,
    spec: GenomeSpec,
    parents: Sequence[Individual],
    count: int,
    *,
    generation: int = 0,
) -> list[Individual]:
    """Produce exactly ``count`` unevaluated offspring from a parent pool.

    Parents are consumed pairwise in order; the pool wraps around if it is
    smaller than needed.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count and len(parents) < 2:
        raise ValueError("need at least two parents to produce offspring")
    out: list[Individual] = []
    i = 0
    while len(out) < count:
        a = parents[i % len(parents)]
        b = parents[(i + 1) % len(parents)]
        ca, cb = offspring_pair(rng, config, spec, a, b, generation=generation)
        out.extend((ca, cb))
        i += 2
    return out[:count]
