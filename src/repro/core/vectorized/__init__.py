"""``repro.core.vectorized`` — array-backed variation fast path.

PR 2 vectorized fitness *evaluation*; this package vectorizes the other
half of every generation: the selection-crossover-mutation cycle the
survey puts at the heart of all (P)GAs ("there is always a
selection-crossover-mutation cycle as in GAs", §1.1).  Instead of
threading one :class:`~repro.core.individual.Individual` at a time
through Python-object operator calls, the fast path works on an
``(n, L)`` genome matrix and applies each operator to whole offspring
blocks with per-row probability masks.

Layout
------
:mod:`~repro.core.vectorized.population`
    :class:`ArrayPopulation` — the array-backed representation,
    losslessly convertible to/from :class:`~repro.core.population.Population`.
    This is the object boundary, the one module allowed to loop over
    individuals.
:mod:`~repro.core.vectorized.kernels`
    Batched NumPy kernels: index-returning selection, block crossover,
    block mutation, plus the operator → kernel registries.  Loop-free by
    contract (enforced by ``scripts/check_engine_contract.py``).
:mod:`~repro.core.vectorized.variation`
    :func:`vector_offspring` — the whole cycle on parent blocks,
    producing *exactly* the requested offspring count.  Loop-free by the
    same contract.

The fast path is opt-in via ``GAConfig(vectorized_variation=True)`` and
is distributionally — not bit-for-bit — equivalent to the scalar cycle:
it draws random numbers in blocks, so rng streams diverge while operator
semantics (cut distributions, per-gene rates, selection pressure) match.
With the toggle off, nothing here runs and every fingerprint is
byte-identical to the scalar implementation.
"""

from .kernels import (
    crossover_kernel,
    mutation_kernel,
    selection_kernel,
    supports_vectorized_variation,
)
from .population import ArrayPopulation
from .variation import vector_offspring

__all__ = [
    "ArrayPopulation",
    "crossover_kernel",
    "mutation_kernel",
    "selection_kernel",
    "supports_vectorized_variation",
    "vector_offspring",
]
