"""Batched NumPy kernels for selection, crossover and mutation.

Each selection kernel mirrors one operator from
:mod:`repro.core.operators.selection` but takes a fitness *vector* and
returns an index array instead of a list of individuals; where the
scalar operator already draws its randomness in one block (tournament,
roulette, rank) the kernel consumes the rng stream identically, so the
two paths pick literally the same parents from the same generator state.

Crossover kernels map ``(p, L)`` parent blocks to two ``(p, L)`` child
blocks; mutation kernels map an ``(m, L)`` block to a mutated copy.
They draw per-row (not per-individual-call) randomness, so they are
*distributionally* equivalent to their scalar counterparts: identical
cut-point and mask distributions, different rng stream consumption.

This module is loop-free by contract — no ``for``/``while`` statements
and no comprehensions may appear here (or in
:mod:`repro.core.vectorized.variation`); the rule is enforced by
``scripts/check_engine_contract.py`` so the fast path can never silently
regress to per-individual Python dispatch.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..operators import crossover as cx_ops
from ..operators import mutation as mut_ops
from ..operators import selection as sel_ops
from ..operators.mutation import _per_gene_rate
from ..operators.selection import _minimization_to_weights

__all__ = [
    "tournament_indices",
    "roulette_indices",
    "linear_rank_indices",
    "sus_indices",
    "truncation_indices",
    "boltzmann_indices",
    "random_indices",
    "best_indices",
    "one_point_crossover_batch",
    "two_point_crossover_batch",
    "uniform_crossover_batch",
    "sbx_crossover_batch",
    "arithmetic_crossover_batch",
    "blend_crossover_batch",
    "bit_flip_mutation_batch",
    "gaussian_mutation_batch",
    "uniform_reset_mutation_batch",
    "polynomial_mutation_batch",
    "creep_mutation_batch",
    "swap_mutation_batch",
    "inversion_mutation_batch",
    "selection_kernel",
    "crossover_kernel",
    "mutation_kernel",
    "supports_vectorized_variation",
]


def _check_fitnesses(fitnesses: np.ndarray) -> np.ndarray:
    f = np.asarray(fitnesses, dtype=float)
    if f.ndim != 1 or f.shape[0] == 0:
        raise ValueError(f"fitness vector must be 1-D and non-empty, got shape {f.shape}")
    if not np.all(np.isfinite(f)):
        raise ValueError("non-finite fitness in selection pool")
    return f


# -- selection: index-returning kernels ---------------------------------------

def tournament_indices(
    rng: np.random.Generator,
    fitnesses: np.ndarray,
    n: int,
    maximize: bool,
    *,
    size: int = 2,
) -> np.ndarray:
    """Winners of ``n`` uniform tournaments of ``size`` contestants.

    Consumes the rng exactly like :class:`TournamentSelection`, so a
    kernel call and a scalar call from the same generator state pick the
    same indices.
    """
    f = _check_fitnesses(fitnesses)
    m = f.shape[0]
    k = min(size, m)
    contestants = rng.integers(0, m, size=(n, k))
    scores = f[contestants]
    winners = np.argmax(scores, axis=1) if maximize else np.argmin(scores, axis=1)
    return contestants[np.arange(n), winners]


def roulette_indices(
    rng: np.random.Generator, fitnesses: np.ndarray, n: int, maximize: bool
) -> np.ndarray:
    """Fitness-proportionate draws (min-shift + uniform floor weights)."""
    f = _check_fitnesses(fitnesses)
    probs = _minimization_to_weights(f, maximize)
    return rng.choice(f.shape[0], size=n, replace=True, p=probs)


def linear_rank_indices(
    rng: np.random.Generator,
    fitnesses: np.ndarray,
    n: int,
    maximize: bool,
    *,
    sp: float = 1.7,
) -> np.ndarray:
    """Linear-rank probabilities with selection bias ``sp`` in [1, 2]."""
    f = _check_fitnesses(fitnesses)
    m = f.shape[0]
    order = np.argsort(f) if maximize else np.argsort(-f)
    ranks = np.empty(m, dtype=float)
    ranks[order] = np.arange(m, dtype=float)
    if m > 1:
        probs = (2.0 - sp) / m + 2.0 * ranks * (sp - 1.0) / (m * (m - 1.0))
    else:
        probs = np.ones(1)
    probs = probs / probs.sum()
    return rng.choice(m, size=n, replace=True, p=probs)


def sus_indices(
    rng: np.random.Generator, fitnesses: np.ndarray, n: int, maximize: bool
) -> np.ndarray:
    """Stochastic universal sampling: one spin, ``n`` equal-spaced pointers."""
    f = _check_fitnesses(fitnesses)
    probs = _minimization_to_weights(f, maximize)
    cum = np.cumsum(probs)
    start = rng.random() / n
    pointers = start + np.arange(n) / n
    idx = np.searchsorted(cum, pointers, side="right")
    idx = np.clip(idx, 0, f.shape[0] - 1)
    rng.shuffle(idx)  # SUS traditionally shuffles the mating pool
    return idx


def truncation_indices(
    rng: np.random.Generator,
    fitnesses: np.ndarray,
    n: int,
    maximize: bool,
    *,
    fraction: float = 0.5,
) -> np.ndarray:
    """Uniform draws from the top ``fraction`` of the pool."""
    f = _check_fitnesses(fitnesses)
    order = np.argsort(-f) if maximize else np.argsort(f)
    k = max(1, int(np.ceil(fraction * f.shape[0])))
    return order[rng.integers(0, k, size=n)]


def boltzmann_indices(
    rng: np.random.Generator,
    fitnesses: np.ndarray,
    n: int,
    maximize: bool,
    *,
    temperature: float = 1.0,
) -> np.ndarray:
    """Softmax selection with the given temperature (stabilised)."""
    f = _check_fitnesses(fitnesses)
    z = f if maximize else -f
    z = (z - z.max()) / temperature
    w = np.exp(z)
    return rng.choice(f.shape[0], size=n, replace=True, p=w / w.sum())


def random_indices(
    rng: np.random.Generator, fitnesses: np.ndarray, n: int, maximize: bool
) -> np.ndarray:
    """Uniform random parents — the zero-pressure control."""
    f = _check_fitnesses(fitnesses)
    return rng.integers(0, f.shape[0], size=n)


def best_indices(
    rng: np.random.Generator, fitnesses: np.ndarray, n: int, maximize: bool
) -> np.ndarray:
    """The single best index, ``n`` times (maximal-pressure control)."""
    f = _check_fitnesses(fitnesses)
    i = int(np.argmax(f) if maximize else np.argmin(f))
    return np.full(n, i, dtype=np.int64)


# -- crossover: block kernels -------------------------------------------------

def _check_blocks(A: np.ndarray, B: np.ndarray) -> None:
    if A.shape != B.shape:
        raise ValueError(f"parent block shapes differ: {A.shape} vs {B.shape}")
    if A.ndim != 2:
        raise ValueError(f"parent blocks must be 2-D (p, L), got ndim={A.ndim}")


def _distinct_pairs(
    rng: np.random.Generator, p: int, low: int, high: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row uniform distinct ordered pairs from ``[low, high)``.

    ``i`` is uniform over the range; ``j`` is uniform over the range minus
    ``i`` (drawn from a one-smaller range and shifted past ``i``), which is
    exactly the distribution of sampling two values without replacement.
    """
    i = rng.integers(low, high, size=p)
    j = rng.integers(low, high - 1, size=p)
    j = j + (j >= i)
    return np.minimum(i, j), np.maximum(i, j)


def one_point_crossover_batch(
    rng: np.random.Generator, A: np.ndarray, B: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Single cut per pair: same cut distribution as :class:`OnePointCrossover`."""
    _check_blocks(A, B)
    p, L = A.shape
    if L < 2 or p == 0:
        return A.copy(), B.copy()
    cuts = rng.integers(1, L, size=p)
    keep = np.arange(L)[None, :] < cuts[:, None]
    return np.where(keep, A, B), np.where(keep, B, A)


def two_point_crossover_batch(
    rng: np.random.Generator, A: np.ndarray, B: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Segment exchange between two distinct cuts per pair."""
    _check_blocks(A, B)
    p, L = A.shape
    if L < 3:
        return one_point_crossover_batch(rng, A, B)
    if p == 0:
        return A.copy(), B.copy()
    lo, hi = _distinct_pairs(rng, p, 1, L)
    cols = np.arange(L)[None, :]
    swap = (cols >= lo[:, None]) & (cols < hi[:, None])
    return np.where(swap, B, A), np.where(swap, A, B)


def uniform_crossover_batch(
    rng: np.random.Generator,
    A: np.ndarray,
    B: np.ndarray,
    *,
    swap_prob: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-gene coin-flip exchange over the whole block."""
    _check_blocks(A, B)
    swap = rng.random(A.shape) < swap_prob
    return np.where(swap, B, A), np.where(swap, A, B)


def sbx_crossover_batch(
    rng: np.random.Generator,
    A: np.ndarray,
    B: np.ndarray,
    *,
    eta: float = 15.0,
    per_gene_prob: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulated binary crossover on a whole block of real-vector pairs."""
    _check_blocks(A, B)
    u = rng.random(A.shape)
    beta = np.where(
        u <= 0.5,
        (2.0 * u) ** (1.0 / (eta + 1.0)),
        (1.0 / (2.0 * (1.0 - u))) ** (1.0 / (eta + 1.0)),
    )
    apply = rng.random(A.shape) < per_gene_prob
    beta = np.where(apply, beta, 1.0)
    CA = 0.5 * ((1.0 + beta) * A + (1.0 - beta) * B)
    CB = 0.5 * ((1.0 - beta) * A + (1.0 + beta) * B)
    return CA, CB


def arithmetic_crossover_batch(
    rng: np.random.Generator,
    A: np.ndarray,
    B: np.ndarray,
    *,
    alpha: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Whole-arithmetic convex mix, one weight per mating (row)."""
    _check_blocks(A, B)
    p = A.shape[0]
    w = np.full((p, 1), alpha, dtype=float) if alpha is not None else rng.random((p, 1))
    return w * A + (1.0 - w) * B, (1.0 - w) * A + w * B


def blend_crossover_batch(
    rng: np.random.Generator,
    A: np.ndarray,
    B: np.ndarray,
    *,
    alpha: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """BLX-α: both children sampled from the expanded per-gene box."""
    _check_blocks(A, B)
    lo = np.minimum(A, B)
    hi = np.maximum(A, B)
    spread = hi - lo
    low = lo - alpha * spread
    high = hi + alpha * spread
    return rng.uniform(low, high), rng.uniform(low, high)


# -- mutation: block kernels --------------------------------------------------

def _check_block(G: np.ndarray) -> None:
    if G.ndim != 2:
        raise ValueError(f"genome block must be 2-D (m, L), got ndim={G.ndim}")


def bit_flip_mutation_batch(
    rng: np.random.Generator, G: np.ndarray, *, rate: float | None = None
) -> np.ndarray:
    """Independent per-bit flips at ``rate`` (default 1/L) over the block."""
    _check_block(G)
    r = _per_gene_rate(rate, G.shape[1])
    flip = rng.random(G.shape) < r
    return np.where(flip, 1 - G, G)


def gaussian_mutation_batch(
    rng: np.random.Generator,
    G: np.ndarray,
    *,
    sigma: float = 0.1,
    rate: float | None = None,
    lower: float | np.ndarray | None = None,
    upper: float | np.ndarray | None = None,
) -> np.ndarray:
    """Per-gene N(0, sigma) noise at ``rate``, clipped to optional bounds."""
    _check_block(G)
    r = _per_gene_rate(rate, G.shape[1])
    mask = rng.random(G.shape) < r
    noise = rng.normal(0.0, sigma, size=G.shape)
    out = G.astype(float) + np.where(mask, noise, 0.0)
    if lower is not None or upper is not None:
        out = np.clip(
            out,
            -np.inf if lower is None else lower,
            np.inf if upper is None else upper,
        )
    return out


def uniform_reset_mutation_batch(
    rng: np.random.Generator,
    G: np.ndarray,
    *,
    lower: float | np.ndarray,
    upper: float | np.ndarray,
    rate: float | None = None,
) -> np.ndarray:
    """Uniform per-gene resample from the box at ``rate``."""
    _check_block(G)
    m, L = G.shape
    r = _per_gene_rate(rate, L)
    mask = rng.random(G.shape) < r
    lo = np.broadcast_to(np.asarray(lower, dtype=float), (L,))
    hi = np.broadcast_to(np.asarray(upper, dtype=float), (L,))
    fresh = rng.uniform(np.broadcast_to(lo, (m, L)), np.broadcast_to(hi, (m, L)))
    return np.where(mask, fresh, G.astype(float))


def polynomial_mutation_batch(
    rng: np.random.Generator,
    G: np.ndarray,
    *,
    lower: float | np.ndarray,
    upper: float | np.ndarray,
    eta: float = 20.0,
    rate: float | None = None,
) -> np.ndarray:
    """Deb's polynomial mutation over the whole block."""
    _check_block(G)
    m, L = G.shape
    r = _per_gene_rate(rate, L)
    lo = np.broadcast_to(np.asarray(lower, dtype=float), (L,))
    hi = np.broadcast_to(np.asarray(upper, dtype=float), (L,))
    span = hi - lo
    x = G.astype(float)
    mask = rng.random(G.shape) < r
    u = rng.random(G.shape)
    mpow = 1.0 / (eta + 1.0)
    d_lo = (x - lo) / span
    d_hi = (hi - x) / span
    delta = np.where(
        u < 0.5,
        (2.0 * u + (1.0 - 2.0 * u) * (1.0 - d_lo) ** (eta + 1.0)) ** mpow - 1.0,
        1.0 - (2.0 * (1.0 - u) + 2.0 * (u - 0.5) * (1.0 - d_hi) ** (eta + 1.0)) ** mpow,
    )
    out = x + np.where(mask, delta * span, 0.0)
    return np.clip(out, lo, hi)


def creep_mutation_batch(
    rng: np.random.Generator,
    G: np.ndarray,
    *,
    low: int,
    high: int,
    step: int = 1,
    rate: float | None = None,
) -> np.ndarray:
    """Integer creep: +/- small steps at ``rate``, clipped to [low, high]."""
    _check_block(G)
    r = _per_gene_rate(rate, G.shape[1])
    mask = rng.random(G.shape) < r
    steps = rng.integers(1, step + 1, size=G.shape) * rng.choice([-1, 1], size=G.shape)
    out = G.astype(np.int64) + np.where(mask, steps, 0)
    return np.clip(out, low, high)


def swap_mutation_batch(rng: np.random.Generator, G: np.ndarray) -> np.ndarray:
    """Exchange two distinct positions per row (permutation-safe)."""
    _check_block(G)
    m, L = G.shape
    if L < 2 or m == 0:
        return G.copy()
    i, j = _distinct_pairs(rng, m, 0, L)
    out = G.copy()
    rows = np.arange(m)
    out[rows, i], out[rows, j] = G[rows, j], G[rows, i]
    return out


def inversion_mutation_batch(rng: np.random.Generator, G: np.ndarray) -> np.ndarray:
    """Reverse one random segment per row (2-opt style, permutation-safe)."""
    _check_block(G)
    m, L = G.shape
    if L < 2 or m == 0:
        return G.copy()
    i, j = _distinct_pairs(rng, m, 0, L)
    cols = np.broadcast_to(np.arange(L)[None, :], (m, L))
    inside = (cols >= i[:, None]) & (cols <= j[:, None])
    src = np.where(inside, (i + j)[:, None] - cols, cols)
    return np.take_along_axis(G, src, axis=1)


# -- operator → kernel registries ---------------------------------------------
# Each resolver closes over the operator's own parameters, so the kernel
# call sites stay parameter-free: kernel(rng, ...blocks...).

def selection_kernel(
    op,
) -> Callable[[np.random.Generator, np.ndarray, int, bool], np.ndarray] | None:
    """Index-returning kernel for a selection operator, or ``None``.

    Callers with an unsupported (custom) operator fall back to invoking
    the operator itself and mapping the picked individuals to indices —
    see :meth:`EvolutionEngine._select_indices`.
    """
    if isinstance(op, sel_ops.TournamentSelection):
        return lambda rng, f, n, mx: tournament_indices(rng, f, n, mx, size=op.size)
    if isinstance(op, sel_ops.RouletteWheelSelection):
        return roulette_indices
    if isinstance(op, sel_ops.LinearRankSelection):
        return lambda rng, f, n, mx: linear_rank_indices(rng, f, n, mx, sp=op.sp)
    if isinstance(op, sel_ops.StochasticUniversalSampling):
        return sus_indices
    if isinstance(op, sel_ops.TruncationSelection):
        return lambda rng, f, n, mx: truncation_indices(
            rng, f, n, mx, fraction=op.fraction
        )
    if isinstance(op, sel_ops.BoltzmannSelection):
        return lambda rng, f, n, mx: boltzmann_indices(
            rng, f, n, mx, temperature=op.temperature
        )
    if isinstance(op, sel_ops.RandomSelection):
        return random_indices
    if isinstance(op, sel_ops.BestSelection):
        return best_indices
    return None


def crossover_kernel(
    op,
) -> Callable[
    [np.random.Generator, np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]
] | None:
    """Block kernel for a crossover operator, or ``None`` if unsupported."""
    if isinstance(op, cx_ops.OnePointCrossover):
        return one_point_crossover_batch
    if isinstance(op, cx_ops.TwoPointCrossover):
        return two_point_crossover_batch
    if isinstance(op, cx_ops.UniformCrossover):
        return lambda rng, A, B: uniform_crossover_batch(
            rng, A, B, swap_prob=op.swap_prob
        )
    if isinstance(op, cx_ops.SimulatedBinaryCrossover):
        return lambda rng, A, B: sbx_crossover_batch(
            rng, A, B, eta=op.eta, per_gene_prob=op.per_gene_prob
        )
    if isinstance(op, cx_ops.ArithmeticCrossover):
        return lambda rng, A, B: arithmetic_crossover_batch(rng, A, B, alpha=op.alpha)
    if isinstance(op, cx_ops.BlendCrossover):
        return lambda rng, A, B: blend_crossover_batch(rng, A, B, alpha=op.alpha)
    return None


def mutation_kernel(
    op,
) -> Callable[[np.random.Generator, np.ndarray], np.ndarray] | None:
    """Block kernel for a mutation operator, or ``None`` if unsupported."""
    if isinstance(op, mut_ops.BitFlipMutation):
        return lambda rng, G: bit_flip_mutation_batch(rng, G, rate=op.rate)
    if isinstance(op, mut_ops.GaussianMutation):
        return lambda rng, G: gaussian_mutation_batch(
            rng, G, sigma=op.sigma, rate=op.rate, lower=op.lower, upper=op.upper
        )
    if isinstance(op, mut_ops.UniformResetMutation):
        return lambda rng, G: uniform_reset_mutation_batch(
            rng, G, lower=op.lower, upper=op.upper, rate=op.rate
        )
    if isinstance(op, mut_ops.PolynomialMutation):
        return lambda rng, G: polynomial_mutation_batch(
            rng, G, lower=op.lower, upper=op.upper, eta=op.eta, rate=op.rate
        )
    if isinstance(op, mut_ops.CreepMutation):
        return lambda rng, G: creep_mutation_batch(
            rng, G, low=op.low, high=op.high, step=op.step, rate=op.rate
        )
    if isinstance(op, mut_ops.SwapMutation):
        return swap_mutation_batch
    if isinstance(op, mut_ops.InversionMutation):
        return inversion_mutation_batch
    return None


def supports_vectorized_variation(config) -> bool:
    """Whether a resolved :class:`GAConfig` has block kernels for both
    variation operators.  Selection never gates the fast path: unsupported
    selection operators fall back to the scalar operator with an
    index-mapping shim (identical picks, object-level cost ``O(n)``)."""
    return (
        crossover_kernel(config.crossover) is not None
        and mutation_kernel(config.mutation) is not None
    )
