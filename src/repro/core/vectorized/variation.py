"""The whole crossover–mutation–repair cycle on genome blocks.

:func:`vector_offspring` is the batched counterpart of
:func:`repro.core.variation.make_offspring`: same pairwise parent
consumption (with wrap-around), same per-pair crossover probability, same
per-child mutation probability, same origin tags — but applied to whole
``(p, L)`` blocks through the kernels in :mod:`.kernels`, and producing
*exactly* ``count`` children.  The scalar path always builds full pairs
and discards the odd sibling; here the final block is sliced to ``count``
before mutation, so no discarded-sibling work (or rng draws for it) ever
happens.

Loop-free by contract — enforced by ``scripts/check_engine_contract.py``.
"""

from __future__ import annotations

import numpy as np

from .kernels import crossover_kernel, mutation_kernel

__all__ = ["vector_offspring"]


def vector_offspring(
    rng: np.random.Generator,
    config,
    spec,
    parent_genomes: np.ndarray,
    count: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Produce exactly ``count`` unevaluated child genomes from a parent block.

    Parameters
    ----------
    parent_genomes:
        ``(m, L)`` block, consumed pairwise in row order (rows 0+1 mate,
        rows 2+3 mate, …), wrapping around if fewer than ``2*ceil(count/2)``
        rows are supplied — the same pooling rule as the scalar
        ``make_offspring``.
    count:
        Number of children to return; the pair block is sliced to this
        before mutation/repair, so exactly this much work is done.

    Returns
    -------
    ``(children, origins)`` where ``children`` is ``(count, L)`` and
    ``origins`` is a ``(count,)`` object array of ``"cx"``/``"clone"``
    tags with ``"+mut"`` appended where mutation fired.
    """
    if config.crossover is None or config.mutation is None:
        raise ValueError("config operators unresolved; call config.resolved_for(spec)")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    P = np.asarray(parent_genomes)
    if P.ndim != 2:
        raise ValueError(f"parent_genomes must be 2-D (m, L), got ndim={P.ndim}")
    if count == 0:
        return P[:0].copy(), np.empty(0, dtype=object)
    if P.shape[0] < 2:
        raise ValueError("need at least two parent rows to produce offspring")

    cx = crossover_kernel(config.crossover)
    mut = mutation_kernel(config.mutation)
    if cx is None or mut is None:
        raise ValueError(
            f"no batch kernel for {type(config.crossover).__name__} / "
            f"{type(config.mutation).__name__}; gate on supports_vectorized_variation()"
        )

    pairs = (count + 1) // 2
    idx = np.arange(2 * pairs) % P.shape[0]
    A = P[idx[0::2]]
    B = P[idx[1::2]]

    cx_mask = rng.random(pairs) < config.crossover_prob
    CA, CB = A.copy(), B.copy()
    if cx_mask.any():
        ca_x, cb_x = cx(rng, A[cx_mask], B[cx_mask])
        out_dtype = np.result_type(CA.dtype, ca_x.dtype)
        CA = CA.astype(out_dtype, copy=False)
        CB = CB.astype(out_dtype, copy=False)
        CA[cx_mask] = ca_x
        CB[cx_mask] = cb_x

    children = np.empty((2 * pairs, P.shape[1]), dtype=CA.dtype)
    children[0::2] = CA
    children[1::2] = CB
    child_cx = np.repeat(cx_mask, 2)

    # exactly `count` children survive — the odd sibling is dropped *before*
    # mutation, so unlike the scalar path no work is wasted on it
    children = children[:count]
    child_cx = child_cx[:count]

    mut_mask = rng.random(count) < config.mutation_prob
    if mut_mask.any():
        mutated = mut(rng, children[mut_mask])
        out_dtype = np.result_type(children.dtype, mutated.dtype)
        children = children.astype(out_dtype, copy=False)
        children[mut_mask] = mutated

    children = spec.repair_batch(children, rng)

    origins = np.where(child_cx, "cx", "clone").astype(object)
    origins = np.where(mut_mask, origins + "+mut", origins)
    return children, origins
