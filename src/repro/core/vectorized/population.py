"""Array-backed population representation.

:class:`ArrayPopulation` stores a whole population as one ``(n, L)``
genome matrix plus parallel per-member vectors (fitness, evaluated mask,
birth generation, origin tag, attrs).  It converts losslessly to and from
the object representation in :mod:`repro.core.population` — "losslessly"
meaning every field of every :class:`~repro.core.individual.Individual`
round-trips except ``uid``, which is an identity (not state) and is
regenerated on conversion back to objects.

This module is the object boundary of the vectorized package: it is the
one place allowed to loop over individuals, because converting between
Python objects and arrays is inherently per-member work.  The kernels and
the variation cycle (:mod:`.kernels`, :mod:`.variation`) stay loop-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..individual import Individual
from ..population import Population

__all__ = ["ArrayPopulation"]


@dataclass
class ArrayPopulation:
    """A population as parallel arrays.

    Attributes
    ----------
    genomes:
        ``(n, L)`` matrix, one genome per row (shared dtype).
    fitnesses:
        ``(n,)`` float vector; rows where ``evaluated`` is False hold 0.0
        placeholders and must not be read.
    evaluated:
        ``(n,)`` bool mask — the array analogue of ``fitness is None``.
    birth_generations:
        ``(n,)`` int64 vector of creation generations.
    origins:
        ``(n,)`` object array of provenance tags (``"init"``, ``"cx+mut"``, …).
    maximize:
        Direction of improvement, as on :class:`Population`.
    attrs:
        Per-member attribute dicts (usually all empty); kept as a list
        because they are free-form Python objects.
    """

    genomes: np.ndarray
    fitnesses: np.ndarray
    evaluated: np.ndarray
    birth_generations: np.ndarray
    origins: np.ndarray
    maximize: bool = True
    attrs: list[dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = self.genomes.shape[0]
        if self.genomes.ndim != 2:
            raise ValueError(f"genomes must be 2-D (n, L), got ndim={self.genomes.ndim}")
        for name in ("fitnesses", "evaluated", "birth_generations", "origins"):
            vec = getattr(self, name)
            if vec.shape != (n,):
                raise ValueError(f"{name} must have shape ({n},), got {vec.shape}")
        if not self.attrs:
            self.attrs = [{} for _ in range(n)]
        if len(self.attrs) != n:
            raise ValueError(f"attrs must have {n} entries, got {len(self.attrs)}")
        bad = self.evaluated & ~np.isfinite(self.fitnesses)
        if np.any(bad):
            raise ValueError(
                f"non-finite fitness for evaluated members at rows {np.nonzero(bad)[0].tolist()}"
            )

    def __len__(self) -> int:
        return self.genomes.shape[0]

    @property
    def genome_length(self) -> int:
        return self.genomes.shape[1]

    # -- conversions ---------------------------------------------------------
    @classmethod
    def from_individuals(
        cls, individuals: Sequence[Individual], *, maximize: bool = True
    ) -> "ArrayPopulation":
        """Pack individuals into arrays (genomes are copied)."""
        if not individuals:
            raise ValueError("cannot build ArrayPopulation from zero individuals")
        genomes = np.stack([ind.genome for ind in individuals])
        evaluated = np.asarray([ind.evaluated for ind in individuals], dtype=bool)
        fitnesses = np.asarray(
            [ind.fitness if ind.evaluated else 0.0 for ind in individuals], dtype=float
        )
        birth = np.asarray([ind.birth_generation for ind in individuals], dtype=np.int64)
        origins = np.asarray([ind.origin for ind in individuals], dtype=object)
        attrs = [dict(ind.attrs) for ind in individuals]
        return cls(
            genomes=genomes,
            fitnesses=fitnesses,
            evaluated=evaluated,
            birth_generations=birth,
            origins=origins,
            maximize=maximize,
            attrs=attrs,
        )

    @classmethod
    def from_population(cls, population: Population) -> "ArrayPopulation":
        return cls.from_individuals(population.individuals, maximize=population.maximize)

    def to_individuals(self) -> list[Individual]:
        """Unpack into fresh Individuals (new uids; all other state kept)."""
        return [
            Individual(
                genome=self.genomes[i].copy(),
                fitness=float(self.fitnesses[i]) if self.evaluated[i] else None,
                birth_generation=int(self.birth_generations[i]),
                origin=str(self.origins[i]),
                attrs=dict(self.attrs[i]),
            )
            for i in range(len(self))
        ]

    def to_population(self) -> Population:
        return Population(self.to_individuals(), maximize=self.maximize)

    # -- array-level helpers --------------------------------------------------
    def require_fitnesses(self) -> np.ndarray:
        """All fitness values; raises if any member is unevaluated."""
        if not bool(np.all(self.evaluated)):
            missing = np.nonzero(~self.evaluated)[0].tolist()
            raise ValueError(f"unevaluated members at rows {missing}")
        return self.fitnesses

    def best_index(self) -> int:
        f = self.require_fitnesses()
        return int(np.argmax(f) if self.maximize else np.argmin(f))
