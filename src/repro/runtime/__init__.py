"""Real-parallelism executors (threads / processes) behind the evaluator seam."""

from .cache import FitnessCache, MemoizingEvaluator
from .executor import (
    MultiprocessingExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_indices,
)

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "MultiprocessingExecutor",
    "chunk_indices",
    "FitnessCache",
    "MemoizingEvaluator",
]
