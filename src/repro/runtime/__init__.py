"""Engine runtime: executors behind the evaluator seam, and the shared
deme lifecycle every parallel model runs on (:mod:`repro.runtime.deme`)."""

from .cache import FitnessCache, MemoizingEvaluator
from .deme import EpochLoop, RuntimeCapabilities, TimedDemeRuntime, emit_generation
from .executor import (
    MultiprocessingExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_indices,
)

__all__ = [
    "EpochLoop",
    "TimedDemeRuntime",
    "RuntimeCapabilities",
    "emit_generation",
    "SerialExecutor",
    "ThreadExecutor",
    "MultiprocessingExecutor",
    "chunk_indices",
    "FitnessCache",
    "MemoizingEvaluator",
]
