"""Engine runtime: executors behind the evaluator seam, the shared deme
lifecycle every parallel model runs on (:mod:`repro.runtime.deme`), and
the supervised real-process execution layer both process backends share
(:mod:`repro.runtime.resilient` + :mod:`repro.runtime.chaos`)."""

from .cache import FitnessCache, MemoizingEvaluator
from .chaos import ChaosError, ChaosPlan
from .deme import EpochLoop, RuntimeCapabilities, TimedDemeRuntime, emit_generation
from .executor import (
    MultiprocessingExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_indices,
)
from .journal import SweepJournal
from .resilient import (
    PoolStats,
    QuarantinedTask,
    QuarantineError,
    ResilienceConfig,
    SupervisedPool,
    TaskFailure,
    WorkerTaskError,
    backoff_delay,
)
from .sweep import (
    SweepConfig,
    SweepTelemetry,
    Trial,
    TrialCache,
    kernel_digest,
    run_sweep,
    sweep_context,
    trial_digest,
)

__all__ = [
    "Trial",
    "TrialCache",
    "SweepConfig",
    "SweepTelemetry",
    "SweepJournal",
    "run_sweep",
    "sweep_context",
    "kernel_digest",
    "trial_digest",
    "EpochLoop",
    "TimedDemeRuntime",
    "RuntimeCapabilities",
    "emit_generation",
    "SerialExecutor",
    "ThreadExecutor",
    "MultiprocessingExecutor",
    "chunk_indices",
    "FitnessCache",
    "MemoizingEvaluator",
    "ResilienceConfig",
    "SupervisedPool",
    "PoolStats",
    "TaskFailure",
    "QuarantinedTask",
    "QuarantineError",
    "WorkerTaskError",
    "backoff_delay",
    "ChaosPlan",
    "ChaosError",
]
