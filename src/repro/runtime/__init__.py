"""Engine runtime: executors behind the evaluator seam, and the shared
deme lifecycle every parallel model runs on (:mod:`repro.runtime.deme`)."""

from .cache import FitnessCache, MemoizingEvaluator
from .deme import EpochLoop, RuntimeCapabilities, TimedDemeRuntime, emit_generation
from .executor import (
    MultiprocessingExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_indices,
)
from .sweep import (
    SweepConfig,
    SweepTelemetry,
    Trial,
    TrialCache,
    kernel_digest,
    run_sweep,
    sweep_context,
    trial_digest,
)

__all__ = [
    "Trial",
    "TrialCache",
    "SweepConfig",
    "SweepTelemetry",
    "run_sweep",
    "sweep_context",
    "kernel_digest",
    "trial_digest",
    "EpochLoop",
    "TimedDemeRuntime",
    "RuntimeCapabilities",
    "emit_generation",
    "SerialExecutor",
    "ThreadExecutor",
    "MultiprocessingExecutor",
    "chunk_indices",
    "FitnessCache",
    "MemoizingEvaluator",
]
