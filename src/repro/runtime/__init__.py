"""Real-parallelism executors (threads / processes) behind the evaluator seam."""

from .executor import (
    MultiprocessingExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_indices,
)

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "MultiprocessingExecutor",
    "chunk_indices",
]
