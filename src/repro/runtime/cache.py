"""Keyed fitness memo-cache for steady-state and migration-heavy workloads.

Steady-state replacement and migration both re-encounter genomes they have
already paid for: an elite individual survives many generations, a migrant
arrives evaluated at home but invalidated in transit, a crossover of two
converged parents reproduces a parent bit-for-bit.  :class:`FitnessCache`
memoises fitness by genome *content* so those re-encounters cost a hash
lookup instead of an objective call.

The cache is **opt-in**: engines use it only when handed a
:class:`MemoizingEvaluator`, because skipping objective calls changes
``CountingProblem`` evaluation counts (hits are free) and therefore the
evaluations-to-solution bookkeeping the determinism audits fingerprint.
Fitness values themselves are unchanged — problems are pure functions of
the genome — so trajectories are identical, just cheaper.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from ..core.engine import FitnessEvaluator, SerialEvaluator
from ..core.problem import Problem
from ..obs.session import current_obs

__all__ = ["FitnessCache", "MemoizingEvaluator"]


def _genome_key(genome: np.ndarray) -> tuple:
    """Hashable content key: bytes + dtype + shape (rules out collisions
    between e.g. int8 and int64 encodings of the same bits)."""
    return (genome.tobytes(), genome.dtype.str, genome.shape)


class FitnessCache:
    """Bounded LRU map from genome content to fitness.

    Parameters
    ----------
    max_size:
        Entry cap; least-recently-used entries are evicted beyond it.
        ``None`` means unbounded (fine for short runs, not for servers).
    """

    def __init__(self, max_size: int | None = 100_000) -> None:
        if max_size is not None and max_size < 1:
            raise ValueError(f"max_size must be >= 1 or None, got {max_size}")
        self.max_size = max_size
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[tuple, float] = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, genome: np.ndarray) -> float | None:
        key = _genome_key(genome)
        fitness = self._store.get(key)
        session = current_obs()
        if fitness is None:
            self.misses += 1
            if session is not None:
                session.metrics.counter("cache.fitness_misses").inc()
            return None
        self._store.move_to_end(key)
        self.hits += 1
        if session is not None:
            session.metrics.counter("cache.fitness_hits").inc()
        return fitness

    def put(self, genome: np.ndarray, fitness: float) -> None:
        key = _genome_key(genome)
        self._store[key] = float(fitness)
        self._store.move_to_end(key)
        if self.max_size is not None:
            while len(self._store) > self.max_size:
                self._store.popitem(last=False)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MemoizingEvaluator:
    """FitnessEvaluator decorator: answer repeats from the cache, delegate
    only the genuinely new genomes (as one stacked sub-batch) to ``inner``.

    One evaluator memoises exactly one problem: fitness keyed on genome
    alone is only sound against a fixed objective, so the first problem
    seen is pinned and any other problem object is rejected.
    """

    def __init__(
        self,
        inner: FitnessEvaluator | None = None,
        cache: FitnessCache | None = None,
    ) -> None:
        self.inner: FitnessEvaluator = inner if inner is not None else SerialEvaluator()
        self.cache = cache if cache is not None else FitnessCache()
        self._problem: Problem | None = None

    def evaluate(
        self, problem: Problem, genomes: Sequence[np.ndarray] | np.ndarray
    ) -> list[float]:
        if self._problem is None:
            self._problem = problem
        elif problem is not self._problem:
            raise ValueError(
                f"MemoizingEvaluator is pinned to {self._problem.name}; "
                f"got {problem.name} — use one evaluator per problem"
            )
        n = len(genomes)
        out: list[float | None] = [None] * n
        miss_idx: list[int] = []
        for i in range(n):
            cached = self.cache.get(genomes[i])
            if cached is None:
                miss_idx.append(i)
            else:
                out[i] = cached
        if miss_idx:
            misses = [genomes[i] for i in miss_idx]
            fresh = self.inner.evaluate(problem, misses)
            for i, f in zip(miss_idx, fresh):
                out[i] = float(f)
                self.cache.put(genomes[i], float(f))
        return out  # type: ignore[return-value]
