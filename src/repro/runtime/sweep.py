"""Trial-level sweep orchestrator: process fan-out + content-addressed cache.

Every experiment runner (E1–E13) regenerates its tables from a grid of
independent, seeded simulations — the embarrassingly parallel "many
independent runs" workload that honest PGA performance studies demand
(Harada, Alba & Luque).  This module lets a runner declare that grid as
pure :class:`Trial` specs and hands the harness two orthogonal levers:

**Fan-out.**  ``run_sweep`` executes the trials on a ``fork``-server
process pool (the broadcast-once idiom of
:class:`~repro.runtime.executor.MultiprocessingExecutor`: the interpreter
image is forked once, per-trial traffic is one small pickled spec out and
one small result back).  Results are merged back **in declared order**,
so a report built from a parallel sweep is fingerprint-identical to the
serial run — trials must therefore be pure functions of
``(params, seed)`` and return plain picklable data.

**Content-addressed caching.**  Each trial's result can be stored on disk
under a digest of ``(experiment id, fn identity, params, seed, quick
flag, kernel-code digest)``.  The kernel digest hashes every ``*.py``
file of the ``repro`` package, so *any* code edit transparently
invalidates every cached trial, while re-runs after unrelated edits
(docs, tests) are near-instant cache hits.  Entries carry a checksum; a
corrupt entry is detected, discarded and recomputed, never trusted.

Configuration is ambient (:func:`sweep_context`) so the thirteen runners
keep their ``run(quick=False)`` signature; the CLI exposes ``--jobs``,
``--cache-dir`` and ``--no-cache``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import pickle
import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from ..cluster.trace import RETENTION_MODES, trace_retention
from ..obs.export import timeline_doc
from ..obs.session import current_obs, obs_session
from .journal import SweepJournal
from .resilient import (
    QuarantinedTask,
    QuarantineError,
    ResilienceConfig,
    SupervisedPool,
)

__all__ = [
    "Trial",
    "TrialCache",
    "SweepConfig",
    "SweepTelemetry",
    "TrialRecord",
    "run_sweep",
    "sweep_context",
    "current_config",
    "kernel_digest",
    "trial_digest",
    "canonical_params",
]


# -- trial specs -------------------------------------------------------------------


@dataclass(frozen=True)
class Trial:
    """One independent unit of experiment work.

    ``fn`` must be a module-level callable (so it pickles by reference),
    pure given its arguments, and must return plain picklable data —
    numbers, strings, lists/tuples/dicts and small dataclasses of those.

    **Raw-callable trials** (``spec=None``, the compatibility form) invoke
    ``fn(**params)``, plus ``seed=seed`` when a seed is declared.

    **Spec-backed trials** carry one :class:`repro.spec.RunSpec` (or a
    tuple of them) describing the engine run(s); ``fn`` becomes the
    *extraction* function and receives the executed result first:
    ``fn(report, **params)``.  Seeds live inside the specs, so
    ``seed`` is informational (telemetry) and is not passed to ``fn``.
    With ``mode="engine"`` the spec is only *built*, not run —
    ``fn(engine, **params)`` drives the engine itself (stepping loops,
    trace audits, population inspection).

    ``retention`` picks the trace retention mode the trial body runs
    under (see :func:`repro.cluster.trace.trace_retention`).  ``None`` —
    the default — means ``compact``: sweep trials normally consume
    report-level data, so workers keep digests + counts + ``generation``
    events instead of full event lists.  Trials that audit the raw event
    stream post-hoc (e.g. E13's invariant checks) declare
    ``retention="full"``.  The mode never enters the cache key: digests
    and extracted results are retention-invariant by construction.
    """

    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int | None = None
    #: RunSpec | tuple[RunSpec, ...] | None — the declarative run(s)
    spec: Any = None
    #: "report" (execute, pass the result) or "engine" (build, pass the engine)
    mode: str = "report"
    #: trace retention for the trial body; None = the sweep default, "compact"
    retention: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("report", "engine"):
            raise ValueError(f"trial mode must be 'report' or 'engine', got {self.mode!r}")
        if self.retention is not None and self.retention not in RETENTION_MODES:
            raise ValueError(
                f"trial retention must be None or one of {RETENTION_MODES}, "
                f"got {self.retention!r}"
            )

    def call(self) -> Any:
        if self.spec is None:
            kwargs = dict(self.params)
            if self.seed is not None:
                kwargs["seed"] = self.seed
            return self.fn(**kwargs)
        from ..spec import build_run, run_spec

        execute = build_run if self.mode == "engine" else run_spec
        if isinstance(self.spec, tuple):
            built: Any = tuple(execute(s) for s in self.spec)
        else:
            built = execute(self.spec)
        return self.fn(built, **dict(self.params))

    @property
    def fn_id(self) -> str:
        return f"{self.fn.__module__}.{self.fn.__qualname__}"

    @property
    def specs(self) -> tuple[Any, ...]:
        """The trial's RunSpecs (empty for raw-callable trials)."""
        if self.spec is None:
            return ()
        return self.spec if isinstance(self.spec, tuple) else (self.spec,)


# -- cache keys --------------------------------------------------------------------

_KERNEL_DIGEST: str | None = None


def kernel_digest() -> str:
    """sha256 over every ``*.py`` of the ``repro`` package (memoized).

    Part of every trial's cache key: touching any kernel code invalidates
    every cached trial, so the cache can never serve results computed by
    an older implementation.
    """
    global _KERNEL_DIGEST
    if _KERNEL_DIGEST is None:
        root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _KERNEL_DIGEST = h.hexdigest()
    return _KERNEL_DIGEST


def canonical_params(value: Any, depth: int = 0) -> str:
    """Canonical string form of a trial parameter (stable across processes).

    Follows the same conventions as :mod:`repro.verify.digest`: floats via
    ``repr`` (shortest round-trip form), mappings sorted by key.  Opaque
    objects fall back to a digest of their pickled bytes — sound here
    because the kernel digest already invalidates on any code change.
    """
    if depth > 12:
        raise ValueError("trial params nest too deeply to canonicalise")
    if value is None or isinstance(value, bool):
        return repr(value)
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    if isinstance(value, (np.integer, int)):
        return repr(int(value))
    if isinstance(value, (str, bytes)):
        return repr(value)
    if isinstance(value, np.ndarray):
        return f"ndarray({canonical_params(value.tolist(), depth + 1)},{value.dtype.str})"
    if isinstance(value, Mapping):
        items = ",".join(
            f"{canonical_params(k, depth + 1)}:{canonical_params(v, depth + 1)}"
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical_params(v, depth + 1) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(canonical_params(v, depth + 1) for v in value)) + "}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={canonical_params(getattr(value, f.name), depth + 1)}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return f"<{type(value).__module__}.{type(value).__qualname__}:{hashlib.sha256(blob).hexdigest()}>"


def trial_digest(
    experiment_id: str, trial: Trial, *, quick: bool, kernel: str | None = None
) -> str:
    """Content address of one trial's result.

    Spec-backed trials key on their :class:`repro.spec.RunSpec` content
    digests (plus the extraction fn and its params) — a portable,
    declarative address.  Raw-callable trials keep the compatibility
    fallback: fn identity + canonicalised params (opaque objects digest
    their pickled bytes).  Both include the kernel digest, so any code
    edit invalidates every cached trial either way.
    """
    parts = [
        experiment_id,
        trial.fn_id,
        canonical_params(dict(trial.params)),
        repr(trial.seed),
        repr(bool(quick)),
        kernel if kernel is not None else kernel_digest(),
    ]
    if trial.spec is not None:
        parts.append(trial.mode)
        parts.extend(s.digest() for s in trial.specs)
    blob = "|".join(parts)
    return hashlib.sha256(blob.encode()).hexdigest()


# -- on-disk cache -----------------------------------------------------------------

_MAGIC = b"RSWEEP1\n"


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # PermissionError et al.: it exists, just not ours
        return True
    return True


#: per-process uniquifier for temp names — two stores of the same digest
#: in one process can never collide on their temp file
_TMP_SEQ = itertools.count()


class TrialCache:
    """Content-addressed on-disk store of trial results.

    Layout: ``<root>/<digest[:2]>/<digest[2:]>.pkl``; each entry is a
    magic header, the hex sha256 of the payload, and the pickled payload.
    A short, damaged or tampered entry fails the checksum (or unpickling)
    and is treated as a miss — the trial recomputes and the entry is
    rewritten.  Writes are atomic (unique temp file + rename, unlinked on
    failure), so a crashed writer can at worst leave a corrupt entry,
    never a half-trusted one; temp files orphaned by a *killed* writer
    (no chance to unlink) are swept on the next cache open, guarded by a
    pid-liveness probe so a concurrent writer's live temp survives.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self._sweep_stale_temps()

    def _sweep_stale_temps(self) -> None:
        if not self.root.is_dir():
            return
        for tmp in self.root.glob("*/*.tmp.*"):
            tail = tmp.name.partition(".tmp.")[2]
            try:
                pid = int(tail.split(".", 1)[0])
            except ValueError:
                pid = None
            if pid is None or not _pid_alive(pid):
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest[2:]}.pkl"

    def load(self, digest: str) -> tuple[bool, Any]:
        """``(hit, value)``; corrupt entries count as misses."""
        path = self._path(digest)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return False, None
        try:
            if not blob.startswith(_MAGIC):
                raise ValueError("bad magic")
            checksum = blob[len(_MAGIC) : len(_MAGIC) + 64].decode("ascii")
            payload = blob[len(_MAGIC) + 65 :]
            if blob[len(_MAGIC) + 64 : len(_MAGIC) + 65] != b"\n":
                raise ValueError("bad header")
            if hashlib.sha256(payload).hexdigest() != checksum:
                raise ValueError("checksum mismatch")
            value = pickle.loads(payload)
        except Exception:
            self.corrupt += 1
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def store(self, digest: str, value: Any) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _MAGIC + hashlib.sha256(payload).hexdigest().encode("ascii") + b"\n" + payload
        tmp = path.parent / f"{path.name}.tmp.{os.getpid()}.{next(_TMP_SEQ)}"
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise


# -- telemetry ---------------------------------------------------------------------


@dataclass
class TrialRecord:
    """Per-trial perf telemetry (never part of a result fingerprint)."""

    experiment: str
    fn: str
    seed: int | None
    digest: str
    wall_s: float
    cached: bool
    sim_events: int = 0
    evaluations: int = 0
    #: span count of the trial's child observability session (0 when obs off)
    obs_spans: int = 0
    #: True when this cache hit was journalled by a crashed run of the
    #: same sweep (its wall/sim/eval columns are restored from the journal)
    resumed: bool = False
    #: True when the trial was quarantined as poison after K failed attempts
    quarantined: bool = False


@dataclass
class SweepTelemetry:
    """Collects per-trial and per-sweep perf records into a JSON artifact.

    The artifact (``BENCH_sweep.json`` by convention) is the repo's bench
    trajectory for the experiment suite: wall time per trial, simulated
    events dispatched and bulk fitness evaluations observed, plus cache
    hit/corruption counts per sweep.
    """

    trials: list[TrialRecord] = field(default_factory=list)
    sweeps: list[dict[str, Any]] = field(default_factory=list)
    #: sweep-level observability roll-up (:func:`repro.obs.export.sweep_obs_summary`),
    #: set by the CLI when a session is active; ``None`` keeps the artifact as-is
    obs: dict[str, Any] | None = None
    #: when set, :meth:`flush` rewrites this file — the sweep driver
    #: flushes after every sweep and on KeyboardInterrupt, so a killed
    #: invocation still leaves partial telemetry on disk
    autoflush_path: str | Path | None = None

    def record_sweep(
        self,
        *,
        experiment: str,
        n_trials: int,
        cache_hits: int,
        cache_corrupt: int,
        jobs: int,
        wall_s: float,
        resumed: int = 0,
        quarantined: int = 0,
        interrupted: bool = False,
    ) -> None:
        self.sweeps.append(
            {
                "experiment": experiment,
                "trials": n_trials,
                "cache_hits": cache_hits,
                "cache_corrupt": cache_corrupt,
                "jobs": jobs,
                "wall_s": round(wall_s, 6),
                "resumed": resumed,
                "quarantined": quarantined,
                "interrupted": interrupted,
            }
        )

    def totals(self) -> dict[str, Any]:
        return {
            "trials": len(self.trials),
            "cache_hits": sum(1 for t in self.trials if t.cached),
            "trial_wall_s": round(sum(t.wall_s for t in self.trials), 6),
            "sweep_wall_s": round(sum(s["wall_s"] for s in self.sweeps), 6),
            "sim_events": sum(t.sim_events for t in self.trials),
            "evaluations": sum(t.evaluations for t in self.trials),
        }

    def to_json(self) -> dict[str, Any]:
        doc = {
            "schema": "repro-sweep-bench/v1",
            "host": {
                "platform": platform.platform(),
                "python": platform.python_version(),
                "cpu_count": os.cpu_count(),
            },
            "totals": self.totals(),
            "sweeps": self.sweeps,
            "trials": [dataclasses.asdict(t) for t in self.trials],
        }
        if self.obs is not None:
            doc["obs"] = self.obs
        return doc

    def write(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2) + "\n")

    def flush(self) -> None:
        """Persist partial telemetry to ``autoflush_path`` (no-op unset)."""
        if self.autoflush_path is not None:
            self.write(self.autoflush_path)


# -- ambient configuration ---------------------------------------------------------


@dataclass
class SweepConfig:
    """How ``run_sweep`` executes: process count, cache location, telemetry.

    ``cache_dir=None`` disables the cache (the library default, keeping
    programmatic runs hermetic); the CLI opts into ``.sweep_cache``.

    ``resilience`` is the supervision policy for the fork pool (deadline,
    retry/backoff, chaos plan — :class:`repro.runtime.resilient.ResilienceConfig`);
    the sweep always runs it in quarantine mode, so one poison trial
    cannot abort the rest of the grid.  ``resume=True`` (requires the
    cache) replays the completion journal of a crashed run of the same
    sweep: journalled trials are served from the cache, counted as
    ``resumed``, and their telemetry is restored from the journal.
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    telemetry: SweepTelemetry | None = None
    resilience: ResilienceConfig | None = None
    resume: bool = False


_ACTIVE = SweepConfig()


def current_config() -> SweepConfig:
    return _ACTIVE


@contextmanager
def sweep_context(
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    telemetry: SweepTelemetry | None = None,
    resilience: ResilienceConfig | None = None,
    resume: bool = False,
) -> Iterator[SweepConfig]:
    """Install an ambient :class:`SweepConfig` for the enclosed runners."""
    global _ACTIVE
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    prev = _ACTIVE
    _ACTIVE = SweepConfig(
        jobs=int(jobs),
        cache_dir=cache_dir,
        telemetry=telemetry,
        resilience=resilience,
        resume=bool(resume),
    )
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = prev


# -- execution ---------------------------------------------------------------------


def _execute_indexed(
    job: tuple[int, Trial]
) -> tuple[int, Any, float, int, int, dict[str, Any] | None]:
    """Run one trial (driver- or worker-side), measuring wall time and the
    simulation-kernel / evaluation-stack counters around it.

    When the driver had an ambient observability session open at dispatch
    time (inherited across ``fork``, or simply still ambient on the serial
    path), the trial runs inside its *own* child session whose exported
    timeline doc rides back with the result — a plain-JSON payload that
    crosses the process boundary where a live session object could not.
    The driver folds the docs back in trial-index order, so the merged
    parent timeline is identical no matter how trials interleaved.

    The trial body runs under its declared trace retention (``compact``
    unless the trial says otherwise), on the serial path and in pool
    workers alike — so a worker's pipe payload stays bounded (digests,
    counts and ``generation`` events instead of full event lists) while
    serial and parallel sweeps remain byte-identical.
    """
    from ..cluster import sim as _sim
    from ..core import problem as _problem

    index, trial = job
    ev0 = _problem.evaluations_observed()
    si0 = _sim.events_dispatched()
    obs_doc: dict[str, Any] | None = None
    start = time.perf_counter()
    with trace_retention(trial.retention or "compact"):
        if current_obs() is not None:
            with obs_session(label=f"trial-{index}") as child:
                value = trial.call()
            obs_doc = timeline_doc(child)
        else:
            value = trial.call()
    wall = time.perf_counter() - start
    return (
        index,
        value,
        wall,
        _sim.events_dispatched() - si0,
        _problem.evaluations_observed() - ev0,
        obs_doc,
    )


def run_sweep(
    experiment_id: str,
    trials: Sequence[Trial],
    *,
    quick: bool = False,
    config: SweepConfig | None = None,
) -> list[Any]:
    """Execute ``trials`` and return their results in declared order.

    Cache hits are answered from disk; the remaining trials run serially
    (``jobs == 1``) or on a supervised process pool
    (:class:`repro.runtime.resilient.SupervisedPool`: worker-death
    detection, per-trial deadlines, seeded retry/backoff — see
    ``cfg.resilience``).  The returned list is ordered exactly like
    ``trials`` regardless of completion order, so reports built from it
    are fingerprint-identical across serial, parallel, cached and
    chaos-injected executions.

    Trials that stay poison after every allowed attempt are quarantined:
    all other trials still complete (and are cached/journalled), then a
    :class:`~repro.runtime.resilient.QuarantineError` is raised naming
    them.  ``KeyboardInterrupt`` flushes the journal and telemetry
    before re-raising, so an interrupted sweep loses no absorbed work.
    """
    cfg = config if config is not None else _ACTIVE
    trials = list(trials)
    results: list[Any] = [None] * len(trials)
    cache = TrialCache(cfg.cache_dir) if cfg.cache_dir is not None else None
    telemetry = cfg.telemetry
    sweep_start = time.perf_counter()
    cache_hits = 0
    resumed_trials = 0

    pending: list[int] = []
    digests: list[str | None] = [None] * len(trials)
    if cache is not None:
        kernel = kernel_digest()
        for i, trial in enumerate(trials):
            digests[i] = trial_digest(experiment_id, trial, quick=quick, kernel=kernel)
    journal: SweepJournal | None = None
    prior: dict[str, dict[str, Any]] = {}
    if cache is not None and cfg.resume:
        journal = SweepJournal(
            SweepJournal.path_for(cache.root, experiment_id, digests)
        )
        prior = journal.load()
    for i, trial in enumerate(trials):
        if cache is not None:
            hit, value = cache.load(digests[i])
            if hit:
                results[i] = value
                cache_hits += 1
                rec = prior.get(digests[i])
                if rec is not None:
                    resumed_trials += 1
                if telemetry is not None:
                    telemetry.trials.append(
                        TrialRecord(
                            experiment=experiment_id,
                            fn=trial.fn_id,
                            seed=trial.seed,
                            digest=digests[i][:16],
                            wall_s=float(rec.get("wall_s", 0.0)) if rec else 0.0,
                            cached=True,
                            sim_events=int(rec.get("sim_events", 0)) if rec else 0,
                            evaluations=int(rec.get("evaluations", 0)) if rec else 0,
                            resumed=rec is not None,
                        )
                    )
                continue
        pending.append(i)

    obs_docs: dict[int, dict[str, Any]] = {}

    def _absorb(
        index: int,
        value: Any,
        wall: float,
        sim_events: int,
        evals: int,
        obs_doc: dict[str, Any] | None = None,
    ) -> None:
        results[index] = value
        if cache is not None:
            cache.store(digests[index], value)
        if journal is not None:
            journal.append(
                digests[index],
                {
                    "wall_s": round(wall, 6),
                    "sim_events": sim_events,
                    "evaluations": evals,
                },
            )
        if obs_doc is not None:
            obs_docs[index] = obs_doc
        if telemetry is not None:
            telemetry.trials.append(
                TrialRecord(
                    experiment=experiment_id,
                    fn=trials[index].fn_id,
                    seed=trials[index].seed,
                    digest=(digests[index] or "")[:16],
                    wall_s=round(wall, 6),
                    cached=False,
                    sim_events=sim_events,
                    evaluations=evals,
                    obs_spans=len(obs_doc["spans"]) if obs_doc is not None else 0,
                )
            )

    quarantined: list[QuarantinedTask] = []
    try:
        jobs = min(cfg.jobs, len(pending))
        if jobs > 1:
            resilience = (
                cfg.resilience if cfg.resilience is not None else ResilienceConfig()
            )
            # quarantine mode: one poison trial must not abort the grid
            resilience = dataclasses.replace(resilience, quarantine=True)
            with SupervisedPool(
                _execute_indexed,
                jobs,
                config=resilience,
                label=f"sweep/{experiment_id}",
            ) as pool:
                payloads = [(i, trials[i]) for i in pending]
                batch = pool.run_batch(
                    payloads,
                    keys=pending,  # chaos/backoff key = declared trial index
                    on_result=lambda _slot, out: _absorb(*out),
                )
            for slot, value in zip(pending, batch):
                if isinstance(value, QuarantinedTask):
                    quarantined.append(value)
                    if telemetry is not None:
                        telemetry.trials.append(
                            TrialRecord(
                                experiment=experiment_id,
                                fn=trials[slot].fn_id,
                                seed=trials[slot].seed,
                                digest=(digests[slot] or "")[:16],
                                wall_s=0.0,
                                cached=False,
                                quarantined=True,
                            )
                        )
        else:
            # the serial path runs in-process: chaos plans (worker-only by
            # design) never apply here, which is what makes it the clean
            # reference the chaos runs are compared against
            for i in pending:
                _absorb(*_execute_indexed((i, trials[i])))
    except KeyboardInterrupt:
        # crash-safe exit: everything absorbed so far is already durable
        # (cache entries + journal lines); flush partial telemetry too
        if telemetry is not None:
            telemetry.record_sweep(
                experiment=experiment_id,
                n_trials=len(trials),
                cache_hits=cache_hits,
                cache_corrupt=cache.corrupt if cache is not None else 0,
                jobs=cfg.jobs,
                wall_s=time.perf_counter() - sweep_start,
                resumed=resumed_trials,
                interrupted=True,
            )
            telemetry.flush()
        raise
    finally:
        if journal is not None:
            journal.close()

    session = current_obs()
    if session is not None:
        # merge child timelines in trial-index order regardless of the
        # (nondeterministic) pool completion order, so the parent timeline
        # is reproducible; cached trials ran nothing, so they add no doc
        for i in sorted(obs_docs):
            session.merge_child(obs_docs[i], prefix=f"{experiment_id}/t{i}")
        session.metrics.counter("sweep.trials").inc(len(trials))
        session.metrics.counter("sweep.cache_hits").inc(cache_hits)
        session.metrics.counter("sweep.resumed_trials").inc(resumed_trials)
        if cache is not None:
            session.metrics.counter("sweep.cache_corrupt").inc(cache.corrupt)

    if telemetry is not None:
        telemetry.record_sweep(
            experiment=experiment_id,
            n_trials=len(trials),
            cache_hits=cache_hits,
            cache_corrupt=cache.corrupt if cache is not None else 0,
            jobs=cfg.jobs,
            wall_s=time.perf_counter() - sweep_start,
            resumed=resumed_trials,
            quarantined=len(quarantined),
        )
        telemetry.flush()
    if quarantined:
        # every healthy trial completed (and is cached/journalled); the
        # journal is kept so a re-run after fixing the poison resumes
        raise QuarantineError(quarantined)
    if journal is not None:
        journal.complete()
    return results
