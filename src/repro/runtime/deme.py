"""Shared deme runtime: one lifecycle, one timed driver, opt-in resilience.

The taxonomy's models differ in *what* a deme is (a generational engine, a
cellular grid, a scalarized subEA) and *how* demes exchange individuals —
but the driver skeleton is the same everywhere.  This module extracts that
skeleton so every engine in :mod:`repro.parallel` runs on it:

:class:`EpochLoop`
    The untimed lifecycle template.  ``step_epoch`` drives the standard
    ``setup → step → exchange → record`` sequence through four overridable
    hooks, and ``run_epochs`` is the standard driver loop with a
    termination callback.

:class:`TimedDemeRuntime`
    The simulated-cluster driver: one coroutine per deme pinned to a node,
    generations charged in simulated seconds, migrants on the simulated
    network.  This is the machinery PR 3 built for the island model, now
    hoisted so *any* engine inherits it — including the resilience
    capabilities (:class:`~repro.parallel.reliable.ReliableChannel`
    transport, :class:`~repro.parallel.supervisor.IslandSupervisor`
    heartbeat recovery, and :meth:`~repro.cluster.node.Node.finish_time`
    downtime stalls) via :class:`RuntimeCapabilities`.

:func:`emit_generation`
    The single emission path for per-deme ``generation`` trace events, so
    every engine's trace speaks the schema the :mod:`repro.verify`
    invariants audit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..cluster.sim import Timeout
from ..cluster.trace import Trace
from ..obs.session import current_obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.machine import SimulatedCluster

__all__ = [
    "EpochLoop",
    "TimedDemeRuntime",
    "RuntimeCapabilities",
    "emit_generation",
]


def emit_generation(
    trace: Trace | None,
    time: float,
    *,
    deme: int,
    generation: int,
    best: float | None,
    **extra,
) -> None:
    """Record one per-deme ``generation`` event on ``trace`` (no-op when
    untraced).  Every engine emits through here, so the event schema the
    streaming invariants consume (``deme``, ``generation``, ``best``) is
    uniform across the whole taxonomy."""
    if trace is None:
        return
    trace.generation(time, deme=deme, generation=generation, best=best, **extra)


@dataclass(frozen=True)
class RuntimeCapabilities:
    """Opt-in resilience features of the timed runtime.

    ``reliable``
        Transport migrants over a
        :class:`~repro.parallel.reliable.ReliableChannel` (sequence
        numbers, acks, backoff retransmission, receiver dedup).
    ``supervised``
        Heartbeat supervision with checkpoint recovery onto spare nodes
        (:class:`~repro.parallel.supervisor.IslandSupervisor`); requires
        one dedicated supervisor node beyond the demes.
    """

    reliable: bool = False
    rto_factor: float = 3.0
    max_retransmits: int = 8
    supervised: bool = False
    checkpoint_every: int = 5
    heartbeat_grace: float | None = None


class EpochLoop:
    """Standardized untimed deme lifecycle.

    Hosts provide an ``epoch`` counter, ``initialize()``, and the four
    lifecycle hooks; :meth:`step_epoch` sequences them identically for
    every model: ``begin → step → exchange → record``.
    """

    epoch: int

    # -- lifecycle hooks ---------------------------------------------------------
    def _lifecycle_initialized(self) -> bool:
        """Whether :meth:`initialize` has run."""
        raise NotImplementedError

    def _lifecycle_begin(self) -> None:
        """Capture any per-epoch bookkeeping before the demes advance."""

    def _lifecycle_step(self) -> None:
        """Advance every deme one step."""
        raise NotImplementedError

    def _lifecycle_exchange(self) -> None:
        """Exchange individuals between demes (migration / promotion)."""

    def _lifecycle_record(self) -> None:
        """Record per-epoch statistics and trace events."""

    # -- driver ---------------------------------------------------------------------
    def step_epoch(self) -> None:
        """One epoch of the standard lifecycle."""
        if not self._lifecycle_initialized():
            self.initialize()
        self._lifecycle_begin()
        self.epoch += 1
        self._lifecycle_step()
        self._lifecycle_exchange()
        self._lifecycle_record()

    def run_epochs(self, max_epochs: int | None = None, *, done=None) -> None:
        """Drive :meth:`step_epoch` until ``max_epochs`` or ``done()``."""
        if not self._lifecycle_initialized():
            self.initialize()
        while (max_epochs is None or self.epoch < max_epochs) and (
            done is None or not done()
        ):
            self.step_epoch()


class TimedDemeRuntime:
    """Cluster-timed deme driver (one deme coroutine per node).

    A host mixes this in and supplies ``demes`` (evolution engines with
    ``state`` / ``population`` / ``step()``), ``n_islands``, ``topology``,
    ``schedule``, ``policy``, ``rng``, ``problem`` and ``config``; the
    runtime owns node placement, downtime stalls, migrant transport and
    (opt-in) reliable delivery and supervised recovery.  Demes are
    conventionally called *islands* here after the model that pioneered
    the machinery, but any engine with deme-shaped parts qualifies —
    hybrids and the specialized island model run on the very same code.
    """

    def _init_timed_runtime(
        self,
        cluster: "SimulatedCluster",
        *,
        eval_cost: float,
        migration_payload: float,
        max_epochs: int,
        stop_when_any_solves: bool,
        capabilities: RuntimeCapabilities | None = None,
    ) -> None:
        caps = capabilities or RuntimeCapabilities()
        n_islands = self.n_islands
        if cluster.n_nodes < n_islands:
            raise ValueError(
                f"cluster has {cluster.n_nodes} nodes for {n_islands} islands"
            )
        if eval_cost <= 0:
            raise ValueError(f"eval_cost must be positive, got {eval_cost}")
        if caps.supervised and cluster.n_nodes < n_islands + 1:
            raise ValueError(
                "supervision needs a dedicated supervisor node: cluster has "
                f"{cluster.n_nodes} nodes for {n_islands} islands + supervisor"
            )
        if caps.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {caps.checkpoint_every}"
            )
        self.cluster = cluster
        self.capabilities = caps
        self.eval_cost = eval_cost
        self.migration_payload = migration_payload
        self.max_epochs = max_epochs
        self.stop_when_any_solves = stop_when_any_solves
        self.reliable_migration = caps.reliable
        self.rto_factor = caps.rto_factor
        self.max_retransmits = caps.max_retransmits
        self.supervised = caps.supervised
        self.checkpoint_every = caps.checkpoint_every
        grace = caps.heartbeat_grace
        if grace is None:
            grace = self._default_heartbeat_grace()
        self.heartbeat_grace = grace
        self._stop = False
        self._channel = None
        self._supervisor = None
        self._obs = None
        # deme placement / liveness bookkeeping (rebuilt by _setup_runtime)
        self._deme_node = list(range(n_islands))
        self._incarnation = [0] * n_islands
        self._deme_done = [False] * n_islands
        self._deme_crashed = [False] * n_islands
        self._routes: list[list[int]] = [
            list(self.topology.neighbors_out(i)) for i in range(n_islands)
        ]

    # -- tunable seams (defaults preserve the island model's behaviour) ----------
    def _default_heartbeat_grace(self) -> float:
        """Silence threshold: ten expected generation times."""
        return 10.0 * self.config.population_size * self.eval_cost

    def _channel_min_rto(self) -> float:
        """A receiver only drains its inbox between generations, so the
        retransmit timeout must cover that application delay too."""
        return 2.0 * self.config.population_size * self.eval_cost

    def _supervisor_snapshot_payload(self) -> float:
        """A checkpoint ships a whole population."""
        return self.migration_payload * self.config.population_size

    def _step_work(self, i: int, evaluations: int) -> float:
        """Simulated seconds deme ``i`` spends on ``evaluations`` fitness
        evaluations (before node speed).  Engines that farm evaluations
        inside a deme (the SMP-hybrid composition) override this."""
        return evaluations * self.eval_cost

    def _after_step(self, i: int) -> None:
        """Hook after deme ``i`` initializes or steps (e.g. archiving)."""

    def _deme_solved(self, i: int) -> bool:
        """Whether deme ``i`` has reached the problem's optimum."""
        return self.problem.is_solved(
            self.demes[i].population.best().require_fitness()
        )

    # -- routing -----------------------------------------------------------------
    def _route_targets(self, i: int) -> list[int]:
        """Current outgoing migration targets of deme ``i``.

        Unsupervised runs read the topology directly (exact legacy
        behaviour); supervised runs read the supervisor-maintained route
        overlay, which splices around abandoned demes.
        """
        if self.supervised:
            return self._routes[i]
        return list(self.topology.neighbors_out(i))

    def _rebuild_routes(self, abandoned: set[int]) -> None:
        """Rewire the migration overlay around ``abandoned`` demes: each
        deme's dead out-neighbours are transitively replaced by *their*
        out-neighbours, so a severed ring contracts to a smaller ring."""
        for j in range(self.n_islands):
            if j in abandoned:
                self._routes[j] = []
                continue
            targets: list[int] = []
            seen = {j}
            frontier = list(self.topology.neighbors_out(j))
            while frontier:
                d = frontier.pop(0)
                if d in seen:
                    continue
                seen.add(d)
                if d in abandoned:
                    frontier.extend(self.topology.neighbors_out(d))
                else:
                    targets.append(d)
            self._routes[j] = targets

    # -- observability -----------------------------------------------------------
    def _obs_track(self, i: int, incarnation: int = 0) -> str:
        """Timeline track of deme ``i``: recovered incarnations get their
        own lane so a deme's pre- and post-crash lifetimes don't overlap."""
        return f"deme-{i}" if incarnation == 0 else f"deme-{i}#inc{incarnation}"

    # -- deme lifecycle -----------------------------------------------------------
    def _record_deme_generation(self, i: int, incarnation: int = 0) -> None:
        deme = self.demes[i]
        assert deme.population is not None
        extra = {"incarnation": incarnation} if self.supervised else {}
        emit_generation(
            self.cluster.trace,
            self.cluster.sim.now,
            deme=i,
            generation=deme.state.generation,
            best=float(deme.population.best().require_fitness()),
            **extra,
        )

    def _busy(self, i: int, incarnation: int, work: float):
        """Charge ``work`` units of compute on deme ``i``'s current node,
        suspending (not losing) progress across repairable downtime.

        Returns True if the deme may carry on; False if the node crashed
        permanently mid-computation or a supervisor recovery fenced this
        incarnation off while it was suspended.
        """
        node = self.cluster.node(self._deme_node[i])
        now = self.cluster.sim.now
        finish = node.finish_time(now, node.compute_time(work))
        if math.isinf(finish):
            self._deme_crashed[i] = True
            return False
        yield Timeout(finish - now)
        return self._incarnation[i] == incarnation

    def _after_generation(self, i: int, incarnation: int) -> None:
        self._record_deme_generation(i, incarnation)
        if self._supervisor is not None:
            self._supervisor.heartbeat(i, incarnation)
            if self.demes[i].state.generation % self.checkpoint_every == 0:
                self._supervisor.checkpoint(i, incarnation)

    def _apply_parcel(self, i: int, item) -> None:
        if self._channel is not None:
            _, src, seq, _ = item
            migrants = self._channel.on_parcel(i, item)
            if migrants is None:
                return  # duplicate, discarded
            self.cluster.record(
                "migrant-apply", src=src, dst=i, seq=seq, count=len(migrants)
            )
        else:
            src, migrants = item
        if self._obs is not None:
            now = self.cluster.sim.now
            self._obs.spans.record(
                "migrate-recv", now, now,
                track=self._obs_track(i, self._incarnation[i]),
                deme=i, src=src, count=len(migrants),
            )
        self._integrate_parcel(i, src, migrants)

    def _integrate_parcel(self, i: int, src: int, migrants) -> None:
        """Fold arrived ``migrants`` into deme ``i``.  Engines whose demes
        score fitness differently (e.g. scalarized subEAs) override this
        to re-evaluate on arrival."""
        from ..migration.policy import integrate_immigrants

        self.migrants_accepted += integrate_immigrants(
            self.rng, self.demes[i].population, migrants, self.policy, source=src
        )

    def _send_migrants(self, i: int) -> None:
        from ..migration.policy import select_migrants

        deme = self.demes[i]
        for dst in self._route_targets(i):
            migrants = select_migrants(self.rng, deme.population, self.policy)
            if not migrants:
                continue
            size = self.migration_payload * len(migrants)
            if self._channel is not None:
                self._channel.send(i, dst, migrants, size)
            else:
                self.cluster.send(
                    self._deme_node[i],
                    self._deme_node[dst],
                    self._inboxes[dst],
                    (i, migrants),
                    size=size,
                    kind="migration",
                )
            self.migrants_sent += len(migrants)
            if self._obs is not None:
                now = self.cluster.sim.now
                self._obs.spans.record(
                    "migrate-send", now, now,
                    track=self._obs_track(i, self._incarnation[i]),
                    deme=i, dst=dst, count=len(migrants),
                )

    def _deme_process(self, i: int, incarnation: int = 0, resume: bool = False):
        deme = self.demes[i]
        inbox = self._inboxes[i]
        obs = self._obs
        track = self._obs_track(i, incarnation)
        if resume:
            # restored from a checkpoint on a spare: announce liveness,
            # then pick the evolution up where the snapshot left it
            self._after_generation(i, incarnation)
        else:
            # initialisation costs one population evaluation
            before = deme.state.evaluations
            deme.initialize()
            self._after_step(i)
            t0 = self.cluster.sim.now
            alive = yield from self._busy(
                i, incarnation, self._step_work(i, deme.state.evaluations - before)
            )
            if not alive:
                return
            if obs is not None:
                obs.spans.record(
                    "evaluate", t0, self.cluster.sim.now, track=track,
                    deme=i, generation=deme.state.generation, phase="init",
                )
            self._after_generation(i, incarnation)
        while deme.state.generation < self.max_epochs and not self._stop:
            frame = (
                obs.spans.begin(
                    "generation", t0=self.cluster.sim.now, track=track,
                    deme=i, generation=deme.state.generation + 1,
                )
                if obs is not None
                else None
            )
            before = deme.state.evaluations
            deme.step()
            self._after_step(i)
            epoch = deme.state.generation
            t0 = self.cluster.sim.now
            alive = yield from self._busy(
                i, incarnation, self._step_work(i, deme.state.evaluations - before)
            )
            if not alive:
                return  # frame left open; the session closes it at export
            if frame is not None:
                obs.spans.record(
                    "evaluate", t0, self.cluster.sim.now, track=track,
                    deme=i, generation=epoch,
                )
            # drain any migrants that arrived while computing
            while len(inbox):
                item = (yield inbox)
                if self._incarnation[i] != incarnation:
                    return
                self._apply_parcel(i, item)
            self._after_generation(i, incarnation)
            if self.schedule.should_migrate(
                i, epoch, self.rng,
                stagnant_generations=deme.state.stagnant_generations,
            ):
                self._send_migrants(i)
            if frame is not None:
                obs.spans.end(frame, self.cluster.sim.now)
            if self._deme_solved(i):
                if self.stop_when_any_solves:
                    self._stop = True
                break
        if self._incarnation[i] == incarnation:
            self._deme_done[i] = True
            self._finish_times[i] = self.cluster.sim.now

    # -- driver setup / teardown ----------------------------------------------------
    def _setup_runtime(self) -> None:
        """Build inboxes, transport, supervision and deme coroutines.

        Order matters for replay stability: the supervisor process is
        created *before* the deme processes, exactly as the island model
        always did.
        """
        from ..parallel.reliable import ReliableChannel
        from ..parallel.supervisor import IslandSupervisor

        n = self.n_islands
        self._obs = current_obs()
        self._inboxes = [self.cluster.inbox(f"deme-{i}") for i in range(n)]
        self._finish_times = [0.0] * n
        self._deme_node = list(range(n))
        self._incarnation = [0] * n
        self._deme_done = [False] * n
        self._deme_crashed = [False] * n
        self._routes = [list(self.topology.neighbors_out(i)) for i in range(n)]
        if self.reliable_migration:
            self._channel = ReliableChannel(
                self.cluster,
                node_of=lambda d: self._deme_node[d],
                inbox_of=lambda d: self._inboxes[d],
                is_stopped=lambda: self._stop,
                is_done=lambda d: self._deme_done[d],
                rto_factor=self.rto_factor,
                min_rto=self._channel_min_rto(),
                max_retransmits=self.max_retransmits,
            )
        if self.supervised:
            self._supervisor = IslandSupervisor(
                self,
                node_id=n,
                spares=list(range(n + 1, self.cluster.n_nodes)),
                grace=self.heartbeat_grace,
                check_interval=self.heartbeat_grace / 4.0,
                snapshot_payload=self._supervisor_snapshot_payload(),
            )
            self.cluster.sim.process(self._supervisor.process(), name="supervisor")
        self._procs = [
            self.cluster.sim.process(self._deme_process(i), name=f"deme-{i}")
            for i in range(n)
        ]

    def _runtime_report_fields(self) -> dict:
        """The resilience/timing counters every timed report carries."""
        plain = self._channel is None and self._supervisor is None
        return {
            # trailing retransmit/sweep timers outlive the work itself, so
            # protected runs report the last deme completion as wall time
            "sim_time": self.cluster.sim.now if plain else max(self._finish_times),
            "retransmits": self._channel.stats.retransmits if self._channel else 0,
            "dup_discards": self._channel.stats.dup_discards if self._channel else 0,
            "recoveries": self._supervisor.recoveries if self._supervisor else 0,
            "abandoned_demes": (
                len(self._supervisor.abandoned) if self._supervisor else 0
            ),
            "finish_times": list(self._finish_times),
        }
