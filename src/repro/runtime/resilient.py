"""Supervised real-process execution: deadlines, retries, respawn, quarantine.

The repo's *simulated* cluster got reliable channels and heartbeat
supervision in the fault-tolerance layer; this module is the same idea
for the *real* process backends.  A bare ``multiprocessing.Pool`` gives
none of it: ``Pool.map`` blocks forever when a worker is OOM-killed
mid-task, ``imap_unordered`` loses the whole sweep on one segfault, and
``close(); join()`` deadlocks on a hung worker.  Lobo, Lima & Mártires
(arXiv cs/0402049) make worker fault tolerance a first-class requirement
of master-worker PGAs; :class:`SupervisedPool` is that requirement made
concrete for this codebase:

* **Explicit workers, explicit wire.**  One ``Process`` + duplex pipe
  per worker, one task in flight per worker.  The supervisor always
  knows which task a worker holds, so a death or deadline maps to
  exactly one task.
* **Worker-death detection.**  A SIGKILLed/``os._exit``-ed worker closes
  its pipe; ``connection.wait`` wakes the supervisor immediately and the
  task is retried on a fresh worker.  A heartbeat poll backstops the
  exotic cases where the pipe outlives the process.
* **Per-task deadlines.**  A worker past ``deadline_s`` on one task is
  killed and replaced; the task counts a timeout and retries.
* **Bounded retry with seeded backoff.**  Failed attempts reschedule
  after exponential backoff with *full jitter*, drawn deterministically
  from ``(backoff_seed, key, attempt)`` — the whole recovery history
  replays bit-identically.
* **Poison-task quarantine.**  A task that fails ``max_retries + 1``
  attempts either aborts the batch (``quarantine=False``, the executor's
  contract: re-raise the original exception) or is boxed as a
  :class:`QuarantinedTask` in its result slot while every other task
  still completes (``quarantine=True``, the sweep's contract).
* **Capped respawn + graceful degradation.**  Each replacement worker
  counts against ``max_pool_respawns``; past the cap the pool concludes
  the host is hostile, kills its workers and finishes the batch serially
  in-process (chaos injection, a worker-only concern, no longer applies).

Fault-free runs take none of these paths: tasks dispatch to idle
workers in index order and results land by index, so output is
bit-identical to the bare pool it replaces, at the cost of one pipe
round-trip per task.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Sequence

from ..obs.session import current_obs
from .chaos import ChaosPlan

__all__ = [
    "ResilienceConfig",
    "SupervisedPool",
    "PoolStats",
    "TaskFailure",
    "QuarantinedTask",
    "WorkerTaskError",
    "QuarantineError",
    "backoff_delay",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Supervision policy for one :class:`SupervisedPool`.

    The defaults are deliberately conservative — no deadline, no retries
    — which reproduces the bare pool's *semantics* (first failure
    raises) while still fixing its pathologies (worker death raises
    instead of hanging; shutdown cannot deadlock).
    """

    #: per-task wall-clock deadline; ``None`` disables timeout kills
    deadline_s: float | None = None
    #: retries after the first attempt (total attempts = max_retries + 1)
    max_retries: int = 0
    #: backoff ceiling doubles from this base per failed attempt
    backoff_base_s: float = 0.05
    #: hard cap on any single backoff delay
    backoff_cap_s: float = 2.0
    #: seed for the deterministic full-jitter draws
    backoff_seed: int = 0
    #: replacement workers allowed before degrading to serial in-process
    max_pool_respawns: int = 4
    #: True: box terminal failures as QuarantinedTask results and keep
    #: going; False: abort the batch on the first terminal failure
    quarantine: bool = False
    #: deterministic fault plan applied inside workers (never in-process)
    chaos: ChaosPlan | None = None
    #: liveness poll cadence while blocked on busy workers
    heartbeat_s: float = 0.2
    #: how long shutdown waits for a clean worker exit before terminating
    shutdown_grace_s: float = 5.0
    #: ambient trace retention installed in every worker process
    #: (``full`` | ``compact`` | ``digest-only``); ``None`` leaves the
    #: library default.  Bounds worker memory and pipe payloads when the
    #: worker_fn runs traced simulations — the sweep harness layers its
    #: own per-trial modes on top, so it leaves this at ``None``.
    trace_retention: str | None = None

    def __post_init__(self) -> None:
        if self.trace_retention is not None:
            from ..cluster.trace import RETENTION_MODES

            if self.trace_retention not in RETENTION_MODES:
                raise ValueError(
                    f"trace_retention must be None or one of {RETENTION_MODES}, "
                    f"got {self.trace_retention!r}"
                )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.max_pool_respawns < 0:
            raise ValueError(
                f"max_pool_respawns must be >= 0, got {self.max_pool_respawns}"
            )

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1


def backoff_delay(config: ResilienceConfig, key: int, failed_attempt: int) -> float:
    """Deterministic exponential backoff with full jitter.

    ``uniform(0, min(cap, base * 2**failed_attempt))`` where the uniform
    draw is a pure hash of ``(backoff_seed, key, failed_attempt)`` — the
    AWS full-jitter schedule, reproducible across processes and runs.
    """
    ceiling = min(config.backoff_cap_s, config.backoff_base_s * (2.0 ** failed_attempt))
    blob = hashlib.sha256(
        f"backoff|{config.backoff_seed}|{key}|{failed_attempt}".encode()
    ).digest()
    return ceiling * (int.from_bytes(blob[:8], "big") / 2**64)


# -- failure records ---------------------------------------------------------------


@dataclass
class TaskFailure:
    """One failed attempt: what went wrong and on which attempt."""

    kind: str  # "raise" | "timeout" | "worker-death"
    attempt: int
    detail: str


@dataclass
class QuarantinedTask:
    """Placeholder result for a poison task that exhausted its attempts."""

    key: int
    attempts: int
    failures: list[TaskFailure] = field(default_factory=list)

    def describe(self) -> str:
        history = "; ".join(
            f"attempt {f.attempt}: {f.kind} ({f.detail})" for f in self.failures
        )
        return f"task {self.key} quarantined after {self.attempts} attempts: {history}"


class WorkerTaskError(RuntimeError):
    """A task failed terminally for a non-exception reason (timeout/death)."""

    def __init__(self, message: str, failures: Sequence[TaskFailure] = ()) -> None:
        super().__init__(message)
        self.failures = list(failures)


class QuarantineError(RuntimeError):
    """Raised by callers when a batch completed but left quarantined tasks."""

    def __init__(self, quarantined: Sequence[QuarantinedTask]) -> None:
        lines = "\n  ".join(q.describe() for q in quarantined)
        super().__init__(
            f"{len(quarantined)} task(s) quarantined as poison:\n  {lines}"
        )
        self.quarantined = list(quarantined)


@dataclass
class PoolStats:
    """Supervision counters for one pool lifetime (mirrored to repro.obs)."""

    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    quarantined: int = 0
    respawns: int = 0
    degraded: bool = False


# -- worker side -------------------------------------------------------------------


def _worker_main(conn, worker_fn, initializer, initargs, chaos, retention=None) -> None:
    """Worker loop: recv ``(task_id, key, attempt, payload)``, run, send back.

    Chaos faults execute *before* the task body, keyed by the task's
    stable key and attempt number, so a planned fault replays no matter
    which worker the task lands on.  ``None`` is the shutdown sentinel.

    ``retention``, when set, becomes the worker's ambient trace retention
    for its whole lifetime (``ResilienceConfig.trace_retention``): traces
    built inside task bodies then default to bounded storage.
    """
    if retention is not None:
        from ..cluster.trace import trace_retention as _trace_retention

        retention_ctx = _trace_retention(retention)
        retention_ctx.__enter__()  # held for the process lifetime
    if initializer is not None:
        initializer(*initargs)
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        task_id, key, attempt, payload = item
        try:
            if chaos is not None:
                chaos.execute(key, attempt)
            message = (task_id, True, worker_fn(payload))
        except BaseException as exc:  # noqa: BLE001 — the wire carries it back
            message = (task_id, False, _pickle_exc(exc))
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            return


def _pickle_exc(exc: BaseException) -> bytes:
    try:
        blob = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        pickle.loads(blob)  # some exceptions pickle but refuse to unpickle
        return blob
    except Exception:
        return pickle.dumps(
            RuntimeError(f"{type(exc).__name__}: {exc}"),
            protocol=pickle.HIGHEST_PROTOCOL,
        )


# -- driver side -------------------------------------------------------------------


@dataclass
class _TaskState:
    index: int  # slot in the batch's result list
    key: int  # stable identity for chaos/backoff draws
    payload: Any
    attempt: int = 0  # next attempt number to run (0-based)
    ready_at: float = 0.0  # monotonic time before which dispatch must wait
    failures: list[TaskFailure] = field(default_factory=list)


class _Worker:
    __slots__ = ("proc", "conn", "task", "started_at")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.task: _TaskState | None = None
        self.started_at = 0.0


def _obs_inc(name: str, amount: int = 1) -> None:
    session = current_obs()
    if session is not None and amount:
        session.metrics.counter(name).inc(amount)


class SupervisedPool:
    """A persistent pool of supervised worker processes.

    ``worker_fn`` must be a module-level callable (picklable under the
    ``spawn`` context; any callable under ``fork``) taking one payload.
    ``initializer(*initargs)`` runs once per worker — including every
    respawned replacement — before its task loop starts.

    Use as a context manager, or call :meth:`shutdown` explicitly; both
    are bounded-time (satellite of the bare pool's ``close(); join()``
    deadlock) and safe to call with hung or dead workers.
    """

    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        jobs: int,
        *,
        config: ResilienceConfig | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: Sequence[Any] = (),
        label: str = "pool",
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.worker_fn = worker_fn
        self.jobs = jobs
        self.config = config if config is not None else ResilienceConfig()
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self.label = label
        self.stats = PoolStats()
        self._ctx = get_context("fork" if os.name == "posix" else "spawn")
        self._closed = False
        #: tasks stranded on workers the supervisor abandoned mid-flight
        #: (degradation); drained back into the batch queue innocently
        self._stranded: list[_TaskState] = []
        self._workers: list[_Worker] = [self._spawn() for _ in range(jobs)]

    # -- lifecycle -----------------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child, self.worker_fn, self.initializer, self.initargs,
                self.config.chaos, self.config.trace_retention,
            ),
            daemon=True,
        )
        proc.start()
        child.close()
        return _Worker(proc, parent)

    def shutdown(self, timeout: float | None = None) -> None:
        """Sentinel every worker, join with a bound, terminate stragglers.

        Unlike ``Pool.close(); Pool.join()`` this can never block forever:
        a hung worker gets ``terminate()`` after the grace period and
        ``kill()`` if it survives even that.
        """
        if self._closed:
            return
        self._closed = True
        grace = self.config.shutdown_grace_s if timeout is None else timeout
        for w in self._workers:
            try:
                w.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + grace
        for w in self._workers:
            w.proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for w in self._workers:
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=1.0)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(timeout=1.0)
            w.conn.close()
        self._workers = []

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- batch execution -----------------------------------------------------------

    def run_batch(
        self,
        payloads: Sequence[Any],
        *,
        keys: Sequence[int] | None = None,
        on_result: Callable[[int, Any], None] | None = None,
    ) -> list[Any]:
        """Run every payload under supervision; results in payload order.

        ``keys`` names each task for chaos/backoff purposes (default: its
        index).  ``on_result(index, value)`` streams successful results
        as they land — quarantined slots are *not* streamed; they appear
        as :class:`QuarantinedTask` markers in the returned list.
        """
        if self._closed:
            raise RuntimeError("pool is shut down")
        n = len(payloads)
        if n == 0:
            return []
        key_list = [int(k) for k in keys] if keys is not None else list(range(n))
        if len(key_list) != n:
            raise ValueError(f"{len(key_list)} keys for {n} payloads")
        tasks = [
            _TaskState(index=i, key=key_list[i], payload=p)
            for i, p in enumerate(payloads)
        ]
        results: list[Any] = [None] * n
        pending: list[_TaskState] = list(tasks)
        state = {"done": 0}
        cfg = self.config

        def _finish(task: _TaskState, value: Any, streamed: bool = True) -> None:
            results[task.index] = value
            state["done"] += 1
            if streamed and on_result is not None:
                on_result(task.index, value)

        def _failed(
            task: _TaskState, kind: str, detail: str, exc: BaseException | None = None
        ) -> None:
            task.failures.append(TaskFailure(kind=kind, attempt=task.attempt, detail=detail))
            task.attempt += 1
            if task.attempt >= cfg.max_attempts:
                self.stats.quarantined += 1
                _obs_inc("executor.quarantined")
                if cfg.quarantine:
                    _finish(
                        task,
                        QuarantinedTask(
                            key=task.key, attempts=task.attempt, failures=list(task.failures)
                        ),
                        streamed=False,
                    )
                    return
                if exc is not None:
                    raise exc  # preserve the original exception type
                raise WorkerTaskError(
                    f"task {task.key} failed terminally after {task.attempt} "
                    f"attempt(s): {kind} ({detail})",
                    task.failures,
                )
            self.stats.retries += 1
            _obs_inc("executor.retries")
            delay = backoff_delay(cfg, task.key, task.attempt - 1)
            task.ready_at = time.monotonic() + delay
            self._record_backoff_span(task, delay)
            pending.append(task)

        try:
            # replace workers lost to a previous batch's error reset
            while not self.stats.degraded and len(self._workers) < self.jobs:
                self._workers.append(self._spawn())
            while state["done"] < n:
                if self._stranded:
                    pending.extend(self._stranded)
                    self._stranded.clear()
                if self.stats.degraded:
                    self._drain_serially(pending, _finish, _failed)
                    continue
                now = time.monotonic()
                # dispatch ready tasks onto idle workers, index order
                idle = [w for w in self._workers if w.task is None]
                if idle and pending:
                    ready = sorted(
                        (t for t in pending if t.ready_at <= now),
                        key=lambda t: t.index,
                    )
                    for w, t in zip(idle, ready):
                        pending.remove(t)
                        w.task = t
                        w.started_at = now
                        try:
                            w.conn.send((t.index, t.key, t.attempt, t.payload))
                        except (BrokenPipeError, OSError):
                            # died while idle: the task never ran, requeue
                            # it innocently and replace the worker
                            w.task = None
                            pending.append(t)
                            self._note_death(w)
                busy = [w for w in self._workers if w.task is not None]
                if not busy:
                    if pending:
                        wait = min(t.ready_at for t in pending) - time.monotonic()
                        if wait > 0:
                            time.sleep(min(wait, cfg.heartbeat_s))
                    continue
                timeout = cfg.heartbeat_s
                if cfg.deadline_s is not None:
                    next_deadline = (
                        min(w.started_at for w in busy) + cfg.deadline_s - now
                    )
                    timeout = min(timeout, max(0.0, next_deadline))
                if pending:
                    next_ready = min(t.ready_at for t in pending) - now
                    if next_ready > 0:
                        timeout = min(timeout, next_ready)
                ready_conns = set(_conn_wait([w.conn for w in busy], timeout))
                for w in busy:
                    if w.conn not in ready_conns or w.task is None:
                        continue  # reaped mid-iteration (degradation)
                    task = w.task
                    try:
                        msg = w.conn.recv()
                    except (EOFError, OSError):
                        self._note_death(w)
                        if task is not None:
                            _failed(
                                task,
                                "worker-death",
                                f"worker died during attempt {task.attempt}",
                            )
                        continue
                    if task is None or msg[0] != task.index:
                        continue  # stale message; ignore
                    w.task = None
                    if msg[1]:
                        _finish(task, msg[2])
                    else:
                        exc = pickle.loads(msg[2])
                        _failed(task, "raise", repr(exc), exc=exc)
                # deadline sweep: kill workers past their per-task budget
                if cfg.deadline_s is not None:
                    now = time.monotonic()
                    for w in list(self._workers):
                        task = w.task
                        if task is None or now - w.started_at <= cfg.deadline_s:
                            continue
                        self.stats.timeouts += 1
                        _obs_inc("executor.timeouts")
                        self._kill_and_replace(w)
                        _failed(
                            task,
                            "timeout",
                            f"exceeded deadline {cfg.deadline_s}s on attempt {task.attempt}",
                        )
                # liveness backstop: busy worker died but its pipe stayed
                # open (e.g. inherited by a grandchild) — treat as death
                for w in list(self._workers):
                    if w.task is not None and not w.proc.is_alive():
                        task = w.task
                        self._note_death(w)
                        _failed(
                            task,
                            "worker-death",
                            f"worker exited (code {w.proc.exitcode}) during "
                            f"attempt {task.attempt}",
                        )
        except BaseException:
            self._reset_after_error()
            raise
        return results

    # -- supervision internals -----------------------------------------------------

    def _note_death(self, worker: _Worker) -> None:
        self.stats.worker_deaths += 1
        _obs_inc("executor.worker_deaths")
        self._kill_and_replace(worker)

    def _kill_and_replace(self, worker: _Worker) -> None:
        """Remove one worker; respawn if under the cap, else degrade."""
        worker.task = None
        self._reap(worker)
        if worker in self._workers:
            self._workers.remove(worker)
        if self.stats.respawns < self.config.max_pool_respawns:
            self.stats.respawns += 1
            self._workers.append(self._spawn())
        else:
            self._degrade()

    def _degrade(self) -> None:
        """The pool keeps breaking: finish the batch serially in-process.

        Healthy workers' in-flight tasks are requeued *without* counting
        a failure — the supervisor is abandoning them, they did nothing
        wrong.  Chaos plans do not apply in-process (a ``kill`` fault
        would take down the driver), so degradation also acts as the
        escape hatch from a plan that kills every attempt.
        """
        if self.stats.degraded:
            return
        self.stats.degraded = True
        for w in self._workers:
            self._reap(w)
        self._workers = []

    def _drain_serially(self, pending, _finish, _failed) -> None:
        # every remaining task runs in the driver process; stranded
        # in-flight tasks were already drained back into ``pending``
        while pending:
            task = min(pending, key=lambda t: (t.ready_at, t.index))
            pending.remove(task)
            wait = task.ready_at - time.monotonic()
            if wait > 0:
                time.sleep(wait)
            try:
                value = self.worker_fn(task.payload)
            except Exception as exc:  # noqa: BLE001 — same contract as the wire
                _failed(task, "raise", repr(exc), exc=exc)
                continue
            _finish(task, value)

    def _reap(self, worker: _Worker) -> None:
        stranded = worker.task
        worker.task = None
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join(timeout=1.0)
        if stranded is not None:
            # only reached from _degrade: requeue innocently
            stranded.ready_at = 0.0
            self._stranded.append(stranded)

    def _reset_after_error(self) -> None:
        """An exception is propagating out of run_batch: discard every
        worker (they may hold stale in-flight tasks).  Replacements are
        spawned lazily at the next ``run_batch``, so the pool stays
        usable without wasting forks when the caller is shutting down."""
        if self._closed:
            return
        for w in self._workers:
            w.task = None
            self._reap(w)
        self._workers = []
        self._stranded.clear()

    def _record_backoff_span(self, task: _TaskState, delay: float) -> None:
        session = current_obs()
        if session is None:
            return
        t0 = session.wall_now()
        session.spans.record(
            "retry-backoff",
            t0,
            t0 + delay,
            track=f"{self.label}/supervisor",
            clock="wall",
            key=task.key,
            attempt=task.attempt,
        )
