"""Crash-safe sweep resume: an append-only journal of completed trials.

The content-addressed :class:`~repro.runtime.sweep.TrialCache` already
makes a *re-run* cheap — every completed trial answers from disk.  What
it cannot tell a restarted orchestrator is *which* of those hits belong
to a sweep that was killed mid-flight, so the restart could neither
report how much work it skipped nor rebuild the partial telemetry the
dead run never got to flush.  The journal closes that gap: one
``jsonl`` file per sweep (keyed by the sweep's full trial-digest set,
so a changed grid or edited kernel starts a fresh journal), one line
appended — flushed and fsynced — after each trial's result is safely in
the cache.

A line is written *after* the cache entry it describes, so every
journal line points at a durable result; a crash between the two at
worst demotes one resumed trial to an ordinary cache hit.  Torn final
lines from a crashed writer are detected by JSON parse failure and
skipped.  When a sweep completes, its journal is deleted — there is
nothing left to resume.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterable

__all__ = ["SweepJournal"]


class SweepJournal:
    """Append-only completion log for one sweep's trials."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = None

    @staticmethod
    def path_for(
        cache_root: str | Path, experiment_id: str, digests: Iterable[str]
    ) -> Path:
        """Journal location for one sweep, next to the trial cache.

        The filename keys on the *entire* ordered digest set, so a sweep
        over a different grid (or after a kernel edit, which changes
        every digest) never resumes from the wrong journal.
        """
        h = hashlib.sha256(experiment_id.encode())
        for d in digests:
            h.update(b"|")
            h.update(str(d).encode())
        return (
            Path(cache_root)
            / "journal"
            / f"{experiment_id}-{h.hexdigest()[:16]}.jsonl"
        )

    def load(self) -> dict[str, dict[str, Any]]:
        """Completed-trial records from a previous (crashed) run, by digest.

        A torn or corrupt line — the possible tail of a killed writer —
        is skipped, never trusted.
        """
        records: dict[str, dict[str, Any]] = {}
        try:
            text = self.path.read_text()
        except OSError:
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
                digest = doc["digest"]
            except (ValueError, KeyError, TypeError):
                continue  # torn final line from a crashed writer
            records[str(digest)] = doc
        return records

    def append(self, digest: str, record: dict[str, Any] | None = None) -> None:
        """Durably log one completed trial (flush + fsync per line)."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        doc = {"digest": digest, **(record or {})}
        self._fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def complete(self) -> None:
        """The sweep finished: nothing left to resume, drop the journal."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
