"""Fitness-evaluation executors: serial, threads, processes.

The *real-parallelism* counterpart of :mod:`repro.cluster`: these executors
actually farm fitness evaluations out to OS threads or processes (the
survey's master-slave data parallelism on an SMP machine).  They plug into
any engine through the ``FitnessEvaluator`` seam.

The process pool uses an initializer so the problem is shipped to each
worker exactly once — the mpi4py tutorial's broadcast-once idiom — rather
than pickled per task.  Per-generation traffic is one contiguous ``(n, L)``
array slice per chunk (genomes out) and one list of floats back per chunk
(fitnesses in); no per-genome object lists cross the process boundary.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from ..core.problem import CountingProblem, Problem, stack_genomes
from .resilient import QuarantinedTask, QuarantineError, ResilienceConfig, SupervisedPool

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "MultiprocessingExecutor",
    "chunk_indices",
]


def chunk_indices(n: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into at most ``chunks`` contiguous balanced spans."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    chunks = min(chunks, max(1, n))
    bounds = np.linspace(0, n, chunks + 1).astype(int)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(chunks) if bounds[i] < bounds[i + 1]]


class SerialExecutor:
    """Evaluate in the calling thread (the baseline / 1-processor case)."""

    def evaluate(
        self, problem: Problem, genomes: Sequence[np.ndarray] | np.ndarray
    ) -> list[float]:
        return problem.evaluate_many(genomes)

    def shutdown(self) -> None:  # symmetry with pooled executors
        pass

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class ThreadExecutor:
    """Thread-pool evaluation — the survey's 'lightweight processes such as
    POSIX threads … on SMP machines' model.

    Python threads only help for fitness functions that release the GIL
    (NumPy-heavy evaluations); the correctness path is identical either way.
    """

    def __init__(self, workers: int | None = None, chunked: bool = True) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.chunked = chunked
        self._pool = ThreadPoolExecutor(max_workers=self.workers)

    def evaluate(
        self, problem: Problem, genomes: Sequence[np.ndarray] | np.ndarray
    ) -> list[float]:
        if len(genomes) == 0:
            return []
        if self.chunked:
            spans = chunk_indices(len(genomes), self.workers)
            futures = [
                self._pool.submit(problem.evaluate_many, genomes[a:b])
                for a, b in spans
            ]
            out: list[float] = []
            for fut in futures:
                out.extend(fut.result())
            return out
        return list(self._pool.map(problem.evaluate, genomes))

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ThreadExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# -- process-pool plumbing ---------------------------------------------------------
_WORKER_PROBLEM: Problem | None = None


def _init_worker(problem_bytes: bytes) -> None:
    global _WORKER_PROBLEM
    _WORKER_PROBLEM = pickle.loads(problem_bytes)


def _eval_chunk(genomes: np.ndarray | list[np.ndarray]) -> list[float]:
    if _WORKER_PROBLEM is None:
        raise RuntimeError("worker process was not initialised with a problem")
    return _WORKER_PROBLEM.evaluate_many(genomes)


def _objective_payload(problem: Problem) -> tuple[Problem, bytes]:
    """The problem actually shipped to workers, and its pickled bytes.

    A :class:`CountingProblem` is unwrapped: workers evaluate the inner
    objective only, and all counting/budget enforcement happens driver-side
    (worker-side counters live in forked copies and never reach the driver).
    """
    target = problem.inner if isinstance(problem, CountingProblem) else problem
    return target, pickle.dumps(target, protocol=pickle.HIGHEST_PROTOCOL)


class MultiprocessingExecutor:
    """Process-pool evaluation — real distributed-memory data parallelism.

    The objective is broadcast to each worker once at pool start-up (like an
    MPI ``bcast``), so per-generation traffic is genome arrays out /
    fitnesses back only.  The pool is a
    :class:`~repro.runtime.resilient.SupervisedPool`: a worker that is
    OOM-killed, segfaults or stalls past ``resilience.deadline_s`` no
    longer hangs the evaluation — the chunk is retried on a respawned
    worker (``resilience.max_retries``) or the original error raises.

    Parameters
    ----------
    problem:
        The problem to broadcast.  :meth:`evaluate` verifies — via a digest
        of the pickled objective recorded here — that it is handed the same
        objective the workers hold, so a different instance of the same
        class (or a reconfigured wrapper) cannot silently evaluate against
        a stale objective.  :class:`CountingProblem` wrappers are unwrapped
        before broadcast; their counting and budget enforcement run
        driver-side.
    workers:
        Pool size; defaults to the CPU count.
    resilience:
        Supervision policy.  The default (no deadline, no retries) keeps
        the bare pool's semantics — first evaluation error raises — while
        worker death raises instead of hanging forever.
    """

    def __init__(
        self,
        problem: Problem,
        workers: int | None = None,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        _, payload = _objective_payload(problem)
        self._objective_digest = hashlib.sha256(payload).hexdigest()
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self._pool = SupervisedPool(
            _eval_chunk,
            self.workers,
            config=self.resilience,
            initializer=_init_worker,
            initargs=(payload,),
            label="executor",
        )

    @property
    def stats(self):
        """Supervision counters (retries/timeouts/worker deaths/respawns)."""
        return self._pool.stats

    def evaluate(
        self, problem: Problem, genomes: Sequence[np.ndarray] | np.ndarray
    ) -> list[float]:
        target, payload = _objective_payload(problem)
        digest = hashlib.sha256(payload).hexdigest()
        if digest != self._objective_digest:
            raise ValueError(
                f"executor was initialised for a different objective than "
                f"{target.name}: workers would evaluate a stale problem"
            )
        n = len(genomes)
        if n == 0:
            return []
        counting = problem if isinstance(problem, CountingProblem) else None
        if counting is not None:
            counting.reserve(n)  # driver-side budget check + count
        try:
            batch = stack_genomes(genomes)
            spans = chunk_indices(n, self.workers)
            if batch is not None:
                # one contiguous array per chunk: a single pickle buffer
                # instead of a list of per-genome objects
                chunks = [np.ascontiguousarray(batch[a:b]) for a, b in spans]
            else:
                chunks = [list(genomes[a:b]) for a, b in spans]
            results = self._pool.run_batch(chunks)
        except BaseException:
            if counting is not None:
                counting.refund(n)
            raise
        quarantined = [r for r in results if isinstance(r, QuarantinedTask)]
        if quarantined:
            if counting is not None:
                counting.refund(n)
            raise QuarantineError(quarantined)
        out: list[float] = []
        for r in results:
            out.extend(r)
        return out

    def shutdown(self, timeout: float | None = None) -> None:
        """Bounded shutdown: a hung worker is terminated after the grace
        period instead of deadlocking context-manager exit."""
        self._pool.shutdown(timeout=timeout)

    def __enter__(self) -> "MultiprocessingExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
