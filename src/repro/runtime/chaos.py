"""Deterministic chaos injection for the supervised real-process pool.

The survey's perspective sections treat worker failure on commodity
clusters as the normal case, not the exception — but failure paths that
only trigger on real hardware faults are failure paths that never run in
CI.  This module makes them reproducible: a :class:`ChaosPlan` is a
seeded map from ``(task key, attempt)`` pairs to one of four faults,
executed *inside the worker process* just before the task body runs:

``raise``
    Raise :class:`ChaosError` — a clean application-level failure that
    travels back to the driver as an exception.
``hang``
    Sleep past any sane deadline (``hang_s``, default one hour) so the
    supervisor's per-task timeout fires and the worker is killed.
``kill``
    ``SIGKILL`` the worker's own process — the OOM-killer scenario.  No
    exception, no goodbye; the driver sees the pipe close.
``exit``
    ``os._exit`` — a hard interpreter death (native-extension crash /
    segfault stand-in) that likewise skips all cleanup.

Because the plan is pure data keyed by ``(key, attempt)`` and the
retry/backoff schedule is itself seeded, an entire failure-and-recovery
history replays bit-identically from ``(plan, seed)``.  Plans are only
ever executed in pool *workers*: the serial in-process paths (and the
supervised pool's serial-degradation mode) never apply chaos, so a
chaos run that eventually succeeds is fingerprint-identical to a clean
serial run — which is exactly what the CI chaos-smoke job asserts.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = ["CHAOS_SCHEMA", "ACTIONS", "ChaosError", "ChaosPlan"]

CHAOS_SCHEMA = "repro-chaos-plan/v1"

#: recognised fault actions, in the order seeded sampling assigns them
ACTIONS = ("raise", "hang", "kill", "exit")


class ChaosError(RuntimeError):
    """The exception injected by a ``raise`` fault."""


def _u01(seed: int, key: int, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one (key, attempt) pair.

    Hash-based rather than stream-based so the draw for a pair never
    depends on how many other pairs were sampled before it.
    """
    blob = hashlib.sha256(f"chaos|{seed}|{key}|{attempt}".encode()).digest()
    return int.from_bytes(blob[:8], "big") / 2**64


@dataclass
class ChaosPlan:
    """A reproducible fault schedule: ``(task key, attempt) -> action``.

    ``faults`` maps each afflicted pair to one of :data:`ACTIONS`; pairs
    absent from the map run normally.  Task keys are assigned by the
    caller of the supervised pool (the sweep uses the trial's declared
    index, the executor its chunk index), so a plan written for a sweep
    names trials stably across serial/parallel/cached executions.
    """

    faults: dict[tuple[int, int], str] = field(default_factory=dict)
    #: how long a ``hang`` fault sleeps; must exceed the pool deadline
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        for pair, action in self.faults.items():
            if action not in ACTIONS:
                raise ValueError(
                    f"unknown chaos action {action!r} for {pair}; "
                    f"choose from {ACTIONS}"
                )

    def fault_for(self, key: int, attempt: int) -> str | None:
        return self.faults.get((int(key), int(attempt)))

    def execute(self, key: int, attempt: int) -> None:
        """Apply the planned fault for this pair, if any (worker-side)."""
        action = self.fault_for(key, attempt)
        if action is None:
            return
        if action == "raise":
            raise ChaosError(
                f"chaos: injected failure for task {key} attempt {attempt}"
            )
        if action == "hang":
            time.sleep(self.hang_s)
            return
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if action == "exit":
            os._exit(23)

    # -- construction --------------------------------------------------------------

    @classmethod
    def seeded(
        cls,
        seed: int,
        keys: int | Iterable[int],
        *,
        p_raise: float = 0.0,
        p_hang: float = 0.0,
        p_kill: float = 0.0,
        p_exit: float = 0.0,
        attempts: int = 1,
        hang_s: float = 3600.0,
    ) -> "ChaosPlan":
        """Sample a plan: each (key, attempt < ``attempts``) pair draws one
        deterministic uniform and picks a fault by cumulative probability.

        Faulting only the first ``attempts`` attempts (default 1) leaves
        retries clean, so a run under the plan still converges to the
        fault-free result — the property the chaos tests pin.
        """
        total = p_raise + p_hang + p_kill + p_exit
        if not 0.0 <= total <= 1.0:
            raise ValueError(f"fault probabilities sum to {total}, not within [0, 1]")
        key_list = list(range(keys)) if isinstance(keys, int) else [int(k) for k in keys]
        faults: dict[tuple[int, int], str] = {}
        for key in key_list:
            for attempt in range(attempts):
                r = _u01(seed, key, attempt)
                cut = 0.0
                for action, p in zip(ACTIONS, (p_raise, p_hang, p_kill, p_exit)):
                    cut += p
                    if r < cut:
                        faults[(key, attempt)] = action
                        break
        return cls(faults=faults, hang_s=hang_s)

    # -- (de)serialisation ---------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": CHAOS_SCHEMA,
            "hang_s": self.hang_s,
            "faults": [
                {"key": key, "attempt": attempt, "action": action}
                for (key, attempt), action in sorted(self.faults.items())
            ],
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "ChaosPlan":
        schema = doc.get("schema")
        if schema != CHAOS_SCHEMA:
            raise ValueError(f"not a chaos plan: schema {schema!r} != {CHAOS_SCHEMA!r}")
        faults = {
            (int(f["key"]), int(f["attempt"])): str(f["action"])
            for f in doc.get("faults", [])
        }
        return cls(faults=faults, hang_s=float(doc.get("hang_s", 3600.0)))

    def dump(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "ChaosPlan":
        return cls.from_json(json.loads(Path(path).read_text()))
