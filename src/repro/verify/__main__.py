"""CLI for the verification subsystem.

::

    python -m repro.verify fuzz --seed 0 --runs 25
    python -m repro.verify replay 'ReplaySpec {"scenario":...}'
    python -m repro.verify audit --quick E2 E3
    python -m repro.verify engines --seed 0
    python -m repro.verify spec-fuzz --seed 0
    python -m repro.verify spec-replay specs.json --experiment E8

Exit status 1 on any failure, so every subcommand is CI-ready.
"""

from __future__ import annotations

import argparse
import json
import sys

from .fuzzer import fuzz
from .harness import run_replay
from .replay import ReplaySpec


def _cmd_fuzz(args: argparse.Namespace) -> int:
    report = fuzz(
        seed=args.seed,
        runs=args.runs,
        shrink=not args.no_shrink,
        verbose=True,
        audit=not args.no_audit,
    )
    return 0 if report.ok else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        spec = ReplaySpec.from_line(args.line)
    except (ValueError, TypeError, KeyError) as err:
        # json.JSONDecodeError is a ValueError; TypeError covers unknown keys
        print(f"error: not a valid ReplaySpec line: {err}", file=sys.stderr)
        return 2
    outcome = run_replay(spec, audit=not args.no_audit)
    print(f"replaying: {spec.to_line()}")
    print(f"trace digest: {outcome.digest}")
    if outcome.ok:
        print("ok — all invariants and properties hold")
        return 0
    print(f"FAILED ({outcome.signature}): {outcome.describe()}")
    return 1


def _cmd_audit(args: argparse.Namespace) -> int:
    # imported lazily: the experiments package pulls in every runner
    from ..experiments import REGISTRY, run_experiment

    ids = [i.upper() for i in args.ids] or list(REGISTRY)
    unknown = [k for k in ids if k not in REGISTRY]
    if unknown:
        print(
            f"error: unknown experiment id(s) {unknown}; choose from {sorted(REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    failed = False
    for key in ids:
        report = run_experiment(key, quick=args.quick, audit=True)
        verdict = report.expectations[-1]  # the appended determinism-audit
        print(f"{key}: {verdict}")
        if not verdict.passed:
            failed = True
    return 1 if failed else 0


def _cmd_engines(args: argparse.Namespace) -> int:
    # imported lazily: pulls in every engine module to fill the registry
    from .engines import audit_engines, contract_engine_names

    names = [n.lower() for n in args.names] or None
    known = contract_engine_names()
    unknown = [n for n in (names or []) if n not in known]
    if unknown:
        print(
            f"error: unknown engine(s) {unknown}; choose from {known}",
            file=sys.stderr,
        )
        return 2
    failed = False
    for audit in audit_engines(names, seed=args.seed).values():
        print(audit.describe())
        if not audit.ok:
            failed = True
    return 1 if failed else 0


def _iter_spec_docs(doc: dict, experiment: str | None, index: int | None):
    """Yield ``(label, runspec_doc)`` from a single-spec or batch file."""
    if doc.get("schema") == "repro-runspec-batch/v1":
        experiments = doc.get("experiments", {})
        keys = [experiment.upper()] if experiment else sorted(experiments)
        for key in keys:
            entries = experiments.get(key, [])
            picked = enumerate(entries) if index is None else [(index, entries[index])]
            for i, entry in picked:
                yield f"{key}[{i}]", entry
    else:
        yield "spec", doc


def _cmd_spec_replay(args: argparse.Namespace) -> int:
    from ..spec import RunSpec
    from .specs import check_spec

    try:
        with open(args.file, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"error: cannot load {args.file}: {err}", file=sys.stderr)
        return 2
    failed = checked = 0
    try:
        for label, entry in _iter_spec_docs(doc, args.experiment, args.index):
            outcome = check_spec(
                RunSpec.from_dict(entry), label=label, runs=args.runs
            )
            print(outcome.describe())
            checked += 1
            if not outcome.ok:
                failed += 1
    except (IndexError, KeyError, TypeError, ValueError) as err:
        print(f"error: {args.file}: {err}", file=sys.stderr)
        return 2
    if checked == 0:
        print(f"error: {args.file}: no specs selected", file=sys.stderr)
        return 2
    print(f"spec-replay: {checked - failed}/{checked} ok")
    return 1 if failed else 0


def _cmd_spec_fuzz(args: argparse.Namespace) -> int:
    from ..spec import ENGINE_BUILDERS
    from .specs import fuzz_specs

    names = [n.lower() for n in args.names] or None
    unknown = [n for n in (names or []) if n not in ENGINE_BUILDERS]
    if unknown:
        print(
            f"error: unknown engine(s) {unknown}; choose from "
            f"{ENGINE_BUILDERS.names()}",
            file=sys.stderr,
        )
        return 2
    failed = 0
    results = fuzz_specs(seed=args.seed, names=names, runs=args.runs)
    for outcome in results:
        print(outcome.describe())
        if not outcome.ok:
            failed += 1
    print(f"spec-fuzz: {len(results) - failed}/{len(results)} engine exemplars ok")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Deterministic-simulation verification: fuzz, replay, audit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fuzz = sub.add_parser("fuzz", help="randomised scenario fuzzing")
    p_fuzz.add_argument("--seed", type=int, default=0, help="master fuzz seed")
    p_fuzz.add_argument("--runs", type=int, default=25, help="scenarios to run")
    p_fuzz.add_argument(
        "--no-shrink", action="store_true", help="print failures unshrunk"
    )
    p_fuzz.add_argument(
        "--no-audit", action="store_true",
        help="skip the per-run same-seed determinism audit (halves runtime)",
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_replay = sub.add_parser("replay", help="re-run a printed ReplaySpec line")
    p_replay.add_argument("line", help="the 'ReplaySpec {...}' line to reproduce")
    p_replay.add_argument(
        "--no-audit", action="store_true", help="run once instead of twice"
    )
    p_replay.set_defaults(func=_cmd_replay)

    p_audit = sub.add_parser(
        "audit", help="same-seed determinism audit of the experiment suite"
    )
    p_audit.add_argument(
        "ids", nargs="*", default=[], help="experiment ids (default: all E1–E12)"
    )
    p_audit.add_argument(
        "--quick", action="store_true", help="quick-mode experiment budgets"
    )
    p_audit.set_defaults(func=_cmd_audit)

    p_eng = sub.add_parser(
        "engines", help="generic contract audit of every registered engine"
    )
    p_eng.add_argument(
        "names", nargs="*", default=[], help="engine names (default: all)"
    )
    p_eng.add_argument("--seed", type=int, default=0, help="contract-scenario seed")
    p_eng.set_defaults(func=_cmd_engines)

    p_sre = sub.add_parser(
        "spec-replay",
        help="replay serialized run specs (repro-runspec/v1 file or a "
        "'specs' batch) and check round-trip + determinism + report schema",
    )
    p_sre.add_argument("file", help="RunSpec JSON file or runspec batch")
    p_sre.add_argument(
        "--experiment", default=None, metavar="E",
        help="batch files: restrict to one experiment's specs",
    )
    p_sre.add_argument(
        "--index", type=int, default=None, metavar="N",
        help="batch files: restrict to one spec per selected experiment",
    )
    p_sre.add_argument(
        "--runs", type=int, default=2, metavar="K",
        help="executions per spec for the determinism check (default: 2)",
    )
    p_sre.set_defaults(func=_cmd_spec_replay)

    p_sfz = sub.add_parser(
        "spec-fuzz",
        help="sweep every registered engine builder's exemplar spec: "
        "round-trip, same-spec determinism, report schema",
    )
    p_sfz.add_argument(
        "names", nargs="*", default=[], help="engine names (default: all)"
    )
    p_sfz.add_argument("--seed", type=int, default=0, help="master seed")
    p_sfz.add_argument(
        "--runs", type=int, default=2, metavar="K",
        help="executions per exemplar (default: 2)",
    )
    p_sfz.set_defaults(func=_cmd_spec_fuzz)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
