"""Engine-generic contract auditing over the parallel-engine registry.

The verification subsystem predates the shared runtime and was wired to
three hand-picked scenarios.  This module closes the loop for *every*
engine: anything registered in
:data:`~repro.parallel.base.ENGINE_REGISTRY` with a contract scenario
can be audited generically —

* **schema** — the run returns a schema-valid
  :class:`~repro.parallel.base.RunReport`
  (:func:`~repro.parallel.base.validate_report`);
* **determinism** — two runs from the same seed produce identical result
  fingerprints and trace digests;
* **invariants** — the emitted trace passes the streaming rules of
  :mod:`~repro.verify.invariants` (each registry entry may name its own
  rule set and conserved message kinds);
* **observability** — a third run under an active
  :func:`~repro.obs.session.obs_session` must be *transparent* (same
  trace digest and result fingerprint as the unobserved runs), its spans
  must nest properly, and every trace-emitted ``generation`` event must
  be covered by a sim-time span (:mod:`repro.obs.validate`).

The cross-engine contract test suite and ``python -m repro.verify
engines`` are both thin wrappers over :func:`audit_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.session import obs_session
from ..obs.validate import check_generation_coverage, check_spans
from ..parallel.base import ENGINE_REGISTRY, EngineInfo, RunReport, validate_report
from .digest import result_fingerprint, trace_digest
from .invariants import CheckContext, Violation, check_trace

__all__ = ["EngineAudit", "audit_engine", "audit_engines", "contract_engine_names"]


@dataclass
class EngineAudit:
    """Outcome of one engine's generic contract audit."""

    engine: str
    report: RunReport
    fingerprint: str
    deterministic: bool
    schema_problems: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)
    obs_problems: list[str] = field(default_factory=list)
    #: span count of the observed run (0 for untimed engines)
    span_count: int = 0

    @property
    def ok(self) -> bool:
        return (
            self.deterministic
            and not self.schema_problems
            and not self.violations
            and not self.obs_problems
        )

    def describe(self) -> str:
        if self.ok:
            return f"{self.engine}: ok (fingerprint {self.fingerprint[:12]})"
        parts = []
        if not self.deterministic:
            parts.append("nondeterministic across same-seed runs")
        parts.extend(self.schema_problems)
        parts.extend(str(v) for v in self.violations)
        parts.extend(self.obs_problems)
        return f"{self.engine}: FAILED — " + "; ".join(parts)


def _registry() -> dict[str, EngineInfo]:
    # the registry fills as engine modules import; make sure they have
    from .. import parallel  # noqa: F401

    return ENGINE_REGISTRY


def contract_engine_names() -> list[str]:
    """Engines that registered a runnable contract scenario."""
    return sorted(n for n, info in _registry().items() if info.contract is not None)


def _check(info: EngineInfo, trace, report: RunReport) -> list[Violation]:
    if trace is None:
        return []
    context = CheckContext(conserved_kinds=info.conserved_kinds)
    return check_trace(trace, context, info.rules)


def audit_engine(name: str, seed: int = 0) -> EngineAudit:
    """Run engine ``name``'s contract scenario twice and audit it."""
    registry = _registry()
    info = registry.get(name)
    if info is None:
        raise KeyError(f"unknown engine {name!r}; choose from {sorted(registry)}")
    if info.contract is None:
        raise ValueError(f"engine {name!r} registered no contract scenario")
    trace_a, report_a = info.contract(seed)
    trace_b, report_b = info.contract(seed)
    fp_a, fp_b = result_fingerprint(report_a), result_fingerprint(report_b)
    deterministic = fp_a == fp_b
    if trace_a is not None and trace_b is not None:
        deterministic = deterministic and trace_digest(trace_a) == trace_digest(trace_b)
    obs_problems, span_count = _audit_observability(info, seed, trace_a, fp_a)
    return EngineAudit(
        engine=name,
        report=report_a,
        fingerprint=fp_a,
        deterministic=deterministic,
        schema_problems=validate_report(report_a, engine=name),
        violations=_check(info, trace_a, report_a),
        obs_problems=obs_problems,
        span_count=span_count,
    )


def _audit_observability(
    info: EngineInfo, seed: int, trace_plain, fingerprint_plain: str
) -> tuple[list[str], int]:
    """Third contract run with observability *enabled*: the run must be
    behaviourally untouched and its span timeline structurally sound."""
    with obs_session(label=f"audit-{info.name}") as session:
        trace_obs, report_obs = info.contract(seed)
    problems: list[str] = []
    if result_fingerprint(report_obs) != fingerprint_plain:
        problems.append("enabling observability changed the result fingerprint")
    if trace_plain is not None and trace_obs is not None:
        if trace_digest(trace_obs) != trace_digest(trace_plain):
            problems.append("enabling observability changed the trace digest")
    problems.extend(check_spans(session.spans))
    if trace_obs is not None:
        problems.extend(check_generation_coverage(session.spans, trace_obs))
    return problems, len(session.spans)


def audit_engines(
    names: list[str] | None = None, seed: int = 0
) -> dict[str, EngineAudit]:
    """Audit each named engine (default: all with contracts)."""
    return {n: audit_engine(n, seed) for n in (names or contract_engine_names())}
